"""Repo-wide lint gate: ``ruff check`` must come back clean.

The container image this repo grows in does not bake ruff in (and the
suite adds no dependencies), so the gate self-skips when no ``ruff``
binary is on PATH — it activates automatically on any host that has
one.  Configuration lives in ``ruff.toml`` at the repo root.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_ruff_check_is_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not on PATH; the lint gate runs where it is")
    result = subprocess.run(
        [ruff, "check", "."],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"ruff check found problems:\n{result.stdout}{result.stderr}"
    )
