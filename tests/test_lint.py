"""Repo-wide lint gates: the project's own AST pass, plus ruff.

Two layers of static checking guard the tree:

* :mod:`repro.devtools` — the architecture invariant checker (layering,
  version-bump completeness, plan purity, boundary errors, async
  hygiene, wire completeness).  Pure stdlib, so it runs
  *unconditionally* on every host; the gate also drops
  ``LINT_report.json`` (rule → finding count) at the repo root so PRs
  can diff finding counts like the ``BENCH_*.json`` trajectory.
* ``ruff check`` — generic style/correctness rules from ``ruff.toml``.
  The container image this repo grows in does not bake ruff in (and the
  suite adds no dependencies), so that half self-skips when no ``ruff``
  binary is on PATH — it activates automatically on any host that has
  one.
"""

import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.devtools import all_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_architecture_invariants_hold():
    report = run_lint(root=REPO_ROOT)
    payload = {
        "files_scanned": report.files_scanned,
        "total": len(report.findings),
        "counts": report.counts,
    }
    try:
        (REPO_ROOT / "LINT_report.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    except OSError:  # pragma: no cover — read-only checkout is fine
        pass
    assert report.files_scanned > 0, "linter walked zero files — wrong root?"
    assert not report.findings, (
        "architecture invariants violated:\n" + report.render()
    )


def test_every_rule_is_wired_into_the_gate():
    codes = [rule.code for rule in all_rules()]
    assert codes == sorted(codes)
    assert {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006"} <= set(codes)


def test_ruff_check_is_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not on PATH; the lint gate runs where it is")
    result = subprocess.run(
        [ruff, "check", "."],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"ruff check found problems:\n{result.stdout}{result.stderr}"
    )
