"""Fixture pairs per rule: one clean source, one violating source.

The violating fixtures double as the acceptance pins: removing the
version bump from the *real* ``TimeVaryingGraph`` source must trip
RL002, and adding a ``service`` import to a ``core`` module must trip
RL001 — exactly the regressions the gate exists to catch.
"""

import inspect
from pathlib import Path

from repro.core.tvg import TimeVaryingGraph
from repro.devtools import discover_mutators, lint_source
from repro.devtools.rules import LAYER_RANKS, check_wire_pairs


def rules_fired(source: str, module: str) -> list[str]:
    return [f.rule for f in lint_source(source, module=module)]


class TestRL001Layering:
    def test_clean_downward_import(self):
        src = "from repro.core.tvg import TimeVaryingGraph\n"
        assert rules_fired(src, "repro.service.service") == []

    def test_violating_upward_import(self):
        src = "from repro.service.server import handle_request\n"
        assert rules_fired(src, "repro.core.engine") == ["RL001"]

    def test_real_core_module_with_service_import_fails(self):
        core = Path("src/repro/core/counting.py").read_text()
        src = core + "\nfrom repro.service.server import handle_request\n"
        assert "RL001" in rules_fired(src, "repro.core.counting")

    def test_type_checking_import_is_exempt(self):
        src = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.service.cluster import ClusterExecutor\n"
        )
        assert rules_fired(src, "repro.core.engine") == []

    def test_relative_import_resolves_against_own_package(self):
        src = "from ..service import server\n"
        assert rules_fired(src, "repro.core.engine") == ["RL001"]

    def test_rank_map_matches_the_roadmap_stack(self):
        assert LAYER_RANKS["core"] < LAYER_RANKS["automata"]
        assert LAYER_RANKS["automata"] < LAYER_RANKS["service"]
        assert LAYER_RANKS["dynamics"] < LAYER_RANKS["service"]
        assert LAYER_RANKS["service"] < LAYER_RANKS["cli"]


TVG_SOURCE = inspect.getsource(TimeVaryingGraph)


class TestRL002VersionBumps:
    def test_real_tree_mutator_list(self):
        assert discover_mutators(TVG_SOURCE) == {
            "add_node", "add_nodes", "add_edge", "add_edge_object",
            "add_contact", "set_presence", "remove_edge",
        }

    def test_deleting_the_bump_from_the_real_source_fails_the_gate(self):
        broken = TVG_SOURCE.replace("self._version += 1", "pass")
        assert broken != TVG_SOURCE
        findings = lint_source(broken, module="repro.core.tvg")
        assert {f.rule for f in findings} == {"RL002"}
        flagged = {f.message.split()[1].rstrip("()") for f in findings}
        assert flagged == discover_mutators(TVG_SOURCE)

    def test_deleting_the_delta_append_also_fails(self):
        broken = TVG_SOURCE.replace("self._deltas.append(", "list(")
        findings = lint_source(broken, module="repro.core.tvg")
        assert findings and all(f.rule == "RL002" for f in findings)

    def test_clean_minimal_graph_passes(self):
        src = (
            "class TimeVaryingGraph:\n"
            "    def add_node(self, n):\n"
            "        self._nodes[n] = None\n"
            "        self._record('add_node')\n"
            "    def _record(self, kind):\n"
            "        self._version += 1\n"
            "        self._deltas.append(kind)\n"
        )
        assert rules_fired(src, "repro.core.tvg") == []

    def test_writes_to_a_clone_are_not_mutations(self):
        src = (
            "class TimeVaryingGraph:\n"
            "    def copy(self):\n"
            "        clone = TimeVaryingGraph()\n"
            "        clone._nodes['x'] = None\n"
            "        return clone\n"
        )
        assert rules_fired(src, "repro.core.tvg") == []


class TestRL003PlanPurity:
    def test_plain_data_plan_is_clean(self):
        src = (
            "from repro.core.parallel import SweepPlan\n"
            "plan = SweepPlan(n=2, out_edges=((), ()), start_time=0)\n"
        )
        assert rules_fired(src, "repro.core.engine") == []

    def test_lambda_into_plan_is_flagged(self):
        src = (
            "from repro.core.parallel import SweepPlan\n"
            "plan = SweepPlan(n=2, key=lambda e: e.t)\n"
        )
        assert rules_fired(src, "repro.core.engine") == ["RL003"]

    def test_local_function_reference_is_flagged(self):
        src = (
            "from repro.core.parallel import SweepPlan\n"
            "def helper(e):\n"
            "    return e\n"
            "plan = SweepPlan(n=2, key=helper)\n"
        )
        assert rules_fired(src, "repro.service.wire") == ["RL003"]

    def test_parallel_module_lowering_is_sanctioned(self):
        src = "plan = SweepPlan(n=2, key=lambda e: e.t)\n"
        assert rules_fired(src, "repro.core.parallel") == []


class TestRL004BoundaryErrors:
    def test_narrow_except_is_clean(self):
        src = (
            "def pull():\n"
            "    try:\n"
            "        work()\n"
            "    except (ConnectionError, OSError):\n"
            "        return None\n"
        )
        assert rules_fired(src, "repro.service.cluster") == []

    def test_broad_except_with_reraise_is_clean(self):
        src = (
            "def pull():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        raise ServiceError(str(exc)) from exc\n"
        )
        assert rules_fired(src, "repro.service.cluster") == []

    def test_swallowing_broad_except_is_flagged(self):
        src = (
            "def pull():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_fired(src, "repro.service.cluster") == ["RL004"]

    def test_bare_except_is_flagged(self):
        src = (
            "def pull():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        result = None\n"
        )
        assert rules_fired(src, "repro.service.cluster") == ["RL004"]

    def test_rule_only_applies_to_service_modules(self):
        src = (
            "def walk():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_fired(src, "repro.core.traversal") == []


class TestRL005AsyncHygiene:
    def test_offloaded_sweep_is_clean(self):
        src = (
            "import asyncio\n"
            "async def run(plan, block, kernel):\n"
            "    return await asyncio.to_thread(sweep_block, plan, block, kernel)\n"
        )
        assert rules_fired(src, "repro.service.cluster") == []

    def test_time_sleep_in_async_def_is_flagged(self):
        src = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n"
        )
        assert rules_fired(src, "repro.service.server") == ["RL005"]

    def test_direct_sweep_block_call_is_flagged(self):
        src = (
            "async def run(plan, block, kernel):\n"
            "    return sweep_block(plan, block, kernel=kernel)\n"
        )
        assert rules_fired(src, "repro.service.cluster") == ["RL005"]

    def test_nested_sync_def_is_not_event_loop_context(self):
        src = (
            "import time\n"
            "async def run():\n"
            "    def blocking_probe():\n"
            "        time.sleep(0.1)\n"
            "    return blocking_probe\n"
        )
        assert rules_fired(src, "repro.service.cluster") == []

    def test_sync_code_may_block(self):
        src = "import time\ndef wait():\n    time.sleep(0.1)\n"
        assert rules_fired(src, "repro.service.cluster") == []

    def test_task_wait_join_in_async_def_is_flagged(self):
        """The background-task join blocks the event loop just like a
        direct sweep would — async front ends must poll status."""
        src = (
            "async def collect(service, task_id):\n"
            "    service.task_wait(task_id, timeout=5)\n"
            "    return service.task_result(task_id)\n"
        )
        assert rules_fired(src, "repro.service.server") == ["RL005"]

    def test_bare_task_wait_call_is_flagged(self):
        src = (
            "async def collect(task_id):\n"
            "    task_wait(task_id)\n"
        )
        assert rules_fired(src, "repro.service.server") == ["RL005"]

    def test_task_wait_is_flagged_on_any_receiver(self):
        src = (
            "async def collect(registry, task_id):\n"
            "    registry.services[0].task_wait(task_id)\n"
        )
        assert rules_fired(src, "repro.service.server") == ["RL005"]

    def test_sync_task_wait_caller_is_clean(self):
        src = (
            "def collect(service, task_id):\n"
            "    service.task_wait(task_id, timeout=5)\n"
            "    return service.task_result(task_id)\n"
        )
        assert rules_fired(src, "repro.service.service") == []


class TestRealServiceFilesStayClean:
    """The traffic-hardening modules must stay lint-clean as written:
    RL004 (no swallowed broad excepts) and RL005 (no blocking calls in
    async front ends) both apply to them, and the task runner's narrow
    except tuple plus the server's poll-don't-join discipline are load-
    bearing for that."""

    @staticmethod
    def _lint(relative):
        source = Path("src/repro/service", relative).read_text()
        module = f"repro.service.{relative.removesuffix('.py')}"
        return [f.rule for f in lint_source(source, module=module)]

    def test_limits_module(self):
        assert self._lint("limits.py") == []

    def test_tasks_module(self):
        assert self._lint("tasks.py") == []

    def test_server_module(self):
        assert self._lint("server.py") == []

    def test_swallowing_task_errors_broadly_would_fail(self):
        """Pin the guarantee: if the task runner ever replaced its
        narrow except tuple with a swallowed broad one, RL004 fires."""
        source = Path("src/repro/service/tasks.py").read_text()
        narrow = "except (ReproError, KeyError, TypeError, ValueError) as exc:"
        assert narrow in source
        broken = source.replace(narrow, "except Exception as exc:")
        fired = [
            f.rule for f in lint_source(broken, module="repro.service.tasks")
        ]
        assert "RL004" in fired


class TestRL006WireCompleteness:
    CLEAN = (
        "def plan_to_spec(p):\n    return {}\n"
        "def plan_from_spec(s):\n    return None\n"
    )

    def test_paired_and_tested_is_clean(self):
        tests = ["assert plan_to_spec(p) and plan_from_spec(s)"]
        assert check_wire_pairs(self.CLEAN, tests) == []

    def test_missing_twin_is_flagged(self):
        src = "def plan_to_spec(p):\n    return {}\n"
        findings = check_wire_pairs(src, ["plan_to_spec"])
        assert [f.rule for f in findings] == ["RL006"]
        assert "twin" in findings[0].message

    def test_untested_pair_is_flagged(self):
        findings = check_wire_pairs(self.CLEAN, ["plan_to_spec only"])
        assert [f.message for f in findings] == [
            "plan_from_spec() is never exercised by the test tree"
        ]

    def test_real_wire_module_is_complete(self):
        wire = Path("src/repro/service/wire.py").read_text()
        tests = [
            p.read_text()
            for p in sorted(Path("tests").rglob("*.py"))
        ]
        assert check_wire_pairs(wire, tests) == []
