"""Tests for the linter framework: suppressions, walk, report, registry."""

import json

import pytest

from repro.devtools import all_rules, lint_source, run_lint
from repro.devtools.linter import (
    SKIP_DIRS,
    Finding,
    iter_source_files,
    module_name,
    parse_suppressions,
    rule,
)

SERVICE_IMPORT_IN_CORE = "from repro.service.server import handle_request\n"


class TestSuppressions:
    def test_inline_comment_covers_its_own_line(self):
        src = SERVICE_IMPORT_IN_CORE.rstrip() + "  # repro-lint: disable=RL001\n"
        assert lint_source(src, module="repro.core.thing") == []

    def test_standalone_comment_covers_next_code_line(self):
        src = (
            "# a suppression may sit above a long statement\n"
            "# repro-lint: disable=RL001\n"
            "\n"
            + SERVICE_IMPORT_IN_CORE
        )
        assert lint_source(src, module="repro.core.thing") == []

    def test_wrong_code_does_not_suppress(self):
        src = SERVICE_IMPORT_IN_CORE.rstrip() + "  # repro-lint: disable=RL004\n"
        findings = lint_source(src, module="repro.core.thing")
        assert [f.rule for f in findings] == ["RL001"]

    def test_comma_separated_codes(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=RL001, RL004\n"
        )
        assert sup == {1: frozenset({"RL001", "RL004"})}

    def test_standalone_does_not_leak_past_its_target(self):
        src = (
            "# repro-lint: disable=RL001\n"
            "import json\n"
            + SERVICE_IMPORT_IN_CORE
        )
        findings = lint_source(src, module="repro.core.thing")
        assert [f.rule for f in findings] == ["RL001"]
        assert findings[0].line == 3

    def test_suppression_on_unparsable_source_is_empty(self):
        assert parse_suppressions("def broken(:\n") == {}


class TestWalkAndModules:
    def test_walk_skips_benchmarks_and_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
        for skipped in ("benchmarks", "__pycache__", ".pytest_cache"):
            (tmp_path / skipped).mkdir()
            (tmp_path / skipped / "ignored.py").write_text("x = 1\n")
        found = [p.name for p in iter_source_files(tmp_path)]
        assert found == ["good.py"]
        assert "benchmarks" in SKIP_DIRS

    def test_module_name_resolution(self, tmp_path):
        src = tmp_path / "src"
        target = src / "repro" / "core" / "tvg.py"
        assert module_name(target, src) == "repro.core.tvg"
        init = src / "repro" / "service" / "__init__.py"
        assert module_name(init, src) == "repro.service"
        assert module_name(tmp_path / "elsewhere.py", src) == ""


class TestReport:
    def test_repo_is_clean_and_json_schema_is_stable(self):
        report = run_lint()
        assert report.findings == []
        payload = json.loads(report.to_json())
        assert set(payload) == {"files_scanned", "total", "counts", "findings"}
        assert payload["total"] == 0
        assert set(payload["counts"]) == {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006"
        }
        assert payload["files_scanned"] == report.files_scanned > 0

    def test_findings_render_with_path_and_line(self):
        finding = Finding(
            path="src/repro/core/x.py", line=7, rule="RL001", message="nope"
        )
        assert finding.render() == "src/repro/core/x.py:7: RL001 nope"
        assert finding.to_json() == {
            "path": "src/repro/core/x.py",
            "line": 7,
            "rule": "RL001",
            "message": "nope",
        }

    def test_findings_sort_by_location(self):
        a = Finding(path="b.py", line=1, rule="RL001", message="m")
        b = Finding(path="a.py", line=9, rule="RL004", message="m")
        assert sorted([a, b]) == [b, a]


class TestRegistry:
    def test_rules_are_unique_and_ordered(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))

    def test_duplicate_code_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            rule("RL001", "clash")(lambda ctx: [])

    def test_unknown_scope_is_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            rule("RL999", "bad scope", scope="universe")
