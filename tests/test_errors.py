"""Tests for the exception hierarchy and public package surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_catchable_as_base(self):
        from repro.core.time_domain import Lifetime

        with pytest.raises(errors.ReproError):
            Lifetime(5, 3)

    def test_edge_not_present_payload(self):
        err = errors.EdgeNotPresentError("e0", 7)
        assert err.edge == "e0" and err.time == 7
        assert "7" in str(err)

    def test_machine_timeout_payload(self):
        err = errors.MachineTimeoutError(500)
        assert err.steps == 500

    def test_regex_syntax_payload(self):
        err = errors.RegexSyntaxError("a(", 2, "unbalanced")
        assert err.pattern == "a(" and err.position == 2

    def test_trace_format_payload(self):
        err = errors.TraceFormatError(12, "bad line")
        assert err.line_number == 12


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.automata
        import repro.core
        import repro.dynamics
        import repro.machines

        for package in (
            repro.analysis,
            repro.automata,
            repro.core,
            repro.dynamics,
            repro.machines,
        ):
            for name in package.__all__:
                assert hasattr(package, name), (package.__name__, name)

    def test_quickstart_docstring_claims(self):
        """The claims made in the package docstring must stay true."""
        from repro import NO_WAIT, WAIT, figure1_automaton

        fig1 = figure1_automaton()
        assert fig1.accepts("aabb", NO_WAIT)
        assert not fig1.accepts("aab", NO_WAIT)
        assert fig1.accepts("b", WAIT, horizon=64)
