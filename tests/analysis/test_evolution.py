"""Tests for time-series analyses."""

import pytest

from repro.analysis.evolution import (
    component_curve,
    density_curve,
    reachability_growth,
    value_of_waiting,
)
from repro.core.builders import TVGBuilder, static_graph
from repro.core.semantics import NO_WAIT, WAIT
from repro.errors import ReproError


def rotor():
    return (
        TVGBuilder(name="rotor")
        .lifetime(0, 12)
        .contact("a", "b", period=(0, 3), key="ab")
        .contact("b", "c", period=(1, 3), key="bc")
        .contact("c", "a", period=(2, 3), key="ca")
        .build()
    )


class TestCurves:
    def test_density_rotor(self):
        curve = density_curve(rotor(), 0, 6)
        # one of three contacts (two directed edges of six) up each date
        assert all(value == pytest.approx(1 / 3) for _t, value in curve)

    def test_density_empty_graph(self):
        g = TVGBuilder().lifetime(0, 3).node("a").build()
        assert density_curve(g, 0, 3) == [(0, 0.0), (1, 0.0), (2, 0.0)]

    def test_component_curve(self):
        curve = component_curve(rotor(), 0, 3)
        # one contact up -> two components (pair + isolated node)
        assert [c for _t, c in curve] == [2, 2, 2]

    def test_window_validation(self):
        with pytest.raises(ReproError):
            density_curve(rotor(), 4, 4)


class TestReachabilityGrowth:
    def test_monotone_and_saturating(self):
        curve = reachability_growth(rotor(), 0, 12, WAIT)
        values = [v for _t, v in curve]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_nowait_below_wait(self):
        wait = reachability_growth(rotor(), 0, 12, WAIT)
        nowait = reachability_growth(rotor(), 0, 12, NO_WAIT)
        for (_t, w), (_t2, n) in zip(wait, nowait):
            assert n <= w

    def test_static_graph_saturates_fast(self):
        g = static_graph([("a", "b"), ("b", "a")])
        curve = reachability_growth(g, 0, 5, NO_WAIT)
        assert curve[-1][1] == 1.0
        assert curve[0][1] == 0.0  # nothing has arrived at t=0 yet

    def test_single_node(self):
        g = TVGBuilder().lifetime(0, 3).node("solo").build()
        assert reachability_growth(g, 0, 3, WAIT) == [
            (0, 1.0), (1, 1.0), (2, 1.0)
        ]


class TestValueOfWaiting:
    def test_rotor_value_positive(self):
        value = value_of_waiting(rotor(), 0, 12)
        assert value.area > 0
        assert value.wait_saturation_time is not None
        assert value.final_gap >= 0

    def test_static_graph_value_zero(self):
        g = static_graph([("a", "b"), ("b", "a")])
        from repro.core.transforms import graph_like

        bounded = graph_like(g)
        bounded.lifetime = type(bounded.lifetime)(0, 6)
        for edge in g.edges:
            bounded.add_edge_object(edge)
        value = value_of_waiting(bounded, 0, 6)
        assert value.area == pytest.approx(0.0)
        assert value.final_gap == pytest.approx(0.0)


class TestEngineRoute:
    def test_growth_via_engine_matches_interpretive(self):
        from repro.core.engine import TemporalEngine

        g = rotor()
        engine = TemporalEngine(g)
        for semantics in (WAIT, NO_WAIT):
            assert reachability_growth(
                g, 0, 12, semantics, engine=engine
            ) == reachability_growth(g, 0, 12, semantics)

    def test_value_of_waiting_via_engine(self):
        from repro.core.engine import TemporalEngine

        g = rotor()
        engine = TemporalEngine(g)
        assert value_of_waiting(g, 0, 12, engine=engine) == value_of_waiting(g, 0, 12)

    def test_single_node_with_engine(self):
        from repro.core.builders import TVGBuilder
        from repro.core.engine import TemporalEngine

        g = TVGBuilder().lifetime(0, 3).node("solo").build()
        assert reachability_growth(g, 0, 3, WAIT, engine=TemporalEngine(g)) == [
            (0, 1.0), (1, 1.0), (2, 1.0)
        ]

    def test_foreign_engine_rejected(self):
        from repro.core.engine import TemporalEngine

        with pytest.raises(ReproError):
            reachability_growth(rotor(), 0, 12, WAIT, engine=TemporalEngine(rotor()))
