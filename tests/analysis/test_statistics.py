"""Tests for benchmark statistics helpers."""

import pytest

from repro.analysis.statistics import format_table, ratio, summarize
from repro.errors import ReproError


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1 and s.maximum == 4

    def test_single_value(self):
        s = summarize([7])
        assert s.stdev == 0.0
        assert s.stderr == 0.0

    def test_stdev_sample(self):
        s = summarize([1, 3])
        assert s.stdev == pytest.approx(2**0.5)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_str_format(self):
        assert "n=3" in str(summarize([1, 2, 3]))


class TestRatio:
    def test_normal(self):
        assert ratio(3, 4) == 0.75

    def test_guarded(self):
        assert ratio(3, 0) == 0.0


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "v"], [["alpha", 1], ["b", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "-" in lines[1]

    def test_row_length_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])
