"""Tests for foremost broadcast trees and temporal spanners."""

import pytest

from repro.analysis.spanners import (
    foremost_broadcast_tree,
    spanner_savings,
    tree_subgraph,
)
from repro.core.builders import TVGBuilder
from repro.core.generators import edge_markovian_tvg
from repro.core.semantics import NO_WAIT, WAIT
from repro.core.traversal import earliest_arrivals


@pytest.fixture()
def chain():
    return (
        TVGBuilder()
        .lifetime(0, 12)
        .contact("a", "b", present={1}, key="ab")
        .contact("b", "c", present={6}, key="bc")
        .contact("a", "c", present={9}, key="ac")
        .build()
    )


class TestBroadcastTree:
    def test_entry_hops_realize_foremost_times(self, chain):
        tree = foremost_broadcast_tree(chain, "a", 0, WAIT)
        foremost = earliest_arrivals(chain, "a", 0, WAIT)
        assert tree.informed_at == foremost
        for node, hop in tree.entry_hop.items():
            assert hop.arrival == foremost[node]

    def test_one_entry_per_reached_node(self, chain):
        tree = foremost_broadcast_tree(chain, "a", 0, WAIT)
        assert set(tree.entry_hop) == tree.reached - {"a"}

    def test_completion_time(self, chain):
        tree = foremost_broadcast_tree(chain, "a", 0, WAIT)
        # b informed at 2; c at 7 (via b, earlier than the direct 10).
        assert tree.completion_time == 7

    def test_depths(self, chain):
        tree = foremost_broadcast_tree(chain, "a", 0, WAIT)
        assert tree.depth_of("b") == 1
        assert tree.depth_of("c") == 2
        assert tree.depth_of("a") == 0

    def test_nowait_tree_smaller(self, chain):
        tree = foremost_broadcast_tree(chain, "a", 0, NO_WAIT)
        assert tree.reached == {"a"}  # nothing present at t=0
        assert tree.completion_time is None

    def test_edges_sorted_by_arrival(self, chain):
        tree = foremost_broadcast_tree(chain, "a", 0, WAIT)
        arrivals = [hop.arrival for hop in tree.edges()]
        assert arrivals == sorted(arrivals)


class TestSpanner:
    def test_pruned_graph_preserves_foremost_times(self, chain):
        tree = foremost_broadcast_tree(chain, "a", 0, WAIT)
        pruned = tree_subgraph(chain, tree)
        original = earliest_arrivals(chain, "a", 0, WAIT)
        again = earliest_arrivals(pruned, "a", 0, WAIT, horizon=12)
        assert again == original

    def test_savings_on_random_graphs(self):
        for seed in range(3):
            g = edge_markovian_tvg(10, horizon=30, birth=0.1, death=0.4, seed=seed)
            tree = foremost_broadcast_tree(g, 0, 0, WAIT, horizon=30)
            kept, total, dropped = spanner_savings(g, tree)
            assert kept <= len(tree.reached) - 1 + 1
            assert kept <= total
            if total > 20:
                assert dropped > 0.3  # trees are much sparser than floods

    def test_pruned_spanner_random(self):
        g = edge_markovian_tvg(8, horizon=25, birth=0.12, death=0.4, seed=4)
        tree = foremost_broadcast_tree(g, 0, 0, WAIT, horizon=25)
        pruned = tree_subgraph(g, tree)
        original = earliest_arrivals(g, 0, 0, WAIT, horizon=25)
        again = earliest_arrivals(pruned, 0, 0, WAIT, horizon=25)
        for node in tree.reached:
            assert again[node] == original[node]


class TestEngineRoute:
    def test_tree_identical_via_engine(self, chain):
        from repro.core.engine import TemporalEngine

        engine = TemporalEngine(chain)
        for semantics in (WAIT, NO_WAIT):
            oracle = foremost_broadcast_tree(chain, "a", 0, semantics)
            compiled = foremost_broadcast_tree(chain, "a", 0, semantics, engine=engine)
            assert compiled.informed_at == oracle.informed_at
            assert compiled.entry_hop == oracle.entry_hop

    def test_random_graph_tree_via_engine(self):
        from repro.core.engine import TemporalEngine

        g = edge_markovian_tvg(10, horizon=30, birth=0.1, death=0.4, seed=2)
        engine = TemporalEngine(g)
        oracle = foremost_broadcast_tree(g, 0, 0, WAIT, horizon=30)
        compiled = foremost_broadcast_tree(g, 0, 0, WAIT, horizon=30, engine=engine)
        assert compiled.informed_at == oracle.informed_at
        assert compiled.entry_hop == oracle.entry_hop
        assert spanner_savings(g, compiled) == spanner_savings(g, oracle)
