"""Tests for reachability matrices."""

import numpy as np

from repro.analysis.reachability import (
    reachability_matrix,
    reachability_ratio,
    semantics_gap_matrix,
)
from repro.core.builders import TVGBuilder
from repro.core.semantics import NO_WAIT, WAIT


def chain():
    return (
        TVGBuilder(name="chain")
        .lifetime(0, 10)
        .edge("a", "b", present={1}, key="ab")
        .edge("b", "c", present={6}, key="bc")
        .build()
    )


class TestMatrix:
    def test_diagonal_true(self):
        nodes, matrix = reachability_matrix(chain(), 0, WAIT)
        assert np.all(np.diag(matrix))

    def test_wait_entries(self):
        nodes, matrix = reachability_matrix(chain(), 0, WAIT)
        idx = {n: i for i, n in enumerate(nodes)}
        assert matrix[idx["a"], idx["c"]]
        assert not matrix[idx["c"], idx["a"]]

    def test_nowait_entries(self):
        nodes, matrix = reachability_matrix(chain(), 0, NO_WAIT)
        idx = {n: i for i, n in enumerate(nodes)}
        assert not matrix[idx["a"], idx["b"]]  # edge opens at 1, start is 0

    def test_start_time_changes_matrix(self):
        nodes, matrix = reachability_matrix(chain(), 1, NO_WAIT)
        idx = {n: i for i, n in enumerate(nodes)}
        assert matrix[idx["a"], idx["b"]]


class TestRatio:
    def test_wait_ratio(self):
        # Reachable ordered pairs with waiting: a->b, a->c, b->c of 6.
        assert reachability_ratio(chain(), 0, WAIT) == 3 / 6

    def test_nowait_ratio(self):
        # From start 0 nothing is nowait-reachable (ab opens at 1).
        assert reachability_ratio(chain(), 0, NO_WAIT) == 0.0

    def test_single_node(self):
        g = TVGBuilder().lifetime(0, 5).node("only").build()
        assert reachability_ratio(g, 0, WAIT) == 1.0


class TestGap:
    def test_gap_entries(self):
        nodes, gap = semantics_gap_matrix(chain(), 0)
        idx = {n: i for i, n in enumerate(nodes)}
        assert gap[idx["a"], idx["c"]]
        assert gap[idx["a"], idx["b"]]
        assert not gap[idx["c"], idx["a"]]
        assert not gap.diagonal().any()

    def test_gap_empty_on_static_graph(self):
        from repro.core.builders import static_graph

        g = static_graph([("a", "b"), ("b", "c")])
        _nodes, gap = semantics_gap_matrix(g, 0, horizon=10)
        assert not gap.any()
