"""Tests for the TVG class hierarchy checkers."""

import pytest

from repro.analysis.classes import (
    classify,
    edges_bounded_recurrent,
    edges_periodic,
    edges_recurrent,
    interval_connectivity,
    is_recurrently_connected,
    is_round_connected,
    is_temporally_connected_from,
    snapshots_always_connected,
)
from repro.core.builders import TVGBuilder, static_graph
from repro.errors import ReproError


def rotor(horizon=24):
    return (
        TVGBuilder(name="rotor")
        .lifetime(0, horizon)
        .periodic(3)
        .contact("a", "b", period=(0, 3), key="ab")
        .contact("b", "c", period=(1, 3), key="bc")
        .contact("c", "a", period=(2, 3), key="ca")
        .build()
    )


def dying_edge_graph():
    """One edge stops appearing halfway — not recurrent."""
    return (
        TVGBuilder(name="dying")
        .lifetime(0, 20)
        .contact("a", "b", present=[(0, 20)], key="ab")
        .contact("b", "c", present=[(0, 5)], key="bc")
        .build()
    )


class TestConnectivityClasses:
    def test_rotor_is_TC(self):
        assert is_temporally_connected_from(rotor(), 0, 24)

    def test_rotor_round_connected(self):
        assert is_round_connected(rotor(), 0, 24)

    def test_rotor_recurrently_connected(self):
        assert is_recurrently_connected(rotor(), 0, 24, stride=3)

    def test_partial_graph_not_TC(self):
        g = TVGBuilder().lifetime(0, 10).contact("a", "b").node("z").build()
        assert not is_temporally_connected_from(g, 0, 10)

    def test_empty_window_rejected(self):
        with pytest.raises(ReproError):
            is_temporally_connected_from(rotor(), 5, 5)


class TestEdgeRecurrence:
    def test_rotor_edges_recurrent(self):
        assert edges_recurrent(rotor(), 0, 24)

    def test_dying_edge_detected(self):
        assert not edges_recurrent(dying_edge_graph(), 0, 20)

    def test_bounded_recurrence(self):
        assert edges_bounded_recurrent(rotor(), 0, 24, bound=3)
        assert not edges_bounded_recurrent(rotor(), 0, 24, bound=2)

    def test_bound_validation(self):
        with pytest.raises(ReproError):
            edges_bounded_recurrent(rotor(), 0, 24, bound=0)

    def test_periodicity(self):
        assert edges_periodic(rotor(), 3, 0, 24)
        assert not edges_periodic(rotor(), 2, 0, 24)
        with pytest.raises(ReproError):
            edges_periodic(rotor(), 0, 0, 24)


class TestSnapshotClasses:
    def test_rotor_snapshots_never_connected(self):
        assert not snapshots_always_connected(rotor(), 0, 24)

    def test_static_graph_always_connected(self):
        g = static_graph([("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")])
        assert snapshots_always_connected(g, 0, 5)

    def test_interval_connectivity_static(self):
        g = static_graph([("a", "b"), ("b", "a")])
        assert interval_connectivity(g, 0, 6) == 6

    def test_interval_connectivity_zero_when_disconnected(self):
        assert interval_connectivity(rotor(), 0, 12) == 0

    def test_interval_connectivity_alternating(self):
        # Two spanning edges alternate; snapshots connected but nothing
        # stable for 2 steps.
        g = (
            TVGBuilder()
            .lifetime(0, 8)
            .contact("a", "b", period=(0, 2), key="ab")
            .contact("a", "b", period=(1, 2), key="ab2")
            .build()
        )
        assert interval_connectivity(g, 0, 8) >= 1


class TestClassifier:
    def test_rotor_report(self):
        report = classify(rotor(), 0, 24)
        assert "C2" in report          # temporally connected
        assert "C5" in report          # recurrent edges
        assert "C6" in report          # bounded-recurrent (bound = 6 default)
        assert "C7" in report          # periodic (declared period 3)
        assert "C9" not in report      # snapshots never connected
        assert report.interval_connectivity == 0

    def test_static_report(self):
        g = static_graph([("a", "b"), ("b", "a")])
        report = classify(g, 0, 8)
        assert {"C1", "C2", "C3", "C9", "C10"} <= report.classes

    def test_inclusions_hold(self):
        """Structural sanity: C7 -> C6 -> C5 and C9 -> C10 on samples."""
        for graph, window in ((rotor(), (0, 24)), (dying_edge_graph(), (0, 20))):
            report = classify(graph, *window)
            if "C7" in report:
                assert "C6" in report or True  # C6 depends on chosen bound
            if "C6" in report:
                assert "C5" in report
            if "C9" in report:
                assert report.interval_connectivity >= 1

    def test_report_renders(self):
        text = str(classify(rotor(), 0, 24))
        assert "classes on [0, 24)" in text


class TestEngineRoute:
    def test_classify_identical_via_engine(self):
        from repro.core.engine import TemporalEngine

        for graph, window in ((rotor(), (0, 24)), (dying_edge_graph(), (0, 20))):
            engine = TemporalEngine(graph)
            assert classify(graph, *window, engine=engine) == classify(graph, *window)

    def test_checkers_identical_via_engine(self):
        from repro.core.engine import TemporalEngine

        g = rotor()
        engine = TemporalEngine(g)
        assert is_temporally_connected_from(g, 0, 24, engine=engine)
        assert is_round_connected(g, 0, 24, engine=engine)
        assert edges_recurrent(g, 0, 24, engine=engine)
        assert edges_bounded_recurrent(g, 0, 24, 3, engine=engine)
        assert not edges_bounded_recurrent(g, 0, 24, 2, engine=engine)
        assert edges_periodic(g, 3, 0, 24, engine=engine)
        assert not edges_periodic(g, 2, 0, 24, engine=engine)
        assert not snapshots_always_connected(g, 0, 24, engine=engine)
        assert interval_connectivity(g, 0, 24, engine=engine) == 0

    def test_interval_connectivity_static_via_engine(self):
        from repro.core.engine import TemporalEngine
        from repro.core.transforms import graph_like

        g = static_graph([("a", "b"), ("b", "a")])
        bounded = graph_like(g)
        bounded.lifetime = type(bounded.lifetime)(0, 6)
        for edge in g.edges:
            bounded.add_edge_object(edge)
        engine = TemporalEngine(bounded)
        assert interval_connectivity(bounded, 0, 6, engine=engine) == 6
        assert snapshots_always_connected(bounded, 0, 6, engine=engine)

    def test_width_one_window_classifies(self):
        # No room for a round trip in one date: C1 only for the trivial
        # graph — and classify must not crash on a valid [t, t+1).
        g = static_graph([("a", "b"), ("b", "a")])
        assert not is_round_connected(g, 0, 1)
        report = classify(g, 0, 1)
        assert "C1" not in report
        solo = TVGBuilder().lifetime(0, 3).node("s").build()
        assert is_round_connected(solo, 1, 2)

    def test_foreign_engine_rejected(self):
        from repro.core.engine import TemporalEngine

        with pytest.raises(ReproError):
            edges_recurrent(rotor(), 0, 24, engine=TemporalEngine(rotor()))
