"""Tests for temporal connectivity classification."""

from repro.analysis.connectivity import classify_connectivity, is_temporally_connected
from repro.core.builders import TVGBuilder, static_graph
from repro.core.semantics import NO_WAIT, WAIT


def rotor():
    return (
        TVGBuilder(name="rotor")
        .lifetime(0, 12)
        .contact("a", "b", period=(0, 3), key="ab")
        .contact("b", "c", period=(1, 3), key="bc")
        .contact("c", "a", period=(2, 3), key="ca")
        .build()
    )


class TestTemporalConnectivity:
    def test_rotor_connected_with_waiting(self):
        assert is_temporally_connected(rotor(), 0, WAIT)

    def test_rotor_not_connected_without(self):
        assert not is_temporally_connected(rotor(), 0, NO_WAIT)

    def test_static_complete(self):
        g = static_graph([("a", "b"), ("b", "a")])
        assert is_temporally_connected(g, 0, NO_WAIT, horizon=5)


class TestClassifier:
    def test_paper_regime_detected(self):
        report = classify_connectivity(rotor(), 0, 12)
        assert report.never_snapshot_connected
        assert report.wait_ratio == 1.0
        assert report.paper_regime
        assert report.label() == "never-connected-yet-temporally-connected"

    def test_always_connected_label(self):
        g = (
            TVGBuilder()
            .lifetime(0, 4)
            .contact("a", "b")
            .contact("b", "c")
            .build()
        )
        report = classify_connectivity(g, 0, 4)
        assert report.always_snapshot_connected
        assert report.label() == "always-connected"

    def test_partial_label(self):
        g = (
            TVGBuilder()
            .lifetime(0, 4)
            .contact("a", "b", present={0})
            .node("z")
            .build()
        )
        report = classify_connectivity(g, 0, 4)
        assert report.wait_ratio < 1.0
        assert report.label() == "partially-connected"

    def test_nowait_ratio_leq_wait_ratio(self):
        report = classify_connectivity(rotor(), 0, 12)
        assert report.nowait_ratio <= report.wait_ratio
