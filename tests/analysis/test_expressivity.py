"""Tests for expressivity measurements."""

from repro.analysis.expressivity import (
    language_gap,
    nerode_lower_bound,
    regularity_certificate,
)
from repro.automata.tvg_automaton import TVGAutomaton
from repro.constructions.figure1 import figure1_automaton
from repro.core.builders import TVGBuilder
from repro.core.semantics import NO_WAIT, WAIT
from repro.machines.programs import is_anbn_positive


class TestNerodeLowerBound:
    def test_regular_sample_small_bound(self):
        # (ab)* sampled: prefixes fall into few classes.
        sample = {"", "ab", "abab", "ababab"}
        assert nerode_lower_bound(sample, 6) <= 4

    def test_anbn_bound_grows(self):
        def sample(depth):
            from repro.automata.alphabet import Alphabet

            return {
                w for w in Alphabet("ab").words_upto(depth) if is_anbn_positive(w)
            }

        shallow = nerode_lower_bound(sample(4), 4)
        deep = nerode_lower_bound(sample(8), 8)
        assert deep > shallow  # the finite shadow of non-regularity

    def test_empty_sample(self):
        assert nerode_lower_bound(set(), 4) <= 1

    def test_sound_on_truncated_sample(self):
        # A sample of a* up to 3: every DFA for a* has 1 live state; the
        # bound may see the truncation boundary but stays small.
        sample = {"", "a", "aa", "aaa"}
        assert nerode_lower_bound(sample, 3) <= 2


class TestRegularityCertificate:
    def test_periodic_graph_certificate(self):
        g = (
            TVGBuilder()
            .periodic(2)
            .edge("s", "s", label="x", period=(0, 2), key="x")
            .edge("s", "s", label="y", period=(1, 2), key="y")
            .build()
        )
        auto = TVGAutomaton(g, initial="s", accepting="s", start_time=0)
        wait_cert = regularity_certificate(auto, WAIT)
        nowait_cert = regularity_certificate(auto, NO_WAIT)
        assert wait_cert.state_count >= 1
        assert nowait_cert.state_count >= 1
        # Under wait everything is readable: the minimal DFA is tiny.
        assert wait_cert.state_count <= 2
        # Certificate automata agree with direct sampling.
        sample = auto.language(4, WAIT, horizon=32)
        for word in sample:
            assert wait_cert.minimal_dfa.accepts(word)


class TestLanguageGap:
    def test_figure1_gap(self):
        report = language_gap(figure1_automaton(), max_length=4, horizon=300)
        assert report.nowait_sample < report.wait_sample
        assert "b" in report.wait_only_words
        assert 0 < report.gap_ratio < 1

    def test_static_graph_no_gap(self):
        g = TVGBuilder().lifetime(0, 16).edge("a", "b", label="x").build()
        auto = TVGAutomaton(g, initial="a", accepting="b")
        report = language_gap(auto, max_length=2, horizon=16)
        assert report.wait_only_words == frozenset()
        assert report.gap_ratio == 0.0

    def test_nerode_contrast(self):
        report = language_gap(figure1_automaton(), max_length=5, horizon=600)
        # The wait sample is regular (6-state minimal DFA) so its bound
        # is small and stable; the no-wait bound keeps growing with depth.
        assert report.wait_nerode <= 6
        assert report.nowait_nerode <= report.wait_nerode + 2
