"""Tests for language equivalence and inclusion."""

from repro.automata.equivalence import (
    equivalent,
    find_distinguishing_word,
    inclusion_counterexample,
    is_subset,
)
from repro.automata.regex import regex_to_nfa


def dfa_of(pattern: str, alphabet: str = "ab"):
    return regex_to_nfa(pattern, alphabet).to_dfa()


class TestEquivalence:
    def test_syntactically_different_same_language(self):
        assert equivalent(dfa_of("(a|b)*"), dfa_of("(a*b*)*"))

    def test_plus_desugar_equivalence(self):
        assert equivalent(dfa_of("aa*"), dfa_of("a+"))

    def test_different_languages(self):
        assert not equivalent(dfa_of("a*"), dfa_of("a+"))

    def test_nfa_inputs_accepted(self):
        assert equivalent(regex_to_nfa("(ab)*", "ab"), dfa_of("(ab)*"))

    def test_empty_vs_epsilon(self):
        assert not equivalent(dfa_of("a"), dfa_of(""))


class TestDistinguishingWord:
    def test_none_when_equivalent(self):
        assert find_distinguishing_word(dfa_of("a|b"), dfa_of("b|a")) is None

    def test_witness_actually_distinguishes(self):
        left, right = dfa_of("a*"), dfa_of("a+")
        word = find_distinguishing_word(left, right)
        assert word is not None
        assert left.accepts(word) != right.accepts(word)

    def test_witness_minimal_for_epsilon_gap(self):
        assert find_distinguishing_word(dfa_of("a*"), dfa_of("a+")) == ""


class TestInclusion:
    def test_subset_holds(self):
        assert is_subset(dfa_of("(ab)*"), dfa_of("(a|b)*"))

    def test_subset_fails(self):
        assert not is_subset(dfa_of("(a|b)*"), dfa_of("(ab)*"))

    def test_reflexive(self):
        dfa = dfa_of("a*bb")
        assert is_subset(dfa, dfa)

    def test_counterexample_in_gap(self):
        big, small = dfa_of("(a|b)*"), dfa_of("a*")
        witness = inclusion_counterexample(big, small)
        assert witness is not None
        assert big.accepts(witness) and not small.accepts(witness)

    def test_counterexample_none_when_included(self):
        assert inclusion_counterexample(dfa_of("aa"), dfa_of("a*")) is None

    def test_counterexample_is_shortest(self):
        witness = inclusion_counterexample(dfa_of("(a|b)*"), dfa_of("a*"))
        assert witness == "b"
