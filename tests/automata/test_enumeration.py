"""Tests for language enumeration and counting."""

from repro.automata.enumeration import (
    count_words_by_length,
    enumerate_language,
    language_of_predicate,
    language_upto,
)
from repro.automata.regex import regex_to_nfa


def dfa_of(pattern: str, alphabet: str = "ab"):
    return regex_to_nfa(pattern, alphabet).to_dfa()


class TestEnumerate:
    def test_shortest_first(self):
        words = list(enumerate_language(dfa_of("a*"), 3))
        assert words == ["", "a", "aa", "aaa"]

    def test_sparse_language(self):
        words = list(enumerate_language(dfa_of("(ab)*"), 6))
        assert words == ["", "ab", "abab", "ababab"]

    def test_nfa_input(self):
        words = list(enumerate_language(regex_to_nfa("a|bb", "ab"), 3))
        assert words == ["a", "bb"]

    def test_empty_language(self):
        # 'a' intersected away: a pattern that can never complete.
        from repro.automata.dfa import DFA

        dead = DFA("a", {0, 1}, 0, {1}, {})
        assert list(enumerate_language(dead, 5)) == []

    def test_language_upto_set(self):
        sample = language_upto(dfa_of("a+b"), 4)
        assert sample == {"ab", "aab", "aaab"}


class TestPredicateSample:
    def test_matches_regex_sample(self):
        sample = language_of_predicate(
            lambda w: w.count("a") % 2 == 0, "ab", 3
        )
        reference = {
            w
            for w in language_upto(dfa_of("(b|ab*a)*"), 3)
        }
        assert sample == reference


class TestCounting:
    def test_counts_match_enumeration(self):
        dfa = dfa_of("(a|b)*abb")
        counts = count_words_by_length(dfa, 7)
        by_len = {}
        for word in enumerate_language(dfa, 7):
            by_len[len(word)] = by_len.get(len(word), 0) + 1
        assert counts == [by_len.get(n, 0) for n in range(8)]

    def test_full_binary_counts(self):
        counts = count_words_by_length(dfa_of("(a|b)*"), 4)
        assert counts == [1, 2, 4, 8, 16]

    def test_counts_of_finite_language(self):
        counts = count_words_by_length(dfa_of("ab|ba"), 4)
        assert counts == [0, 0, 2, 0, 0]
