"""Tests for the pumping-lemma machinery."""

from repro.automata.pumping import (
    check_word_pumpable,
    decompositions,
    find_pumping_counterexample,
    refuted_state_bound,
    regularity_refutation_ladder,
)
from repro.machines.programs import is_anbn, is_anbn_positive


def is_a_star(word: str) -> bool:
    return all(symbol == "a" for symbol in word)


def even_length(word: str) -> bool:
    return len(word) % 2 == 0


class TestDecompositions:
    def test_all_splits(self):
        splits = list(decompositions("abc", 2))
        assert ("", "a", "bc") in splits
        assert ("", "ab", "c") in splits
        assert ("a", "b", "c") in splits
        assert len(splits) == 3

    def test_pumping_length_caps_xy(self):
        for x, y, _z in decompositions("aaaa", 2):
            assert len(x) + len(y) <= 2
            assert y


class TestCheckWord:
    def test_regular_word_pumps(self):
        assert check_word_pumpable(is_a_star, "aaaa", 2) is None

    def test_anbn_word_fails_all_splits(self):
        violation = check_word_pumpable(is_anbn, "aaabbb", 3)
        assert violation is not None
        assert not is_anbn(violation.pumped)

    def test_violation_renders(self):
        violation = check_word_pumpable(is_anbn, "aabb", 2)
        assert violation is not None
        assert "leaves the language" in str(violation)


class TestCounterexampleSearch:
    def test_finds_anbn_witness(self):
        words = [w for w in ("ab", "aabb", "aaabbb", "aaaabbbb") if is_anbn(w)]
        violation = find_pumping_counterexample(is_anbn, words, 3)
        assert violation is not None
        assert is_anbn(violation.word)

    def test_regular_language_no_witness(self):
        words = ["", "aa", "aaaa", "aaaaaa"]
        assert find_pumping_counterexample(even_length, words, 2) is None


class TestLadder:
    def test_anbn_ladder_unbroken(self):
        ladder = regularity_refutation_ladder(
            is_anbn_positive, "ab", max_pumping_length=4, word_depth=10
        )
        assert all(violation is not None for _p, violation in ladder)

    def test_regular_ladder_breaks(self):
        ladder = regularity_refutation_ladder(
            even_length, "a", max_pumping_length=4, word_depth=10
        )
        # Even-length unary words: a DFA with 2 states exists, so the
        # ladder must break at or before pumping length 2.
        broken_at = [p for p, violation in ladder if violation is None]
        assert broken_at and min(broken_at) <= 2

    def test_refuted_state_bound_growth(self):
        shallow = refuted_state_bound(is_anbn_positive, "ab", 2, word_depth=6)
        deep = refuted_state_bound(is_anbn_positive, "ab", 4, word_depth=10)
        assert deep >= shallow >= 1

    def test_refuted_state_bound_stalls_for_regular(self):
        bound = refuted_state_bound(is_a_star, "a", 4, word_depth=10)
        assert bound == 0  # every split of a^k pumps inside a*
