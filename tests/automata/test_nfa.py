"""Tests for NFAs with epsilon transitions."""

import pytest

from repro.automata.nfa import NFA
from repro.errors import AutomatonError


def ends_in_ab():
    """Nondeterministic: words over {a, b} ending in 'ab'."""
    return NFA(
        alphabet="ab",
        states={0, 1, 2},
        initial={0},
        accepting={2},
        transitions={
            (0, "a"): {0, 1},
            (0, "b"): {0},
            (1, "b"): {2},
        },
    )


def with_epsilon():
    """Epsilon chain: accepts 'a' or '' via silent moves."""
    return NFA(
        alphabet="a",
        states={0, 1, 2},
        initial={0},
        accepting={2},
        transitions={
            (0, None): {1},
            (1, "a"): {2},
            (1, None): {2},
        },
    )


class TestValidation:
    def test_needs_initial(self):
        with pytest.raises(AutomatonError):
            NFA("a", {0}, initial=set(), accepting=set(), transitions={})

    def test_foreign_symbol(self):
        with pytest.raises(AutomatonError):
            NFA("a", {0}, {0}, set(), {(0, "z"): {0}})

    def test_unknown_target(self):
        with pytest.raises(AutomatonError):
            NFA("a", {0}, {0}, set(), {(0, "a"): {5}})


class TestRunning:
    def test_accepts(self):
        nfa = ends_in_ab()
        assert nfa.accepts("ab")
        assert nfa.accepts("aab")
        assert nfa.accepts("bbab")
        assert not nfa.accepts("ba")
        assert not nfa.accepts("")

    def test_epsilon_closure(self):
        nfa = with_epsilon()
        assert nfa.epsilon_closure({0}) == {0, 1, 2}
        assert nfa.accepts("")
        assert nfa.accepts("a")
        assert not nfa.accepts("aa")

    def test_run_returns_state_set(self):
        nfa = ends_in_ab()
        assert nfa.run("a") == {0, 1}
        assert nfa.run("ab") == {0, 2}


class TestConversions:
    def test_to_dfa_equivalent(self):
        nfa = ends_in_ab()
        dfa = nfa.to_dfa()
        for length in range(5):
            from repro.automata.alphabet import Alphabet

            for word in Alphabet("ab").words_of_length(length):
                assert dfa.accepts(word) == nfa.accepts(word), word

    def test_to_dfa_epsilon(self):
        dfa = with_epsilon().to_dfa()
        assert dfa.accepts("") and dfa.accepts("a") and not dfa.accepts("aa")

    def test_reversed_language(self):
        nfa = ends_in_ab()
        rev = nfa.reversed()
        assert rev.accepts("ba")
        assert rev.accepts("baab")
        assert not rev.accepts("ab")

    def test_relabel_states_isomorphic(self):
        nfa = ends_in_ab().relabel_states()
        assert nfa.accepts("ab") and not nfa.accepts("ba")
        assert all(isinstance(s, int) for s in nfa.states)

    def test_size(self):
        assert ends_in_ab().size == 3
