"""Tests for context-free grammars and CYK."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.grammars import (
    ContextFreeGrammar,
    cfg_anbn,
    cfg_balanced,
    cfg_palindromes,
)
from repro.errors import AutomatonError
from repro.machines.programs import is_anbn, is_anbn_positive, is_balanced, is_palindrome


class TestValidation:
    def test_start_needs_productions(self):
        with pytest.raises(AutomatonError):
            ContextFreeGrammar("S", [("T", ["a"])])

    def test_terminals_single_char(self):
        with pytest.raises(AutomatonError):
            ContextFreeGrammar("S", [("S", ["ab"])])

    def test_needs_terminals(self):
        with pytest.raises(AutomatonError):
            ContextFreeGrammar("S", [("S", ["S"])])


class TestStockGrammars:
    @pytest.mark.parametrize("depth", [6])
    def test_anbn_positive(self, depth):
        grammar = cfg_anbn(minimum_one=True)
        for word in Alphabet("ab").words_upto(depth):
            assert grammar.accepts(word) == is_anbn_positive(word), word

    def test_anbn_with_epsilon(self):
        grammar = cfg_anbn(minimum_one=False)
        for word in Alphabet("ab").words_upto(6):
            assert grammar.accepts(word) == is_anbn(word), word

    def test_palindromes(self):
        grammar = cfg_palindromes()
        for word in Alphabet("ab").words_upto(6):
            assert grammar.accepts(word) == is_palindrome(word), word

    def test_balanced(self):
        grammar = cfg_balanced()
        for word in Alphabet("ab").words_upto(6):
            assert grammar.accepts(word) == is_balanced(word), word

    def test_language_upto(self):
        sample = cfg_anbn().language_upto(6)
        assert sample == {"ab", "aabb", "aaabbb"}


class TestCnf:
    def test_epsilon_only_at_start(self):
        cnf = cfg_anbn(minimum_one=False).to_cnf()
        assert cnf.accepts_epsilon
        cnf2 = cfg_anbn(minimum_one=True).to_cnf()
        assert not cnf2.accepts_epsilon

    def test_cnf_bodies_well_formed(self):
        cnf = cfg_palindromes().to_cnf()
        for head, pairs in cnf.binary.items():
            for left, right in pairs:
                assert isinstance(left, str) and isinstance(right, str)
        for head, symbols in cnf.lexical.items():
            for symbol in symbols:
                assert len(symbol) == 1

    def test_unit_chains_eliminated(self):
        grammar = ContextFreeGrammar(
            "S",
            [("S", ["T"]), ("T", ["U"]), ("U", ["a"])],
        )
        assert grammar.accepts("a")
        assert not grammar.accepts("")
        assert not grammar.accepts("aa")


class TestFigure1Claim:
    def test_figure1_language_is_this_cfg(self):
        """The paper's sentence, executable: Figure 1's no-wait language
        equals the context-free grammar's language (up to the bound)."""
        from repro import NO_WAIT, figure1_automaton

        fig1_sample = figure1_automaton().language(8, NO_WAIT)
        cfg_sample = cfg_anbn(minimum_one=True).language_upto(8)
        assert fig1_sample == cfg_sample
