"""Tests for Brzozowski derivatives."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.derivatives import (
    EMPTY,
    derivative,
    derivative_dfa,
    matches,
    nullable,
)
from repro.automata.equivalence import equivalent
from repro.automata.regex import Epsilon, Literal, parse_regex, regex_to_nfa


class TestNullable:
    @pytest.mark.parametrize(
        "pattern,expected",
        [("", True), ("a", False), ("a*", True), ("a|", True),
         ("ab", False), ("a?b*", True), ("(ab)*", True)],
    )
    def test_cases(self, pattern, expected):
        assert nullable(parse_regex(pattern)) == expected

    def test_empty_language_not_nullable(self):
        assert not nullable(EMPTY)


class TestDerivative:
    def test_literal(self):
        assert derivative(Literal("a"), "a") == Epsilon()
        assert derivative(Literal("a"), "b") == EMPTY

    def test_star_unfolds(self):
        node = parse_regex("(ab)*")
        after_a = derivative(node, "a")
        assert matches(after_a, "b")
        assert matches(after_a, "bab")
        assert not matches(after_a, "a")

    def test_derivative_of_empty(self):
        assert derivative(EMPTY, "a") == EMPTY


class TestMatches:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("a*b", ["b", "ab", "aab"], ["", "a", "ba"]),
            ("(a|b)*abb", ["abb", "babb"], ["ab", "bba"]),
            ("a+b?", ["a", "ab", "aa"], ["", "b"]),
        ],
    )
    def test_membership(self, pattern, accepted, rejected):
        for word in accepted:
            assert matches(pattern, word), word
        for word in rejected:
            assert not matches(pattern, word), word

    def test_agreement_with_thompson(self):
        from repro.automata.regex import random_regex

        for seed in range(15):
            node = random_regex("ab", depth=3, seed=seed)
            nfa = regex_to_nfa(node, alphabet="ab")
            for word in Alphabet("ab").words_upto(4):
                assert matches(node, word) == nfa.accepts(word), (str(node), word)


class TestDerivativeDfa:
    @pytest.mark.parametrize("pattern", ["a", "(ab)*", "a(b|c)*", "(a|b)*abb"])
    def test_equivalent_to_thompson_pipeline(self, pattern):
        via_derivatives = derivative_dfa(pattern)
        via_thompson = regex_to_nfa(pattern, via_derivatives.alphabet).to_dfa()
        assert equivalent(via_derivatives, via_thompson)

    def test_random_equivalence(self):
        from repro.automata.regex import random_regex

        for seed in range(10):
            node = random_regex("ab", depth=3, seed=seed)
            via_derivatives = derivative_dfa(node, alphabet="ab")
            via_thompson = regex_to_nfa(node, alphabet="ab").to_dfa()
            assert equivalent(via_derivatives, via_thompson), str(node)

    def test_state_counts_reasonable(self):
        dfa = derivative_dfa("(a|b)*abb")
        assert len(dfa.states) <= 8  # minimal is 4; similarity keeps it near
