"""Tests for the well-quasi-order toolkit."""

from repro.automata.enumeration import language_upto
from repro.automata.regex import regex_to_nfa
from repro.automata.tvg_automaton import TVGAutomaton
from repro.automata.wqo import (
    configuration_preorder_classes,
    downward_closure,
    is_antichain,
    is_subword,
    maximal_antichain,
    minimal_elements,
    preorder_index_bound,
    upward_closure,
    upward_closure_of_words,
)
from repro.core.builders import TVGBuilder
from repro.core.semantics import WAIT


class TestSubword:
    def test_embedding(self):
        assert is_subword("", "abc")
        assert is_subword("ac", "abc")
        assert is_subword("abc", "abc")
        assert not is_subword("ca", "abc")
        assert not is_subword("aa", "abc")

    def test_reflexive_transitive(self):
        assert is_subword("ab", "ab")
        assert is_subword("a", "ab") and is_subword("ab", "aabb")
        assert is_subword("a", "aabb")


class TestAntichains:
    def test_is_antichain(self):
        assert is_antichain(["ab", "ba"])
        assert not is_antichain(["a", "ab"])
        assert is_antichain([])

    def test_maximal_antichain_is_antichain(self):
        words = ["", "a", "b", "ab", "ba", "aab", "bba"]
        chain = maximal_antichain(words)
        assert is_antichain(chain)
        # "" embeds in everything, so the chain is just [""].
        assert chain == [""]

    def test_maximal_antichain_without_epsilon(self):
        chain = maximal_antichain(["ab", "ba", "aab", "bb"])
        assert is_antichain(chain)
        assert set(chain) == {"ab", "ba", "bb"}

    def test_minimal_elements(self):
        assert set(minimal_elements(["a", "ab", "ba", "b"])) == {"a", "b"}
        assert minimal_elements(["abc"]) == ["abc"]


class TestClosures:
    def test_upward_closure(self):
        nfa = upward_closure(regex_to_nfa("ab", "ab"))
        for word in ("ab", "aab", "abb", "ab" + "ba", "xaxb".replace("x", "b")):
            assert nfa.accepts(word), word
        assert not nfa.accepts("a")
        assert not nfa.accepts("ba")

    def test_downward_closure(self):
        nfa = downward_closure(regex_to_nfa("ab", "ab"))
        for word in ("", "a", "b", "ab"):
            assert nfa.accepts(word), word
        assert not nfa.accepts("ba")
        assert not nfa.accepts("aa")

    def test_closures_bracket_language(self):
        base = regex_to_nfa("(ab)*", "ab")
        up = language_upto(upward_closure(base), 4)
        down = language_upto(downward_closure(base), 4)
        original = language_upto(base, 4)
        assert original <= up
        assert original <= down

    def test_downward_closure_of_star_is_star(self):
        base = regex_to_nfa("(a|b)*", "ab")
        closed = downward_closure(base)
        assert language_upto(closed, 3) == language_upto(base, 3)

    def test_upward_closure_of_words(self):
        nfa = upward_closure_of_words(["ab", "ba"], "ab")
        for word in ("ab", "ba", "aab", "bab"):
            assert nfa.accepts(word), word
        assert not nfa.accepts("aa")
        assert not nfa.accepts("")

    def test_upward_closure_idempotent_on_samples(self):
        base = regex_to_nfa("ab|b", "ab")
        once = upward_closure(base)
        twice = upward_closure(once)
        assert language_upto(once, 4) == language_upto(twice, 4)


class TestConfigurationPreorder:
    def make_toggler(self):
        g = (
            TVGBuilder()
            .periodic(2)
            .edge("s", "s", label="x", period=(0, 2), key="x")
            .edge("s", "s", label="y", period=(1, 2), key="y")
            .build()
        )
        return TVGAutomaton(g, initial="s", accepting="s", start_time=0)

    def test_classes_group_equivalent_words(self):
        auto = self.make_toggler()
        classes = configuration_preorder_classes(
            auto, ["", "x", "y", "xy", "yx"], WAIT, horizon=16
        )
        merged = {tuple(sorted(words)) for words in classes.values()}
        # All readable words leave the walker at node s; the classes are
        # distinguished only by reachable dates.
        assert any("x" in group and "y" in group for group in merged) or len(classes) >= 1

    def test_index_stabilizes_for_periodic_graph(self):
        auto = self.make_toggler()
        small = preorder_index_bound(auto, 2, WAIT, horizon=64)
        large = preorder_index_bound(auto, 4, WAIT, horizon=64)
        # Finite residue space: deeper sampling cannot keep growing fast.
        assert large <= small + 2
