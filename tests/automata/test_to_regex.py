"""Tests for state elimination (automaton -> regex)."""

import pytest

from repro.automata.dfa import DFA
from repro.automata.equivalence import equivalent
from repro.automata.regex import random_regex, regex_to_nfa
from repro.automata.to_regex import (
    automaton_to_regex_string,
    dfa_to_regex,
    nfa_to_regex,
)


def round_trip_equivalent(pattern: str) -> bool:
    source = regex_to_nfa(pattern)
    rebuilt = regex_to_nfa(str(nfa_to_regex(source)), alphabet=source.alphabet)
    return equivalent(source, rebuilt)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "pattern",
        ["a", "ab", "a|b", "a*", "(ab)*", "a+b?", "(a|b)*abb", "a(b|c)*c"],
    )
    def test_known_patterns(self, pattern):
        assert round_trip_equivalent(pattern)

    def test_random_patterns(self):
        for seed in range(12):
            node = random_regex("ab", depth=3, seed=seed)
            source = regex_to_nfa(node, alphabet="ab")
            if source.to_dfa().trim().is_empty():
                continue
            rebuilt = regex_to_nfa(str(nfa_to_regex(source)), alphabet="ab")
            assert equivalent(source, rebuilt), str(node)

    def test_empty_language_raises(self):
        dead = DFA("a", {0, 1}, 0, {1}, {})
        with pytest.raises(ValueError):
            dfa_to_regex(dead)

    def test_string_form_parses(self):
        source = regex_to_nfa("(ab)*a")
        text = automaton_to_regex_string(source)
        rebuilt = regex_to_nfa(text, alphabet=source.alphabet)
        assert equivalent(source, rebuilt)


class TestEndToEndWithExtraction:
    def test_periodic_wait_language_as_regex(self):
        """The full Theorem 2.2 pipeline: periodic TVG -> extracted NFA ->
        minimal DFA -> regex string -> parses back to the same language."""
        from repro.automata.language_compute import wait_language_automaton
        from repro.automata.operations import minimize
        from repro.automata.tvg_automaton import TVGAutomaton
        from repro.core.generators import periodic_random_tvg

        for seed in range(4):
            g = periodic_random_tvg(3, period=3, density=0.6, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=list(g.nodes), start_time=0)
            dfa = minimize(wait_language_automaton(auto).to_dfa())
            if dfa.is_empty():
                continue
            text = automaton_to_regex_string(dfa)
            rebuilt = regex_to_nfa(text, alphabet=dfa.alphabet)
            assert equivalent(dfa, rebuilt.to_dfa()), (seed, text)
