"""Tests for alphabets."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.errors import AutomatonError


class TestAlphabet:
    def test_ordered_dedup(self):
        sigma = Alphabet("abca")
        assert sigma.symbols == ("a", "b", "c")
        assert len(sigma) == 3

    def test_membership(self):
        sigma = Alphabet("ab")
        assert "a" in sigma and "c" not in sigma

    def test_rejects_multichar(self):
        with pytest.raises(AutomatonError):
            Alphabet(["ab"])

    def test_rejects_empty(self):
        with pytest.raises(AutomatonError):
            Alphabet("")

    def test_validate_word(self):
        sigma = Alphabet("ab")
        assert sigma.validate_word("abba") == "abba"
        with pytest.raises(AutomatonError):
            sigma.validate_word("abc")

    def test_validate_empty_word(self):
        assert Alphabet("a").validate_word("") == ""

    def test_words_of_length(self):
        sigma = Alphabet("ab")
        assert list(sigma.words_of_length(0)) == [""]
        assert list(sigma.words_of_length(2)) == ["aa", "ab", "ba", "bb"]

    def test_words_upto(self):
        sigma = Alphabet("ab")
        words = list(sigma.words_upto(2))
        assert words == ["", "a", "b", "aa", "ab", "ba", "bb"]

    def test_equality_ignores_order(self):
        assert Alphabet("ab") == Alphabet("ba")
        assert hash(Alphabet("ab")) == hash(Alphabet("ba"))

    def test_merged(self):
        merged = Alphabet("ab").merged(Alphabet("bc"))
        assert merged.symbols == ("a", "b", "c")
