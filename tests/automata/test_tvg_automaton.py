"""Tests for TVG-automata."""

import pytest

from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.builders import TVGBuilder
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import AutomatonError, TimeDomainError


@pytest.fixture()
def toggler():
    """x-edge at even dates, y-edge at odd dates, unit latencies.

    Under no-wait from t=0 the only words are alternating x,y,...;
    under wait every {x,y} word is readable.
    """
    g = (
        TVGBuilder(name="toggler")
        .lifetime(0, 12)
        .edge("s", "s", label="x", period=(0, 2), key="x")
        .edge("s", "s", label="y", period=(1, 2), key="y")
        .build()
    )
    return TVGAutomaton(g, initial="s", accepting="s", start_time=0)


class TestConstruction:
    def test_unknown_nodes_rejected(self, toggler):
        with pytest.raises(AutomatonError):
            TVGAutomaton(toggler.graph, initial="nope", accepting="s")

    def test_alphabet(self, toggler):
        assert set(toggler.alphabet) == {"x", "y"}

    def test_single_node_as_scalar(self, toggler):
        assert toggler.initial == frozenset({"s"})


class TestAcceptance:
    def test_empty_word_initial_accepting(self, toggler):
        assert toggler.accepts("", NO_WAIT)

    def test_empty_word_not_accepting(self):
        g = TVGBuilder().lifetime(0, 5).edge("a", "b", label="x").build()
        auto = TVGAutomaton(g, initial="a", accepting="b")
        assert not auto.accepts("", NO_WAIT)
        assert auto.accepts("x", NO_WAIT)

    def test_nowait_alternation(self, toggler):
        assert toggler.accepts("xy", NO_WAIT)
        assert toggler.accepts("xyxy", NO_WAIT)
        assert not toggler.accepts("xx", NO_WAIT)
        assert not toggler.accepts("y", NO_WAIT)

    def test_wait_frees_the_order(self, toggler):
        for word in ("xx", "y", "yyx", "xxyy"):
            assert toggler.accepts(word, WAIT), word

    def test_bounded_wait_one_suffices_here(self, toggler):
        assert toggler.accepts("xx", bounded_wait(1))
        assert not toggler.accepts("xx", NO_WAIT)

    def test_horizon_cuts_wait(self, toggler):
        # Reading 3 symbols needs dates 0,1,2 at least; horizon 2 blocks.
        assert not toggler.accepts("xyx", WAIT, horizon=2)
        assert toggler.accepts("xyx", WAIT, horizon=12)

    def test_wait_requires_horizon_on_unbounded_graph(self):
        g = TVGBuilder().edge("a", "b", label="x").build()  # unbounded lifetime
        auto = TVGAutomaton(g, initial="a", accepting="b")
        with pytest.raises(TimeDomainError):
            auto.accepts("x", WAIT)
        assert auto.accepts("x", WAIT, horizon=10)
        assert auto.accepts("x", NO_WAIT)  # no horizon needed without waiting


class TestConfigurations:
    def test_initial_configurations(self, toggler):
        assert toggler.initial_configurations(NO_WAIT) == {("s", 0)}

    def test_configurations_track_time(self, toggler):
        configs = toggler.configurations("xy", NO_WAIT)
        assert configs == {("s", 2)}

    def test_unreadable_word_empty(self, toggler):
        assert toggler.configurations("yy", NO_WAIT) == set()

    def test_epsilon_edges_extend_closure(self):
        g = (
            TVGBuilder()
            .lifetime(0, 10)
            .edge("a", "b", label=None, key="silent")
            .edge("b", "c", label="x", key="x")
            .build()
        )
        auto = TVGAutomaton(g, initial="a", accepting="c")
        # The unlabeled edge is crossed silently; 'x' alone reaches c.
        assert auto.accepts("x", NO_WAIT)
        configs = auto.initial_configurations(NO_WAIT)
        assert ("b", 1) in configs


class TestLanguage:
    def test_nowait_language(self, toggler):
        sample = toggler.language(4, NO_WAIT)
        assert sample == {"", "x", "xy", "xyx", "xyxy"}

    def test_wait_language_is_everything_short(self, toggler):
        sample = toggler.language(3, WAIT, horizon=12)
        assert sample == {
            "",
            "x", "y",
            "xx", "xy", "yx", "yy",
            "xxx", "xxy", "xyx", "xyy", "yxx", "yxy", "yyx", "yyy",
        }

    def test_language_respects_alphabet_override(self, toggler):
        sample = toggler.language(2, NO_WAIT, alphabet="x")
        assert sample == {"", "x"}


class TestJourneysAndDeterminism:
    def test_accepting_journeys_spell_word(self, toggler):
        journeys = list(toggler.accepting_journeys("xy", NO_WAIT))
        assert journeys
        for journey in journeys:
            assert journey.word_str == "xy"
            assert journey.is_direct

    def test_accepting_journeys_empty_for_rejected(self, toggler):
        assert not list(toggler.accepting_journeys("yy", NO_WAIT))

    def test_max_count(self, toggler):
        journeys = list(toggler.accepting_journeys("xy", WAIT, horizon=12, max_count=2))
        assert len(journeys) == 2

    def test_determinism_window(self, toggler):
        assert toggler.is_deterministic_over(range(12))

    def test_nondeterminism_detected(self):
        g = (
            TVGBuilder()
            .lifetime(0, 5)
            .edge("a", "b", label="x", key="one")
            .edge("a", "c", label="x", key="two")
            .build()
        )
        auto = TVGAutomaton(g, initial="a", accepting="b")
        assert not auto.is_deterministic_over([0])

    def test_multiple_initials_not_deterministic(self):
        g = TVGBuilder().lifetime(0, 5).edge("a", "b", label="x").node("z").build()
        auto = TVGAutomaton(g, initial=["a", "z"], accepting="b")
        assert not auto.is_deterministic_over([0])
