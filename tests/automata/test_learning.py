"""Tests for RPNI DFA learning."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.enumeration import language_upto
from repro.automata.equivalence import equivalent
from repro.automata.learning import learn_dfa, learn_from_language_sample
from repro.automata.operations import minimize
from repro.automata.regex import regex_to_nfa
from repro.errors import AutomatonError


def complete_sample(pattern: str, depth: int):
    reference = regex_to_nfa(pattern, "ab").to_dfa()
    positive = [w for w in Alphabet("ab").words_upto(depth) if reference.accepts(w)]
    negative = [w for w in Alphabet("ab").words_upto(depth) if not reference.accepts(w)]
    return reference, positive, negative


class TestConsistency:
    @pytest.mark.parametrize("pattern", ["(ab)*", "a*b*", "(a|b)*abb", "a+"])
    def test_always_consistent_with_sample(self, pattern):
        _reference, positive, negative = complete_sample(pattern, 5)
        learned = learn_dfa(positive, negative, "ab")
        for word in positive:
            assert learned.accepts(word), word
        for word in negative:
            assert not learned.accepts(word), word

    def test_contradictory_sample_rejected(self):
        with pytest.raises(AutomatonError):
            learn_dfa(["ab"], ["ab"], "ab")

    def test_empty_negative_set(self):
        learned = learn_dfa(["", "a", "aa"], [], "a")
        assert learned.accepts("aaa")  # everything merges into one state


class TestConvergence:
    @pytest.mark.parametrize("pattern", ["(ab)*", "a*b*", "(a|b)*abb"])
    def test_recovers_target_from_deep_sample(self, pattern):
        reference, positive, negative = complete_sample(pattern, 7)
        learned = learn_dfa(positive, negative, "ab")
        assert equivalent(learned, reference), pattern

    def test_learn_from_language_sample(self):
        reference = regex_to_nfa("(ab)*", "ab").to_dfa()
        sample = language_upto(reference, 7)
        learned = learn_from_language_sample(sample, "ab", 7)
        assert equivalent(learned, reference)

    def test_learned_size_matches_minimal(self):
        reference, positive, negative = complete_sample("(a|b)*abb", 8)
        learned = learn_dfa(positive, negative, "ab")
        assert len(minimize(learned).states) == len(minimize(reference).states)


class TestPaperContrast:
    def test_wait_language_learnable(self):
        """Theorem 2.2 as learnability: the wait language of Figure 1 is
        learned exactly from a bounded sample."""
        from repro import WAIT, figure1_automaton
        from repro.automata.regex import regex_to_nfa as build
        from repro.constructions.figure1 import figure1_wait_language_description

        sample = figure1_automaton().language(6, WAIT, horizon=2600)
        learned = learn_from_language_sample(sample, "ab", 6)
        truth = build(figure1_wait_language_description(), "ab").to_dfa()
        # Learned machine agrees with the true regular language well
        # beyond the training depth.
        for word in Alphabet("ab").words_upto(8):
            assert learned.accepts(word) == truth.accepts(word), word

    def test_nowait_language_not_learnable(self):
        """Theorem 2.1's shadow: machines learned from deeper a^n b^n
        samples keep growing — there is no finite target."""
        from repro import NO_WAIT, figure1_automaton

        fig1 = figure1_automaton()
        sizes = []
        for depth in (4, 6, 8):
            sample = fig1.language(depth, NO_WAIT)
            learned = learn_from_language_sample(sample, "ab", depth)
            sizes.append(len(minimize(learned).states))
        assert sizes[-1] > sizes[0]
