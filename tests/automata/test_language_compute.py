"""Tests for wait/no-wait language extraction."""

import pytest

from repro.automata.enumeration import language_upto
from repro.automata.language_compute import (
    bounded_wait_language_automaton,
    language_automaton,
    nowait_language_automaton,
    verify_period,
    wait_language_automaton,
)
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.builders import TVGBuilder
from repro.core.generators import periodic_random_tvg
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import ExtractionError


@pytest.fixture()
def toggler():
    g = (
        TVGBuilder(name="toggler")
        .periodic(2)
        .edge("s", "s", label="x", period=(0, 2), key="x")
        .edge("s", "s", label="y", period=(1, 2), key="y")
        .build()
    )
    return TVGAutomaton(g, initial="s", accepting="s", start_time=0)


@pytest.fixture()
def finite_chain():
    g = (
        TVGBuilder(name="chain")
        .lifetime(0, 6)
        .edge("a", "b", label="x", present={0, 3}, key="ab")
        .edge("b", "c", label="y", present={4}, key="bc")
        .build()
    )
    return TVGAutomaton(g, initial="a", accepting="c", start_time=0)


class TestVerifyPeriod:
    def test_honest_period_passes(self, toggler):
        assert verify_period(toggler.graph)

    def test_wrong_period_caught(self):
        g = (
            TVGBuilder()
            .periodic(3)  # lie: the schedule has period 2
            .edge("s", "s", label="x", period=(0, 2))
            .build()
        )
        assert not verify_period(g)

    def test_no_period_declared(self, finite_chain):
        with pytest.raises(ExtractionError):
            verify_period(finite_chain.graph)


class TestPeriodicExtraction:
    def test_wait_language_matches_direct_sampling(self, toggler):
        nfa = wait_language_automaton(toggler)
        extracted = language_upto(nfa, 4)
        sampled = toggler.language(4, WAIT, horizon=32)
        assert extracted == sampled

    def test_nowait_language_matches_direct_sampling(self, toggler):
        nfa = nowait_language_automaton(toggler)
        extracted = language_upto(nfa, 5)
        sampled = toggler.language(5, NO_WAIT, horizon=32)
        assert extracted == sampled

    def test_bounded_wait_matches_direct_sampling(self, toggler):
        for d in (1, 2):
            nfa = bounded_wait_language_automaton(toggler, d)
            extracted = language_upto(nfa, 4)
            sampled = toggler.language(4, bounded_wait(d), horizon=32)
            assert extracted == sampled, d

    def test_random_periodic_graphs_agree(self):
        for seed in range(4):
            g = periodic_random_tvg(4, period=3, density=0.4, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=list(g.nodes), start_time=0)
            nfa = wait_language_automaton(auto)
            assert language_upto(nfa, 3) == auto.language(
                3, WAIT, horizon=24, alphabet="".join(sorted(g.alphabet))
            )

    def test_dishonest_period_rejected(self):
        g = (
            TVGBuilder()
            .periodic(3)
            .edge("s", "s", label="x", period=(0, 2))
            .build()
        )
        auto = TVGAutomaton(g, initial="s", accepting="s")
        with pytest.raises(ExtractionError):
            wait_language_automaton(auto)

    def test_state_count_bound(self, toggler):
        nfa = wait_language_automaton(toggler)
        assert nfa.size <= toggler.graph.node_count * toggler.graph.period


class TestFiniteExtraction:
    def test_wait_language(self, finite_chain):
        nfa = wait_language_automaton(finite_chain)
        assert language_upto(nfa, 3) == {"xy"}

    def test_nowait_language_empty(self, finite_chain):
        # Direct journeys: x at 0 arrives 1, y only at 4 — never direct.
        nfa = nowait_language_automaton(finite_chain)
        assert language_upto(nfa, 3) == set()

    def test_bounded_wait_threshold(self, finite_chain):
        # x at 3 arrives 4, y at 4: pause 0 after an initial pause of 3.
        lax = bounded_wait_language_automaton(finite_chain, 3)
        tight = bounded_wait_language_automaton(finite_chain, 2)
        assert language_upto(lax, 3) == {"xy"}
        assert language_upto(tight, 3) == set()

    def test_matches_direct_sampling(self, finite_chain):
        for d in (0, 1, 3):
            nfa = bounded_wait_language_automaton(finite_chain, d)
            sampled = finite_chain.language(3, bounded_wait(d))
            assert language_upto(nfa, 3) == sampled, d

    def test_unbounded_graph_without_period_rejected(self):
        g = TVGBuilder().edge("a", "b", label="x").build()
        auto = TVGAutomaton(g, initial="a", accepting="b")
        with pytest.raises(ExtractionError):
            wait_language_automaton(auto)


class TestDispatcher:
    def test_language_automaton_dispatch(self, toggler):
        for semantics in (WAIT, NO_WAIT, bounded_wait(2)):
            nfa = language_automaton(toggler, semantics)
            sampled = toggler.language(3, semantics, horizon=32)
            assert language_upto(nfa, 3) == sampled, semantics

    def test_negative_bound_rejected(self, toggler):
        with pytest.raises(ExtractionError):
            bounded_wait_language_automaton(toggler, -1)
