"""Tests for DFAs."""

import pytest

from repro.automata.dfa import DFA
from repro.errors import AutomatonError


def even_as():
    """DFA for words over {a, b} with an even number of a's."""
    return DFA(
        alphabet="ab",
        states={"even", "odd"},
        initial="even",
        accepting={"even"},
        transitions={
            ("even", "a"): "odd",
            ("odd", "a"): "even",
            ("even", "b"): "even",
            ("odd", "b"): "odd",
        },
    )


def partial_ab():
    """Partial DFA accepting exactly 'ab'."""
    return DFA(
        alphabet="ab",
        states={0, 1, 2},
        initial=0,
        accepting={2},
        transitions={(0, "a"): 1, (1, "b"): 2},
    )


class TestValidation:
    def test_unknown_initial(self):
        with pytest.raises(AutomatonError):
            DFA("a", {0}, initial=1, accepting=set(), transitions={})

    def test_unknown_accepting(self):
        with pytest.raises(AutomatonError):
            DFA("a", {0}, initial=0, accepting={9}, transitions={})

    def test_foreign_symbol(self):
        with pytest.raises(AutomatonError):
            DFA("a", {0}, initial=0, accepting=set(), transitions={(0, "z"): 0})

    def test_unknown_transition_target(self):
        with pytest.raises(AutomatonError):
            DFA("a", {0}, initial=0, accepting=set(), transitions={(0, "a"): 7})


class TestRunning:
    def test_accepts(self):
        dfa = even_as()
        assert dfa.accepts("")
        assert dfa.accepts("aa")
        assert dfa.accepts("bab" + "a")
        assert not dfa.accepts("a")
        assert not dfa.accepts("baa" + "a")

    def test_partial_run_dies(self):
        dfa = partial_ab()
        assert dfa.accepts("ab")
        assert not dfa.accepts("ba")
        assert not dfa.accepts("abb")
        assert dfa.run("b") is None

    def test_word_validated(self):
        with pytest.raises(AutomatonError):
            even_as().accepts("xyz")


class TestStructure:
    def test_is_total(self):
        assert even_as().is_total
        assert not partial_ab().is_total

    def test_reachable_states(self):
        dfa = DFA(
            alphabet="a",
            states={0, 1, 99},
            initial=0,
            accepting={1},
            transitions={(0, "a"): 1, (99, "a"): 99},
        )
        assert dfa.reachable_states() == {0, 1}

    def test_trim_drops_unreachable(self):
        dfa = DFA(
            alphabet="a",
            states={0, 1, 99},
            initial=0,
            accepting={1, 99},
            transitions={(0, "a"): 1, (99, "a"): 99},
        )
        trimmed = dfa.trim()
        assert trimmed.states == {0, 1}
        assert trimmed.accepting == {1}
        assert trimmed.accepts("a")

    def test_is_empty(self):
        dead = DFA("a", {0, 1}, 0, {1}, {})
        assert dead.is_empty()
        assert not partial_ab().is_empty()

    def test_renumbered_preserves_language(self):
        dfa = even_as().renumbered()
        assert dfa.initial == 0
        assert dfa.accepts("aa") and not dfa.accepts("a")

    def test_to_nfa_same_language(self):
        nfa = even_as().to_nfa()
        for word in ("", "a", "aa", "ab", "bb", "aba"):
            assert nfa.accepts(word) == even_as().accepts(word)
