"""Tests for the regex parser and Thompson construction."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.regex import (
    Concat,
    Epsilon,
    Literal,
    Star,
    Union,
    parse_regex,
    random_regex,
    regex_to_nfa,
)
from repro.errors import RegexSyntaxError


class TestParser:
    def test_literal(self):
        assert parse_regex("a") == Literal("a")

    def test_concat(self):
        assert parse_regex("ab") == Concat(Literal("a"), Literal("b"))

    def test_union(self):
        assert parse_regex("a|b") == Union(Literal("a"), Literal("b"))

    def test_star_binds_tight(self):
        node = parse_regex("ab*")
        assert node == Concat(Literal("a"), Star(Literal("b")))

    def test_parens(self):
        node = parse_regex("(ab)*")
        assert node == Star(Concat(Literal("a"), Literal("b")))

    def test_plus_desugars(self):
        node = parse_regex("a+")
        assert node == Concat(Literal("a"), Star(Literal("a")))

    def test_question_desugars(self):
        node = parse_regex("a?")
        assert node == Union(Literal("a"), Epsilon())

    def test_empty_is_epsilon(self):
        assert parse_regex("") == Epsilon()
        assert parse_regex("()") == Epsilon()

    def test_union_with_empty_branch(self):
        node = parse_regex("a|")
        assert node == Union(Literal("a"), Epsilon())

    def test_unbalanced_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("(ab")
        with pytest.raises(RegexSyntaxError):
            parse_regex("ab)")

    def test_dangling_operator_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_regex("*a")

    def test_symbols(self):
        assert parse_regex("a(b|c)*").symbols() == {"a", "b", "c"}


class TestThompson:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("a", ["a"], ["", "aa", "b"]),
            ("ab", ["ab"], ["a", "b", "ba"]),
            ("a|b", ["a", "b"], ["", "ab"]),
            ("a*", ["", "a", "aaa"], ["b"]),
            ("(ab)*", ["", "ab", "abab"], ["a", "aba"]),
            ("a+b?", ["a", "ab", "aab"], ["", "b", "abb"]),
            ("(a|b)*abb", ["abb", "aabb", "babb"], ["ab", "bba"]),
        ],
    )
    def test_language(self, pattern, accepted, rejected):
        nfa = regex_to_nfa(pattern, alphabet="ab")
        for word in accepted:
            assert nfa.accepts(word), (pattern, word)
        for word in rejected:
            assert not nfa.accepts(word), (pattern, word)

    def test_alphabet_default_from_pattern(self):
        nfa = regex_to_nfa("ac*")
        assert set(nfa.alphabet) == {"a", "c"}

    def test_alphabet_must_cover(self):
        with pytest.raises(RegexSyntaxError):
            regex_to_nfa("abc", alphabet="ab")

    def test_epsilon_pattern(self):
        nfa = regex_to_nfa("", alphabet="a")
        assert nfa.accepts("") and not nfa.accepts("a")


class TestRandomRegex:
    def test_deterministic(self):
        a = random_regex("ab", depth=5, seed=3)
        b = random_regex("ab", depth=5, seed=3)
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        samples = {str(random_regex("ab", depth=5, seed=s)) for s in range(10)}
        assert len(samples) > 1

    def test_buildable(self):
        for seed in range(10):
            node = random_regex("ab", depth=4, seed=seed)
            nfa = regex_to_nfa(node, alphabet=Alphabet("ab"))
            # Just exercising: every random regex must produce a runnable NFA.
            nfa.accepts("ab")
