"""Tests for automata operations (complete/complement/product/minimize)."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import DFA
from repro.automata.operations import (
    DEAD,
    complement,
    complete,
    difference,
    intersect,
    minimize,
    reverse_dfa,
    state_count,
    union,
)
from repro.automata.regex import regex_to_nfa
from repro.errors import AutomatonError


def dfa_of(pattern: str, alphabet: str = "ab") -> DFA:
    return regex_to_nfa(pattern, alphabet).to_dfa()


def sample_words(max_length: int = 5, alphabet: str = "ab"):
    return list(Alphabet(alphabet).words_upto(max_length))


class TestComplete:
    def test_adds_dead_state(self):
        partial = dfa_of("ab")
        total = complete(partial)
        assert total.is_total
        assert DEAD in total.states
        for word in sample_words():
            assert total.accepts(word) == partial.accepts(word)

    def test_total_input_returned_as_is(self):
        total = complete(dfa_of("ab"))
        assert complete(total) is total


class TestComplement:
    def test_flips_membership(self):
        dfa = dfa_of("(ab)*")
        comp = complement(dfa)
        for word in sample_words():
            assert comp.accepts(word) != dfa.accepts(word), word

    def test_double_complement_identity(self):
        dfa = dfa_of("a*b")
        double = complement(complement(dfa))
        for word in sample_words():
            assert double.accepts(word) == dfa.accepts(word)


class TestProducts:
    def test_intersection(self):
        left = dfa_of("a*b*")
        right = dfa_of("(a|b)(a|b)")  # length exactly 2
        both = intersect(left, right)
        for word in sample_words():
            assert both.accepts(word) == (left.accepts(word) and right.accepts(word))

    def test_union(self):
        left = dfa_of("aa*")
        right = dfa_of("bb*")
        either = union(left, right)
        for word in sample_words():
            assert either.accepts(word) == (left.accepts(word) or right.accepts(word))

    def test_difference(self):
        left = dfa_of("a*")
        right = dfa_of("aa")
        gap = difference(left, right)
        assert gap.accepts("a") and gap.accepts("aaa") and gap.accepts("")
        assert not gap.accepts("aa")

    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(AutomatonError):
            intersect(dfa_of("a", "a"), dfa_of("b", "b"))


class TestReverse:
    def test_reversed_language(self):
        dfa = dfa_of("ab*")
        rev = reverse_dfa(dfa)
        for word in sample_words():
            assert rev.accepts(word) == dfa.accepts(word[::-1]), word


class TestMinimize:
    def test_language_preserved(self):
        dfa = dfa_of("(a|b)*abb")
        minimal = minimize(dfa)
        for word in sample_words(6):
            assert minimal.accepts(word) == dfa.accepts(word), word

    def test_known_minimal_size(self):
        # (a|b)*abb needs exactly 4 states (the KMP automaton).
        assert state_count(dfa_of("(a|b)*abb")) == 4

    def test_even_as_two_states(self):
        dfa = DFA(
            alphabet="ab",
            states={"e", "o", "e2"},
            initial="e",
            accepting={"e", "e2"},
            transitions={
                ("e", "a"): "o",
                ("o", "a"): "e2",
                ("e2", "a"): "o",
                ("e", "b"): "e",
                ("o", "b"): "o",
                ("e2", "b"): "e2",
            },
        )
        assert state_count(dfa) == 2

    def test_canonical_form_identical_for_equivalent_dfas(self):
        a = minimize(dfa_of("(ab)*"))
        b = minimize(dfa_of("(ab)*|()"))  # same language, different build
        assert a.states == b.states
        assert a.initial == b.initial
        assert a.accepting == b.accepting
        assert a.transitions == b.transitions

    def test_empty_language(self):
        dfa = DFA("a", {0, 1}, 0, {1}, {})  # accepting unreachable
        minimal = minimize(dfa)
        assert minimal.is_empty()
        assert len(minimal.states) == 1

    def test_idempotent(self):
        once = minimize(dfa_of("a(b|a)*"))
        twice = minimize(once)
        assert once.transitions == twice.transitions
