"""Tests for the Decider wrapper."""

import pytest

from repro.errors import AutomatonError, MachineError
from repro.machines.counter import anbn_counter_machine
from repro.machines.decider import (
    cm_decider,
    cross_check,
    predicate_decider,
    tm_decider,
)
from repro.machines.programs import is_anbn, tm_anbn


class TestDecider:
    def test_predicate_wrapping(self):
        decider = predicate_decider(is_anbn, "ab", name="anbn")
        assert decider("ab") and not decider("ba")
        assert decider.name == "anbn"

    def test_word_validated_against_alphabet(self):
        decider = predicate_decider(is_anbn, "ab")
        with pytest.raises(AutomatonError):
            decider("abc")

    def test_language_upto(self):
        decider = predicate_decider(is_anbn, "ab")
        assert decider.language_upto(4) == {"", "ab", "aabb"}

    def test_words_shortest_first(self):
        decider = predicate_decider(is_anbn, "ab")
        assert list(decider.words(4)) == ["", "ab", "aabb"]

    def test_restricted(self):
        decider = predicate_decider(is_anbn, "ab").restricted(1)
        assert not decider("")
        assert decider("ab")
        assert decider.language_upto(4) == {"ab", "aabb"}


class TestWrappers:
    def test_tm_decider(self):
        decider = tm_decider(tm_anbn(), "ab")
        assert decider("aabb") and not decider("aab")
        assert decider.name == "anbn"

    def test_cm_decider(self):
        decider = cm_decider(anbn_counter_machine(), "ab")
        assert decider("ab") and not decider("ba")


class TestCrossCheck:
    def test_agreeing_deciders_pass(self):
        cross_check(
            [
                predicate_decider(is_anbn, "ab"),
                tm_decider(tm_anbn(), "ab"),
                cm_decider(anbn_counter_machine(), "ab"),
            ],
            max_length=7,
        )

    def test_disagreement_detected(self):
        honest = predicate_decider(is_anbn, "ab")
        liar = predicate_decider(lambda w: False, "ab", name="liar")
        with pytest.raises(MachineError):
            cross_check([honest, liar], max_length=4)

    def test_alphabet_mismatch_detected(self):
        with pytest.raises(MachineError):
            cross_check(
                [predicate_decider(is_anbn, "ab"), predicate_decider(is_anbn, "abc")],
                max_length=2,
            )

    def test_needs_two(self):
        with pytest.raises(MachineError):
            cross_check([predicate_decider(is_anbn, "ab")], max_length=2)
