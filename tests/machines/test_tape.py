"""Tests for the Turing tape."""

import pytest

from repro.machines.tape import BLANK, Tape


class TestTape:
    def test_initial_content(self):
        tape = Tape("abc")
        assert tape.read() == "a"
        assert tape.content() == "abc"

    def test_empty_tape_reads_blank(self):
        assert Tape().read() == BLANK

    def test_write_and_read(self):
        tape = Tape("ab")
        tape.write("z")
        assert tape.read() == "z"
        assert tape.content() == "zb"

    def test_write_blank_erases(self):
        tape = Tape("ab")
        tape.write(BLANK)
        assert tape.read() == BLANK
        assert tape.content() == "b"

    def test_moves(self):
        tape = Tape("ab")
        tape.move("R")
        assert tape.read() == "b"
        tape.move("L")
        tape.move("L")
        assert tape.read() == BLANK  # left of the input
        tape.move("S")
        assert tape.head == -1

    def test_bad_move(self):
        with pytest.raises(ValueError):
            Tape().move("X")

    def test_negative_positions(self):
        tape = Tape()
        tape.move("L")
        tape.write("q")
        assert tape.content() == "q"
        assert tape.head == -1

    def test_extent(self):
        tape = Tape("abc")
        assert tape.extent == (0, 2)
        tape.move("L")
        assert tape.extent == (-1, 2)

    def test_content_strips_outer_blanks_only(self):
        tape = Tape("a_b")
        assert tape.content() == "a_b"

    def test_cells_sorted(self):
        tape = Tape("ab")
        assert list(tape.cells()) == [(0, "a"), (1, "b")]

    def test_copy_independent(self):
        tape = Tape("ab")
        clone = tape.copy()
        clone.write("z")
        assert tape.read() == "a"
        assert clone.read() == "z"
