"""Tests for the Turing machine assembler."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.errors import MachineError
from repro.machines.assembler import TMAssembler, assemble_marker_matcher
from repro.machines.tape import BLANK
from repro.machines.turing import ACCEPT, REJECT


class TestFragments:
    def test_scan_finds_symbol(self):
        asm = TMAssembler("ab")
        entry = asm.scan("R", ["b"], then=ACCEPT)
        machine = asm.build(entry)
        assert machine.accepts("aab")
        assert machine.accepts("b")

    def test_scan_runs_off_without_stop(self):
        asm = TMAssembler("ab")
        entry = asm.scan("R", ["b"], then=ACCEPT)
        machine = asm.build(entry)
        from repro.errors import MachineTimeoutError

        with pytest.raises(MachineTimeoutError):
            machine.accepts("aaa", max_steps=50)

    def test_branch(self):
        asm = TMAssembler("ab")
        entry = asm.branch({"a": ACCEPT}, otherwise=REJECT)
        machine = asm.build(entry)
        assert machine.accepts("a")
        assert not machine.accepts("b")
        assert not machine.accepts("")

    def test_write_and_step(self):
        asm = TMAssembler("ab")
        check = asm.branch({"b": ACCEPT})
        left = asm.step("L", then=check)
        right = asm.step("R", then=left)
        entry = asm.write_here("b", then=right)
        machine = asm.build(entry)
        # write b at 0, move right, move left, verify b.
        assert machine.accepts("a")

    def test_duplicate_transition_rejected(self):
        asm = TMAssembler("a")
        asm.on("q", "a", ACCEPT)
        with pytest.raises(MachineError):
            asm.on("q", "a", REJECT)

    def test_blank_always_in_alphabet(self):
        asm = TMAssembler("ab")
        assert BLANK in asm.symbols


class TestMarkerMatcher:
    def test_matches_anbn(self):
        machine = assemble_marker_matcher("a", "b", "ab")
        from repro.machines.programs import is_anbn

        for word in Alphabet("ab").words_upto(8):
            assert machine.accepts(word) == is_anbn(word), word

    def test_other_symbols_reject(self):
        machine = assemble_marker_matcher("a", "b", "abc")
        assert machine.accepts("aabb")
        assert not machine.accepts("acb")
        assert not machine.accepts("c")

    def test_reversed_markers(self):
        machine = assemble_marker_matcher("b", "a", "ab")
        assert machine.accepts("ba")
        assert machine.accepts("bbaa")
        assert not machine.accepts("ab")

    def test_validation(self):
        with pytest.raises(MachineError):
            assemble_marker_matcher("a", "a", "ab")
        with pytest.raises(MachineError):
            assemble_marker_matcher("a", "z", "ab")

    def test_feeds_theorem_21(self):
        """Assembler-built machines are first-class Theorem 2.1 inputs."""
        from repro import NO_WAIT, nowait_automaton_for
        from repro.machines.decider import tm_decider

        machine = assemble_marker_matcher("a", "b", "ab")
        decider = tm_decider(machine, "ab", name="asm-anbn")
        auto = nowait_automaton_for(decider)
        assert auto.language(6, NO_WAIT) == decider.language_upto(6)
