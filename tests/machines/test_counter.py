"""Tests for counter machines."""

import pytest

from repro.errors import MachineError, MachineTimeoutError
from repro.machines.counter import CounterMachine, anbn_counter_machine


class TestValidation:
    def test_unknown_start(self):
        with pytest.raises(MachineError):
            CounterMachine({"a": ("accept",)}, start="zz")

    def test_unknown_jump_target(self):
        with pytest.raises(MachineError):
            CounterMachine(
                {"a": ("inc", 0, "nowhere")}, start="a", registers=1
            )

    def test_register_out_of_range(self):
        with pytest.raises(MachineError):
            CounterMachine({"a": ("inc", 5, "a")}, start="a", registers=1)

    def test_unknown_instruction(self):
        with pytest.raises(MachineError):
            CounterMachine({"a": ("frobnicate",)}, start="a")

    def test_read_branches_validated(self):
        with pytest.raises(MachineError):
            CounterMachine({"a": ("read", {"x": "missing"})}, start="a")


class TestExecution:
    def test_trivial_accept_reject(self):
        accept = CounterMachine({"go": ("accept",)}, start="go")
        reject = CounterMachine({"go": ("reject",)}, start="go")
        assert accept.accepts("")
        assert not reject.accepts("")

    def test_timeout(self):
        loop = CounterMachine(
            {"a": ("inc", 0, "a")}, start="a", registers=1
        )
        with pytest.raises(MachineTimeoutError):
            loop.accepts("", max_steps=50)

    def test_read_off_alphabet_rejects(self):
        machine = CounterMachine(
            {"a": ("read", {"x": "yes", None: "yes"}), "yes": ("accept",)},
            start="a",
        )
        assert machine.accepts("x")
        assert machine.accepts("")
        assert not machine.accepts("q")


class TestAnbnCounter:
    @pytest.mark.parametrize("word", ["", "ab", "aabb", "aaabbb"])
    def test_accepts(self, word):
        assert anbn_counter_machine().accepts(word)

    @pytest.mark.parametrize(
        "word", ["a", "b", "ba", "aab", "abb", "abab", "bbaa", "aabbb"]
    )
    def test_rejects(self, word):
        assert not anbn_counter_machine().accepts(word)

    def test_agrees_with_turing_machine(self):
        from repro.machines.programs import is_anbn

        machine = anbn_counter_machine()
        from repro.automata.alphabet import Alphabet

        for word in Alphabet("ab").words_upto(8):
            assert machine.accepts(word) == is_anbn(word), word
