"""Tests for the stock machine/decider library."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.machines.programs import (
    decider_anbn,
    decider_anbn_counter,
    decider_anbncn,
    decider_balanced,
    decider_palindrome,
    decider_unary_primes,
    decider_ww,
    is_anbn,
    is_anbn_positive,
    is_anbncn,
    is_balanced,
    is_palindrome,
    is_unary_prime,
    is_ww,
    standard_deciders,
    tm_anbncn,
    tm_palindrome,
)


class TestReferencePredicates:
    def test_anbn(self):
        assert is_anbn("") and is_anbn("aabb")
        assert not is_anbn("ab" + "a") and not is_anbn("ba")

    def test_anbn_positive_excludes_epsilon(self):
        assert not is_anbn_positive("")
        assert is_anbn_positive("ab")

    def test_anbncn(self):
        assert is_anbncn("") and is_anbncn("abc") and is_anbncn("aabbcc")
        assert not is_anbncn("abcc") and not is_anbncn("acb")

    def test_palindrome(self):
        assert is_palindrome("") and is_palindrome("aba") and is_palindrome("abba")
        assert not is_palindrome("ab")

    def test_ww(self):
        assert is_ww("") and is_ww("abab") and is_ww("aa")
        assert not is_ww("aba") and not is_ww("abba")

    def test_unary_primes(self):
        assert is_unary_prime("11") and is_unary_prime("1" * 7)
        assert not is_unary_prime("1") and not is_unary_prime("1" * 9)
        assert not is_unary_prime("")

    def test_balanced(self):
        assert is_balanced("") and is_balanced("ab") and is_balanced("aabb")
        assert is_balanced("abab")
        assert not is_balanced("ba") and not is_balanced("a")


class TestMachinesMatchPredicates:
    @pytest.mark.parametrize(
        "decider_factory,predicate,alphabet,depth",
        [
            (decider_anbn, is_anbn, "ab", 8),
            (decider_anbn_counter, is_anbn, "ab", 8),
            (decider_anbncn, is_anbncn, "abc", 6),
            (decider_palindrome, is_palindrome, "ab", 7),
            (decider_ww, is_ww, "ab", 6),
            (decider_unary_primes, is_unary_prime, "1", 12),
            (decider_balanced, is_balanced, "ab", 7),
        ],
    )
    def test_machine_equals_reference(self, decider_factory, predicate, alphabet, depth):
        decider = decider_factory()
        for word in Alphabet(alphabet).words_upto(depth):
            assert decider(word) == predicate(word), word


class TestSpecificMachines:
    def test_anbncn_beyond_context_free(self):
        machine = tm_anbncn()
        assert machine.accepts("aabbcc")
        assert not machine.accepts("aabbc")
        assert not machine.accepts("abbcc")
        assert not machine.accepts("cba")

    def test_palindrome_odd_and_even(self):
        machine = tm_palindrome()
        assert machine.accepts("a")
        assert machine.accepts("abba")
        assert machine.accepts("ababa")
        assert not machine.accepts("aab")


class TestRegistry:
    def test_standard_deciders_complete(self):
        deciders = standard_deciders()
        assert set(deciders) == {
            "anbn",
            "anbncn",
            "palindrome",
            "ww",
            "unary-primes",
            "balanced",
        }
        for name, decider in deciders.items():
            assert decider.name, name
