"""Tests for the Turing machine simulator."""

import pytest

from repro.errors import MachineError, MachineTimeoutError
from repro.machines.programs import tm_anbn
from repro.machines.turing import ACCEPT, REJECT, HaltReason, TuringMachine


def flip_machine():
    """Writes the complement of a single bit and accepts."""
    return TuringMachine(
        transitions={
            ("q0", "0"): (ACCEPT, "1", "S"),
            ("q0", "1"): (ACCEPT, "0", "S"),
        },
        initial="q0",
    )


def spinner():
    """Never halts (moves right forever)."""
    return TuringMachine(
        transitions={("q0", "_"): ("q0", "_", "R")},
        initial="q0",
    )


class TestValidation:
    def test_halting_state_cannot_transition(self):
        with pytest.raises(MachineError):
            TuringMachine({(ACCEPT, "a"): ("q", "a", "R")}, initial="q")

    def test_bad_move_rejected(self):
        with pytest.raises(MachineError):
            TuringMachine({("q", "a"): ("q", "a", "U")}, initial="q")

    def test_multichar_symbol_rejected(self):
        with pytest.raises(MachineError):
            TuringMachine({("q", "ab"): ("q", "a", "R")}, initial="q")

    def test_overlapping_halt_states_rejected(self):
        with pytest.raises(MachineError):
            TuringMachine(
                {},
                initial="q",
                accept_states={"h"},
                reject_states={"h"},
            )


class TestRun:
    def test_accept_and_tape(self):
        result = flip_machine().run("0")
        assert result.accepted
        assert result.reason is HaltReason.ACCEPTED
        assert result.tape == "1"
        assert result.steps == 1  # the single write is one step

    def test_missing_transition_rejects(self):
        result = flip_machine().run("x")
        assert not result.accepted
        assert result.reason is HaltReason.NO_TRANSITION

    def test_timeout(self):
        with pytest.raises(MachineTimeoutError):
            spinner().run("", max_steps=100)

    def test_explicit_reject_state(self):
        machine = TuringMachine(
            {("q0", "a"): (REJECT, "a", "S")},
            initial="q0",
        )
        result = machine.run("a")
        assert not result.accepted
        assert result.reason is HaltReason.REJECTED


class TestAnbnMachine:
    @pytest.mark.parametrize("word", ["", "ab", "aabb", "aaabbb"])
    def test_accepts(self, word):
        assert tm_anbn().accepts(word)

    @pytest.mark.parametrize("word", ["a", "b", "ba", "aab", "abb", "abab", "bbaa"])
    def test_rejects(self, word):
        assert not tm_anbn().accepts(word)


class TestTrace:
    def test_trace_ends_in_halt(self):
        configs = list(tm_anbn().trace("ab"))
        assert configs[0].state == "q0"
        assert configs[-1].state == ACCEPT
        assert configs[0].step == 0
        assert configs[-1].step == len(configs) - 1

    def test_trace_timeout(self):
        with pytest.raises(MachineTimeoutError):
            list(spinner().trace("", max_steps=20))

    def test_states_property(self):
        machine = flip_machine()
        assert "q0" in machine.states
        assert ACCEPT in machine.states
