"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestFigure1Command:
    def test_accept_and_reject(self, capsys):
        assert main(["figure1", "aabb", "aab"]) == 0
        out = capsys.readouterr().out
        assert "'aabb': accept" in out
        assert "'aab': reject" in out

    def test_expectation_enforced(self, capsys):
        assert main(["figure1", "aabb", "--expect", "accept"]) == 0
        assert main(["figure1", "aab", "--expect", "accept"]) == 1

    def test_wait_semantics(self, capsys):
        code = main(["figure1", "b", "--semantics", "wait", "--horizon", "64"])
        assert code == 0
        assert "'b': accept" in capsys.readouterr().out

    def test_bounded_semantics_parse(self, capsys):
        code = main(["figure1", "b", "--semantics", "wait[1]", "--horizon", "64"])
        assert code == 0
        assert "'b': accept" in capsys.readouterr().out

    def test_bad_semantics_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1", "x", "--semantics", "maybe"])

    def test_alternate_primes(self, capsys):
        assert main(["figure1", "ab", "-p", "3", "-q", "5"]) == 0
        assert "'ab': accept" in capsys.readouterr().out


class TestUniversalCommand:
    def test_stock_language(self, capsys):
        assert main(["universal", "anbn", "--depth", "4"]) == 0
        out = capsys.readouterr().out
        assert "'ab'" in out and "'aabb'" in out
        assert "True" in out

    def test_unknown_language(self, capsys):
        assert main(["universal", "nosuch"]) == 2


class TestBroadcastCommand:
    def test_runs_and_reports(self, capsys):
        code = main(
            ["broadcast", "--nodes", "6", "--horizon", "20", "--birth", "0.2",
             "--death", "0.3", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bufferless" in out and "buffered" in out


class TestReachCommand:
    def test_compiled_and_interpretive_agree(self, capsys):
        args = ["reach", "--nodes", "8", "--period", "4", "--density", "0.2",
                "--seed", "2", "--horizon", "12"]
        assert main(args + ["--engine", "compiled"]) == 0
        compiled = capsys.readouterr().out
        assert main(args + ["--engine", "interpretive"]) == 0
        interpretive = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if "ratio" in line or "gap" in line or "window" in line
            ]

        assert facts(compiled) == facts(interpretive)
        assert "wait ratio" in compiled

    def test_trace_input(self, tmp_path, capsys):
        path = tmp_path / "contacts.trace"
        path.write_text("a b 0 3\nb c 4 6\n", encoding="utf-8")
        assert main(["reach", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "waiting-gap pairs" in out


class TestGrowthCommand:
    def test_compiled_and_interpretive_agree(self, capsys):
        args = ["growth", "--nodes", "8", "--period", "4", "--density", "0.2",
                "--seed", "2", "--horizon", "12"]
        assert main(args + ["--engine", "compiled"]) == 0
        compiled = capsys.readouterr().out
        assert main(args + ["--engine", "interpretive"]) == 0
        interpretive = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if "r_wait" in line or "r_nowait" in line or "area" in line
                or "saturation" in line or "window" in line
            ]

        assert facts(compiled) == facts(interpretive)
        assert "r_wait(end)" in compiled
        assert "waiting area" in compiled

    def test_curve_flag_prints_per_date_values(self, capsys):
        assert main(["growth", "--nodes", "6", "--period", "4", "--density",
                     "0.25", "--seed", "1", "--horizon", "8", "--curve"]) == 0
        out = capsys.readouterr().out
        assert "t=   0" in out and "t=   7" in out

    def test_trace_input(self, tmp_path, capsys):
        path = tmp_path / "contacts.trace"
        path.write_text("a b 0 3\nb c 4 6\n", encoding="utf-8")
        assert main(["growth", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "wait saturation" in out


class TestTraceCommands:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "contacts.trace"
        path.write_text("a b 0 3\nb c 4 6\n", encoding="utf-8")
        return str(path)

    def test_render(self, trace_file, capsys):
        assert main(["render", trace_file]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "a->b" in out

    def test_extract(self, trace_file, capsys):
        code = main(["extract", trace_file, "--initial", "a"])
        assert code == 0
        assert "minimal wait-language DFA" in capsys.readouterr().out


class TestServeCommand:
    def test_parser_wires_the_service_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--nodes", "6", "--cache-size", "32"]
        )
        from repro.cli import cmd_serve

        assert args.handler is cmd_serve
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.cache_size == 32
        # Admission control defaults: off unless asked for.
        assert args.rate_limit is None
        assert args.rate_window == 1.0
        assert args.rate_margin == 0
        assert args.max_inflight is None
        assert args.max_tasks is None

    def test_parser_wires_the_admission_flags(self):
        args = build_parser().parse_args(
            ["serve", "--nodes", "6", "--rate-limit", "100",
             "--rate-window", "0.5", "--rate-margin", "10",
             "--max-inflight", "64", "--max-tasks", "32"]
        )
        assert args.rate_limit == 100
        assert args.rate_window == 0.5
        assert args.rate_margin == 10
        assert args.max_inflight == 64
        assert args.max_tasks == 32

    @pytest.mark.service
    def test_serves_a_client_end_to_end(self):
        """Boot the CLI's service in a thread on an ephemeral port and
        drive one query through a real client."""
        import asyncio
        import threading

        from repro.service.client import ServiceClient
        from repro.service.service import TVGService

        # Reuse the CLI's own graph construction, then run its coroutine.
        args = build_parser().parse_args(
            ["serve", "--nodes", "6", "--period", "4", "--density", "0.3",
             "--seed", "1", "--horizon", "12", "--port", "0"]
        )
        from repro.cli import _load_or_generate

        graph, start, horizon = _load_or_generate(args)
        service = TVGService(graph, window=(start, horizon))
        started = threading.Event()
        captured = {}

        def serve_in_thread():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def boot():
                from repro.service.server import serve_service

                server = await serve_service(service, port=0)
                captured["port"] = server.sockets[0].getsockname()[1]
                captured["loop"] = loop
                started.set()
                async with server:
                    try:
                        await server.serve_forever()
                    except asyncio.CancelledError:
                        pass

            try:
                loop.run_until_complete(boot())
            finally:
                loop.close()

        thread = threading.Thread(target=serve_in_thread, daemon=True)
        thread.start()
        try:
            assert started.wait(timeout=10), "server failed to start"

            async def query():
                client = await ServiceClient.connect(port=captured["port"])
                try:
                    assert await client.ping() == "pong"
                    stats = await client.stats()
                    assert stats["graph"]["nodes"] == 6
                finally:
                    await client.close()

            asyncio.run(query())
        finally:
            if "loop" in captured:
                captured["loop"].call_soon_threadsafe(
                    lambda: [t.cancel() for t in asyncio.all_tasks(captured["loop"])]
                )
            thread.join(timeout=10)


class TestSemanticsBoundary:
    """Malformed --semantics values must die as clean argparse usage
    errors (exit code 2), never raw SemanticsError tracebacks — the CLI
    wraps the one shared grammar in core/semantics.py."""

    @pytest.mark.parametrize("text", ["wait[-1]", "wait[]", "wait[x]", "maybe"])
    def test_malformed_semantics_exit_cleanly(self, text, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["reach", "--semantics", text])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--semantics" in err  # argparse diagnostics, not a traceback

    @pytest.mark.parametrize("text", ["wait[-1]", "wait[]"])
    def test_figure1_rejects_them_too(self, text, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["figure1", "ab", "--semantics", text])
        assert excinfo.value.code == 2

    def test_well_formed_bound_still_parses(self):
        args = build_parser().parse_args(["reach", "--semantics", "wait[5]"])
        assert args.semantics.max_wait == 5


@pytest.mark.slow
class TestShardsFlag:
    """--shards runs the process-sharded sweep; results are identical
    to the serial engine (slow: spawns worker processes)."""

    def test_reach_with_shards_matches_serial(self, capsys):
        args = ["reach", "--nodes", "10", "--period", "4", "--density", "0.2",
                "--seed", "2", "--horizon", "12"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--shards", "2"]) == 0
        sharded = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if "ratio" in line or "gap" in line
            ]

        assert facts(serial) == facts(sharded)

    def test_growth_with_shards_matches_serial(self, capsys):
        args = ["growth", "--nodes", "10", "--period", "4", "--density", "0.2",
                "--seed", "3", "--horizon", "10"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--shards", "3"]) == 0
        sharded = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if "r_wait" in line or "r_nowait" in line or "area" in line
            ]

        assert facts(serial) == facts(sharded)


class TestWorkersFlag:
    """--workers ships sweep blocks to remote workers; results are
    identical to the serial engine, even when a worker is dead."""

    def test_malformed_worker_lists_are_usage_errors(self):
        for bad in ("nonsense", "host:", "host:x", ",", "h:0"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["reach", "--workers", bad])

    def test_worker_subcommand_is_wired(self):
        args = build_parser().parse_args(["worker", "--port", "0"])
        assert args.port == 0 and args.host == "127.0.0.1"

    @pytest.mark.cluster
    @pytest.mark.service
    def test_reach_with_workers_matches_serial(self, capsys):
        from repro.service.cluster import LoopbackWorkerPool

        args = ["reach", "--nodes", "10", "--period", "4", "--density", "0.2",
                "--seed", "2", "--horizon", "12"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        try:
            with LoopbackWorkerPool(2) as pool:
                workers = ",".join(pool.addresses)
                assert main(args + ["--workers", workers]) == 0
        except OSError as exc:  # pragma: no cover — sandbox
            pytest.skip(f"loopback sockets unavailable: {exc}")
        clustered = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if "ratio" in line or "gap" in line
            ]

        assert facts(serial) == facts(clustered)

    @pytest.mark.cluster
    @pytest.mark.service
    def test_growth_with_a_dead_worker_still_matches_serial(self, capsys):
        args = ["growth", "--nodes", "10", "--period", "4", "--density", "0.2",
                "--seed", "3", "--horizon", "10"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        # Nothing listens on port 1: every block falls back locally.
        assert main(args + ["--workers", "127.0.0.1:1"]) == 0
        clustered = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if "r_wait" in line or "r_nowait" in line or "area" in line
            ]

        assert facts(serial) == facts(clustered)
