"""Tests for the Theorem 2.3 constructions (dilation and compilation)."""

import pytest

from repro.automata.equivalence import equivalent
from repro.automata.language_compute import language_automaton
from repro.automata.tvg_automaton import TVGAutomaton
from repro.constructions.bounded_wait import (
    compile_bounded_wait,
    expand_for_bounded_wait,
)
from repro.constructions.figure1 import figure1_automaton
from repro.core.builders import TVGBuilder
from repro.core.generators import periodic_random_tvg
from repro.core.semantics import NO_WAIT, bounded_wait
from repro.errors import ConstructionError


class TestDilation:
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_figure1_collapse(self, d):
        """L_wait[d](dilate(G, d+1)) == L_nowait(G) — the paper's proof idea."""
        fig1 = figure1_automaton()
        dilated = expand_for_bounded_wait(fig1, d)
        horizon = 250 * (d + 1)
        assert dilated.language(5, bounded_wait(d), horizon=horizon) == fig1.language(
            5, NO_WAIT
        )

    def test_without_dilation_bounded_wait_helps(self):
        """On the *undilated* Figure 1 graph wait[1] already exceeds
        no-wait — dilation is what defeats the budget, not the bound."""
        fig1 = figure1_automaton()
        bounded = fig1.language(4, bounded_wait(1), horizon=300)
        nowait = fig1.language(4, NO_WAIT)
        assert nowait < bounded

    @pytest.mark.parametrize("d", [1, 3])
    def test_periodic_graphs_exact(self, d):
        """Exact (automaton-level) equality on random periodic graphs."""
        for seed in range(3):
            g = periodic_random_tvg(4, period=3, density=0.5, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=list(g.nodes)[-1], start_time=0)
            dilated = expand_for_bounded_wait(auto, d)
            lhs = language_automaton(dilated, bounded_wait(d))
            rhs = language_automaton(auto, NO_WAIT)
            assert equivalent(lhs, rhs), (seed, d)

    def test_zero_bound_is_identity_semantics(self):
        fig1 = figure1_automaton()
        dilated = expand_for_bounded_wait(fig1, 0)
        assert dilated.language(4, NO_WAIT) == fig1.language(4, NO_WAIT)

    def test_negative_bound_rejected(self):
        with pytest.raises(ConstructionError):
            expand_for_bounded_wait(figure1_automaton(), -1)

    def test_start_time_scaled(self):
        fig1 = figure1_automaton()
        assert expand_for_bounded_wait(fig1, 2).start_time == fig1.start_time * 3


class TestCompilation:
    @pytest.mark.parametrize("d", [1, 2])
    def test_nowait_of_compiled_equals_bounded_wait(self, d):
        for seed in range(3):
            g = periodic_random_tvg(4, period=4, density=0.4, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=2, start_time=0)
            compiled = compile_bounded_wait(auto, d)
            lhs = language_automaton(compiled, NO_WAIT)
            rhs = language_automaton(auto, bounded_wait(d))
            assert equivalent(lhs, rhs), (seed, d)

    def test_finite_lifetime_case(self):
        g = (
            TVGBuilder()
            .lifetime(0, 8)
            .edge("a", "b", label="x", present={0, 3}, key="ab")
            .edge("b", "c", label="y", present={4}, key="bc")
            .build()
        )
        auto = TVGAutomaton(g, initial="a", accepting="c", start_time=0)
        for d in (0, 2, 3):
            compiled = compile_bounded_wait(auto, d)
            assert compiled.language(3, NO_WAIT) == auto.language(
                3, bounded_wait(d)
            ), d

    def test_node_splitting_size(self):
        auto = figure1_automaton()
        compiled = compile_bounded_wait(auto, 2)
        assert compiled.graph.node_count == auto.graph.node_count * 3

    def test_zero_budget_identity(self):
        fig1 = figure1_automaton()
        compiled = compile_bounded_wait(fig1, 0)
        assert compiled.language(4, NO_WAIT) == fig1.language(4, NO_WAIT)

    def test_negative_bound_rejected(self):
        with pytest.raises(ConstructionError):
            compile_bounded_wait(figure1_automaton(), -1)


class TestBothDirectionsTogether:
    def test_round_trip_class_equality(self):
        """wait[d] and nowait express the same languages: dilation turns a
        no-wait graph into a wait[d] one, compilation turns it back."""
        g = periodic_random_tvg(3, period=3, density=0.6, labels="ab", seed=1)
        auto = TVGAutomaton(g, initial=0, accepting=1, start_time=0)
        d = 2
        # L = L_wait[d](auto); both routes must express L.
        direct = language_automaton(auto, bounded_wait(d))
        via_nowait_graph = language_automaton(compile_bounded_wait(auto, d), NO_WAIT)
        assert equivalent(direct, via_nowait_graph)
