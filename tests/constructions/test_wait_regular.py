"""Tests for the Theorem 2.2 regular embedding."""

import pytest

from repro.automata.enumeration import language_upto
from repro.automata.equivalence import equivalent
from repro.automata.language_compute import (
    nowait_language_automaton,
    wait_language_automaton,
)
from repro.automata.regex import random_regex, regex_to_nfa
from repro.constructions.wait_regular import automaton_to_tvg, regex_to_tvg
from repro.core.semantics import NO_WAIT, WAIT
from repro.errors import ConstructionError


class TestPlainEmbedding:
    @pytest.mark.parametrize("pattern", ["a", "(ab)*", "a(b|c)*", "a+b?", "(a|b)*abb"])
    def test_wait_language_equals_regex(self, pattern):
        auto = regex_to_tvg(pattern)
        extracted = wait_language_automaton(auto)
        reference = regex_to_nfa(pattern, extracted.alphabet)
        assert equivalent(extracted, reference)

    @pytest.mark.parametrize("pattern", ["a", "(ab)*", "a(b|c)*"])
    def test_static_graph_wait_equals_nowait(self, pattern):
        auto = regex_to_tvg(pattern)
        assert equivalent(
            wait_language_automaton(auto), nowait_language_automaton(auto)
        )

    def test_direct_acceptance_matches(self):
        auto = regex_to_tvg("(ab)*")
        for word in ("", "ab", "abab"):
            assert auto.accepts(word, NO_WAIT, horizon=32), word
        for word in ("a", "ba", "aab"):
            assert not auto.accepts(word, NO_WAIT, horizon=32), word

    def test_random_regexes(self):
        for seed in range(6):
            node = random_regex("ab", depth=4, seed=seed)
            reference = regex_to_nfa(node)  # alphabet = symbols actually used
            try:
                auto = automaton_to_tvg(reference)
            except ConstructionError:
                continue  # regex used no symbols at all
            extracted = wait_language_automaton(auto)
            assert equivalent(extracted, reference), str(node)


class TestStrictEmbedding:
    def test_wait_language_preserved(self):
        auto = regex_to_tvg("(ab)*", strict=True)
        extracted = wait_language_automaton(auto)
        assert equivalent(extracted, regex_to_nfa("(ab)*", extracted.alphabet))

    def test_nowait_collapses(self):
        auto = regex_to_tvg("(ab)*", strict=True)
        collapsed = language_upto(nowait_language_automaton(auto), 6)
        assert collapsed == {""}

    def test_nowait_collapse_can_be_total(self):
        # Thompson epsilon edges also tick the clock, so by the time the
        # walker faces its first symbol edge the date is odd and the
        # even-only schedule blocks it: nothing survives, not even ''
        # (the accepting state of a|bb is not epsilon-reachable).
        auto = regex_to_tvg("a|bb", strict=True)
        collapsed = language_upto(nowait_language_automaton(auto), 4)
        assert collapsed == set()

    def test_gap_witnessed_by_direct_acceptance(self):
        auto = regex_to_tvg("(ab)*", strict=True)
        assert auto.accepts("ab", WAIT, horizon=32)
        assert not auto.accepts("ab", NO_WAIT, horizon=32)


class TestValidation:
    def test_label_free_automaton_rejected(self):
        nfa = regex_to_nfa("", alphabet="a")  # epsilon only
        with pytest.raises(ConstructionError):
            automaton_to_tvg(nfa)
