"""Tests for the exact Figure 1 / Table 1 reproduction."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.automata.enumeration import language_upto
from repro.automata.regex import regex_to_nfa
from repro.constructions.figure1 import (
    figure1_automaton,
    figure1_clock,
    figure1_graph,
    figure1_wait_language_description,
    is_pq_power,
)
from repro.core.semantics import NO_WAIT, WAIT
from repro.errors import ConstructionError
from repro.machines.programs import is_anbn_positive


class TestGraphShape:
    def test_table1_edges(self):
        g = figure1_graph()
        assert set(e.key for e in g.edges) == {"e0", "e1", "e2", "e3", "e4"}
        assert g.edge("e0").source == "v0" and g.edge("e0").target == "v0"
        assert g.edge("e1").target == "v1"
        assert g.edge("e3").target == "v2"
        assert all(e.label in ("a", "b") for e in g.edges)
        assert g.edge("e0").label == "a"

    def test_table1_schedules(self):
        g = figure1_graph(p=2, q=3)
        e0, e1, e2, e3, e4 = (g.edge(k) for k in ("e0", "e1", "e2", "e3", "e4"))
        assert e0.present_at(1) and e0.present_at(99)
        assert not e1.present_at(2) and e1.present_at(3)
        assert e3.present_at(2) and not e3.present_at(3)
        # p^2 q^1 = 12 is the first e4 date.
        assert e4.present_at(12) and not e4.present_at(11)
        assert not e2.present_at(12) and e2.present_at(11)

    def test_table1_latencies(self):
        g = figure1_graph(p=2, q=3)
        assert g.edge("e0").latency(5) == (2 - 1) * 5
        assert g.edge("e1").latency(4) == (3 - 1) * 4

    def test_parameter_validation(self):
        with pytest.raises(ConstructionError):
            figure1_graph(p=2, q=2)
        with pytest.raises(ConstructionError):
            figure1_graph(p=4, q=3)
        with pytest.raises(ConstructionError):
            figure1_graph(p=1, q=3)


class TestIsPqPower:
    def test_members(self):
        # i=2: 2^2*3 = 12; i=3: 2^3*3^2 = 72; i=4: 2^4*3^3 = 432.
        for t in (12, 72, 432):
            assert is_pq_power(t, 2, 3), t

    def test_non_members(self):
        for t in (0, 1, 2, 3, 6, 11, 13, 71, 73, -5):
            assert not is_pq_power(t, 2, 3), t


class TestClock:
    def test_clock_values(self):
        assert figure1_clock("") == 1
        assert figure1_clock("aa") == 4
        assert figure1_clock("aab") == 12
        assert figure1_clock("aabb") == 36

    def test_clock_matches_direct_run(self):
        auto = figure1_automaton()
        configs = auto.configurations("aab", NO_WAIT)
        times = {t for _node, t in configs}
        assert figure1_clock("aab") in times


class TestNowaitLanguage:
    def test_exactly_anbn(self):
        auto = figure1_automaton()
        sample = auto.language(8, NO_WAIT)
        expected = {
            w for w in Alphabet("ab").words_upto(8) if is_anbn_positive(w)
        }
        assert sample == expected

    def test_alternate_primes(self):
        auto = figure1_automaton(p=3, q=5)
        sample = auto.language(6, NO_WAIT)
        assert sample == {"ab", "aabb", "aaabbb"}

    def test_determinism(self):
        auto = figure1_automaton()
        assert auto.is_deterministic_over(range(1, 200))

    def test_epsilon_rejected(self):
        assert not figure1_automaton().accepts("", NO_WAIT)

    @pytest.mark.parametrize("word", ["ab", "aabb", "aaabbb", "aaaabbbb"])
    def test_accepting_journey_is_direct(self, word):
        auto = figure1_automaton()
        journeys = list(auto.accepting_journeys(word, NO_WAIT, max_count=1))
        assert journeys and journeys[0].is_direct
        assert journeys[0].word_str == word


class TestWaitLanguage:
    def test_matches_derived_regex(self):
        auto = figure1_automaton()
        sample = auto.language(5, WAIT, horizon=600)
        expected = language_upto(
            regex_to_nfa(figure1_wait_language_description(), "ab"), 5
        )
        assert sample == expected

    def test_wait_strictly_larger(self):
        auto = figure1_automaton()
        nowait = auto.language(4, NO_WAIT)
        wait = auto.language(4, WAIT, horizon=200)
        assert nowait < wait
        assert "b" in wait - nowait
