"""Tests for the Gödel word-in-clock encodings."""

import pytest

from repro.automata.alphabet import Alphabet
from repro.constructions.godel import GodelEncoding, nth_prime, primes, shared_encoding
from repro.errors import ConstructionError


class TestPrimes:
    def test_first_primes(self):
        assert primes(8) == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_nth_prime(self):
        assert nth_prime(0) == 2
        assert nth_prime(5) == 13
        assert nth_prime(25) == 101

    def test_negative_rejected(self):
        with pytest.raises(ConstructionError):
            nth_prime(-1)
        with pytest.raises(ConstructionError):
            primes(-1)

    def test_extension_consistency(self):
        # Growing the cache must not change earlier primes.
        first = primes(5)
        primes(50)
        assert primes(5) == first


class TestEncoding:
    def test_empty_word(self):
        enc = GodelEncoding("ab")
        assert enc.encode("") == 1
        assert enc.decode(1) == ""

    def test_known_values(self):
        enc = GodelEncoding("ab")
        # position 0: a->prime(0)=2, b->prime(1)=3
        # position 1: a->prime(2)=5, b->prime(3)=7
        assert enc.encode("a") == 2
        assert enc.encode("b") == 3
        assert enc.encode("ab") == 2 * 7
        assert enc.encode("ba") == 3 * 5

    def test_roundtrip(self):
        enc = GodelEncoding("abc")
        for word in Alphabet("abc").words_upto(4):
            assert enc.decode(enc.encode(word)) == word

    def test_injective_on_samples(self):
        enc = GodelEncoding("ab")
        values = [enc.encode(w) for w in Alphabet("ab").words_upto(6)]
        assert len(values) == len(set(values))

    def test_non_codes_decode_to_none(self):
        enc = GodelEncoding("ab")
        assert enc.decode(4) is None   # 2*2: squared position prime
        assert enc.decode(5) is None   # position-1 prime without position 0
        assert enc.decode(6) is None   # both position-0 primes
        assert enc.decode(0) is None
        assert enc.decode(-3) is None

    def test_is_code(self):
        enc = GodelEncoding("ab")
        assert enc.is_code(1) and enc.is_code(2) and enc.is_code(14)
        assert not enc.is_code(4)

    def test_extension_factor(self):
        enc = GodelEncoding("ab")
        assert enc.encode("a") * enc.extension_factor(1, "b") == enc.encode("ab")

    def test_extension_latency_lands_on_code(self):
        enc = GodelEncoding("ab")
        t = enc.encode("ab")
        assert t + enc.extension_latency(t, "a") == enc.encode("aba")

    def test_extension_latency_on_non_code_is_one(self):
        enc = GodelEncoding("ab")
        assert enc.extension_latency(4, "a") == 1

    def test_unknown_symbol_rejected(self):
        enc = GodelEncoding("ab")
        with pytest.raises(ConstructionError):
            enc.position_prime(0, "z")

    def test_unary_alphabet(self):
        enc = GodelEncoding("1")
        assert enc.encode("111") == 2 * 3 * 5
        assert enc.decode(30) == "111"


class TestSharedEncoding:
    def test_cached(self):
        assert shared_encoding("ab") is shared_encoding("ab")
        assert shared_encoding("ab") is not shared_encoding("abc")
