"""Tests for the Theorem 2.1 universal no-wait construction."""

import pytest

from repro.constructions.nowait_universal import (
    ACCEPTOR,
    READER,
    START,
    clock_after,
    nowait_automaton_for,
    nowait_graph_for,
)
from repro.core.semantics import NO_WAIT, WAIT
from repro.machines.decider import predicate_decider
from repro.machines.programs import standard_deciders


class TestGraphShape:
    def test_nodes_and_edges(self):
        decider = predicate_decider(lambda w: True, "ab")
        g = nowait_graph_for(decider)
        assert set(g.nodes) == {START, READER, ACCEPTOR}
        # 4 edges per symbol: first, loop, exit0, exit.
        assert g.edge_count == 8

    def test_clock_is_the_encoding(self):
        decider = predicate_decider(lambda w: False, "ab")
        auto = nowait_automaton_for(decider)
        configs = auto.configurations("ab", NO_WAIT)
        assert (READER, clock_after(decider, "ab")) in configs


class TestLanguageEquality:
    @pytest.mark.parametrize("name", sorted(standard_deciders()))
    def test_stock_languages(self, name):
        decider = standard_deciders()[name]
        auto = nowait_automaton_for(decider)
        bound = 5 if len(decider.alphabet) >= 3 else 6
        assert auto.language(bound, NO_WAIT) == decider.language_upto(bound)

    def test_epsilon_handling(self):
        with_eps = predicate_decider(lambda w: len(w) % 2 == 0, "a", name="even")
        without_eps = predicate_decider(
            lambda w: len(w) % 2 == 1, "a", name="odd"
        )
        assert nowait_automaton_for(with_eps).accepts("", NO_WAIT)
        assert not nowait_automaton_for(without_eps).accepts("", NO_WAIT)

    def test_finite_language(self):
        decider = predicate_decider(lambda w: w in {"ab", "ba"}, "ab", name="pair")
        auto = nowait_automaton_for(decider)
        assert auto.language(4, NO_WAIT) == {"ab", "ba"}

    def test_full_language(self):
        decider = predicate_decider(lambda w: True, "a", name="all")
        auto = nowait_automaton_for(decider)
        assert auto.language(3, NO_WAIT) == {"", "a", "aa", "aaa"}


class TestWaitBreaksTheClockwork:
    def test_wait_language_differs_for_anbn(self):
        decider = standard_deciders()["anbn"]
        auto = nowait_automaton_for(decider)
        horizon = clock_after(decider, "bbbb") * 4
        nowait = auto.language(3, NO_WAIT)
        wait = auto.language(3, WAIT, horizon=horizon)
        # Waiting lets the walker align with exit dates of other words.
        assert nowait <= wait
        assert wait != nowait
