"""Socket-free tests for the cluster's worker side.

The worker dispatcher (:func:`repro.service.cluster.dispatch_worker`)
is a plain function — plan spec plus source block in, packed sub-matrix
out — so its whole contract is testable without opening a port: the
returned matrix must equal :func:`~repro.core.parallel.sweep_block` on
the same inputs, and every malformed request must come back as a
structured error frame, never a crash.
"""

import numpy as np
import pytest

from repro.core.engine import TemporalEngine
from repro.core.generators import periodic_random_tvg
from repro.core.parallel import build_sweep_plan, partition_sources, sweep_block
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import PlanMissError, ServiceError
from repro.service.cluster import (
    ClusterExecutor,
    PlanCache,
    dispatch_worker,
    handle_worker_request,
    parse_worker_address,
)
from repro.service.wire import matrix_from_spec, plan_fingerprint, plan_to_spec

HORIZON = 14


def plan_and_serial(semantics=WAIT, n=12, seed=3):
    graph = periodic_random_tvg(n, period=6, density=0.12, seed=seed)
    engine = TemporalEngine(graph)
    _nodes, serial = engine.arrival_matrix(0, semantics, horizon=HORIZON)
    _same, plan = build_sweep_plan(engine, 0, semantics, HORIZON)
    return plan, serial


class TestDispatcher:
    @pytest.mark.parametrize("semantics", [NO_WAIT, WAIT, bounded_wait(2)])
    def test_sweep_equals_local_block_sweep(self, semantics):
        plan, serial = plan_and_serial(semantics)
        for block in partition_sources(plan.n, 3):
            result = dispatch_worker(
                "sweep", {"plan": plan_to_spec(plan), "sources": list(block)}
            )
            assert np.array_equal(matrix_from_spec(result), serial[list(block)])

    def test_ping(self):
        assert dispatch_worker("ping", {}) == "pong"

    def test_unknown_op_rejected(self):
        with pytest.raises(ServiceError):
            dispatch_worker("arrival", {})

    @pytest.mark.parametrize(
        "sources", [None, "0,1", [0, "1"], [True], [[0]], [0, -1], [0, 99]]
    )
    def test_bad_sources_rejected(self, sources):
        plan, _serial = plan_and_serial()
        with pytest.raises(ServiceError):
            dispatch_worker("sweep", {"plan": plan_to_spec(plan), "sources": sources})

    def test_malformed_plan_rejected(self):
        with pytest.raises(ServiceError):
            dispatch_worker("sweep", {"plan": {"kind": "nope"}, "sources": [0]})

    def test_error_frames_are_structured(self):
        response = handle_worker_request({"op": "sweep", "id": 7, "plan": None})
        assert response == {
            "id": 7,
            "ok": False,
            "error": "ServiceError: sweep needs a plan spec or a plan_key",
        }

    def test_result_frames_echo_the_id(self):
        plan, serial = plan_and_serial()
        response = handle_worker_request(
            {"op": "sweep", "id": 3, "plan": plan_to_spec(plan), "sources": [0, 1]}
        )
        assert response["id"] == 3 and response["ok"]
        assert np.array_equal(matrix_from_spec(response["result"]), serial[:2])


class TestPlanCacheProtocol:
    """The sticky-plan side of the dispatcher: full-plan jobs seed the
    worker's cache, fingerprint-only jobs answer from it or miss with
    the one structured error the executor repairs by re-shipping."""

    def test_fingerprint_only_job_answers_from_the_cache(self):
        plan, serial = plan_and_serial()
        spec = plan_to_spec(plan)
        key = plan_fingerprint(spec)
        plans = PlanCache()
        dispatch_worker("sweep", {"plan": spec, "sources": [0]}, plans)
        result = dispatch_worker(
            "sweep", {"plan_key": key, "sources": [1, 2]}, plans
        )
        assert np.array_equal(matrix_from_spec(result), serial[1:3])
        # Both routes echo the fingerprint of the job actually computed.
        assert result["fingerprint"] == plan_fingerprint(spec, ([1, 2], None))

    def test_unknown_fingerprint_is_a_plan_miss(self):
        plans = PlanCache()
        with pytest.raises(PlanMissError):
            dispatch_worker(
                "sweep", {"plan_key": "deadbeefdeadbeef", "sources": [0]}, plans
            )

    def test_plan_miss_frame_is_structured_and_detectable(self):
        """The executor detects a miss by the error frame's exception
        name prefix — pin the wire shape the repair path keys on."""
        response = handle_worker_request(
            {"op": "sweep", "id": 9, "plan_key": "deadbeefdeadbeef", "sources": [0]},
            PlanCache(),
        )
        assert response["id"] == 9 and not response["ok"]
        assert response["error"].startswith("PlanMissError")

    def test_without_a_cache_every_fingerprint_job_misses(self):
        plan, _serial = plan_and_serial()
        spec = plan_to_spec(plan)
        dispatch_worker("sweep", {"plan": spec, "sources": [0]})  # plans=None
        with pytest.raises(PlanMissError):
            dispatch_worker(
                "sweep", {"plan_key": plan_fingerprint(spec), "sources": [0]}
            )

    def test_non_string_plan_key_rejected(self):
        with pytest.raises(ServiceError, match="must be a string"):
            dispatch_worker("sweep", {"plan_key": 7, "sources": [0]}, PlanCache())

    def test_lru_eviction_is_bounded_and_counted(self):
        plans = PlanCache(max_plans=2)
        specs = []
        for seed in (1, 2, 3):
            plan, _ = plan_and_serial(n=8, seed=seed)
            spec = plan_to_spec(plan)
            specs.append(spec)
            dispatch_worker("sweep", {"plan": spec, "sources": [0]}, plans)
        assert len(plans) == 2 and plans.evictions == 1
        # The oldest plan is gone; the two newest still answer.
        with pytest.raises(PlanMissError):
            dispatch_worker(
                "sweep", {"plan_key": plan_fingerprint(specs[0]), "sources": [0]},
                plans,
            )
        for spec in specs[1:]:
            dispatch_worker(
                "sweep", {"plan_key": plan_fingerprint(spec), "sources": [0]},
                plans,
            )
        assert plans.hits == 2 and plans.misses == 1

    def test_zero_capacity_cache_rejected(self):
        with pytest.raises(ServiceError):
            PlanCache(max_plans=0)

    def test_stats_op_reports_the_plan_cache(self):
        plans = PlanCache()
        plan, _ = plan_and_serial()
        dispatch_worker("sweep", {"plan": plan_to_spec(plan), "sources": [0]}, plans)
        report = dispatch_worker("stats", {}, plans)
        assert report["plan_cache"]["plans"] == 1
        assert dispatch_worker("stats", {})["plan_cache"] is None


class TestWorkerAddresses:
    def test_host_port_strings_parse(self):
        assert parse_worker_address("127.0.0.1:7713") == ("127.0.0.1", 7713)
        assert parse_worker_address("sweeper.internal:80") == ("sweeper.internal", 80)
        assert parse_worker_address(("h", 9)) == ("h", 9)

    @pytest.mark.parametrize("text", ["", "7713", ":7713", "host:", "host:x", "h:0", "h:70000"])
    def test_malformed_addresses_rejected(self, text):
        with pytest.raises(ServiceError):
            parse_worker_address(text)

    def test_bracketed_ipv6_literal_keeps_its_address(self):
        """``[::1]:7713`` is host ``::1`` port 7713 — the brackets are
        wire syntax, not part of the address (an earlier build handed
        ``[::1]`` to the connector, which can never resolve)."""
        assert parse_worker_address("[::1]:7713") == ("::1", 7713)
        assert parse_worker_address("[fe80::2]:80") == ("fe80::2", 80)

    def test_bare_multi_colon_host_is_ambiguous(self):
        # "::1:7713" could be port 7713 of ::1 or all-address — reject,
        # pointing at the bracket syntax.
        with pytest.raises(ServiceError, match=r"bracket IPv6"):
            parse_worker_address("::1:7713")

    def test_bracketed_empty_host_rejected(self):
        with pytest.raises(ServiceError, match="empty host"):
            parse_worker_address("[]:7713")

    def test_tuple_ipv6_needs_no_brackets_but_sheds_them(self):
        # A pre-split pair is already unambiguous, brackets optional.
        assert parse_worker_address(("::1", 7713)) == ("::1", 7713)
        assert parse_worker_address(("[::1]", 7713)) == ("::1", 7713)

    def test_bare_string_fleet_is_one_worker_not_characters(self):
        assert ClusterExecutor("127.0.0.1:7713").workers == [("127.0.0.1", 7713)]

    @pytest.mark.parametrize(
        "pair", [("h", 0), ("h", 70000), ("h", "x"), ("", 7713), ("h", None)]
    )
    def test_tuple_addresses_get_the_same_validation(self, pair):
        with pytest.raises(ServiceError):
            parse_worker_address(pair)

    def test_service_accepts_a_bare_worker_string(self):
        from repro.service.service import TVGService

        service = TVGService(
            periodic_random_tvg(6, period=4, density=0.3, seed=1),
            workers="127.0.0.1:7713",
        )
        assert service.cluster.workers == [("127.0.0.1", 7713)]

    def test_service_threads_the_worker_timeout(self):
        from repro.service.service import TVGService

        graph = periodic_random_tvg(6, period=4, density=0.3, seed=1)
        service = TVGService(graph, workers=["127.0.0.1:7713"], worker_timeout=2.5)
        assert service.cluster.timeout == 2.5


class TestExecutorWithoutWorkers:
    def test_empty_fleet_sweeps_locally(self):
        plan, serial = plan_and_serial()
        cluster = ClusterExecutor([])
        assert np.array_equal(cluster.sweep(plan), serial)
        assert cluster.jobs_shipped == 0

    def test_routing_policy(self):
        cluster = ClusterExecutor(["127.0.0.1:7713"])
        assert cluster.routes(100)
        assert not cluster.routes(0)
        assert not cluster.routes(3)  # below MIN_PARALLEL_NODES
        assert not ClusterExecutor([]).routes(100)
        assert ClusterExecutor(["127.0.0.1:7713"], min_nodes=0).routes(1)

    def test_empty_plan_answers_without_any_jobs(self):
        graph = periodic_random_tvg(2, period=4, density=0.5, seed=1)
        engine = TemporalEngine(graph)
        _nodes, plan = build_sweep_plan(engine, 0, WAIT, HORIZON)
        empty = plan.__class__(
            n=0, out_edges=(), target_idx=(), contacts=(), arrivals=(),
            start_time=0, horizon=HORIZON, max_wait=None,
        )
        cluster = ClusterExecutor(["127.0.0.1:1"])  # nothing listens there
        matrix = cluster.sweep(empty)
        assert matrix.shape == (0, 0)
        assert cluster.jobs_shipped == 0

    def test_block_rows_match_serial_rows(self):
        plan, serial = plan_and_serial(bounded_wait(1))
        rows = sweep_block(plan, (4, 1, 7))
        assert np.array_equal(rows, serial[[4, 1, 7]])
