"""Socket-free tests for the cluster's worker side.

The worker dispatcher (:func:`repro.service.cluster.dispatch_worker`)
is a plain function — plan spec plus source block in, packed sub-matrix
out — so its whole contract is testable without opening a port: the
returned matrix must equal :func:`~repro.core.parallel.sweep_block` on
the same inputs, and every malformed request must come back as a
structured error frame, never a crash.
"""

import numpy as np
import pytest

from repro.core.engine import TemporalEngine
from repro.core.generators import periodic_random_tvg
from repro.core.parallel import build_sweep_plan, partition_sources, sweep_block
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import ServiceError
from repro.service.cluster import (
    ClusterExecutor,
    dispatch_worker,
    handle_worker_request,
    parse_worker_address,
)
from repro.service.wire import matrix_from_spec, plan_to_spec

HORIZON = 14


def plan_and_serial(semantics=WAIT, n=12, seed=3):
    graph = periodic_random_tvg(n, period=6, density=0.12, seed=seed)
    engine = TemporalEngine(graph)
    _nodes, serial = engine.arrival_matrix(0, semantics, horizon=HORIZON)
    _same, plan = build_sweep_plan(engine, 0, semantics, HORIZON)
    return plan, serial


class TestDispatcher:
    @pytest.mark.parametrize("semantics", [NO_WAIT, WAIT, bounded_wait(2)])
    def test_sweep_equals_local_block_sweep(self, semantics):
        plan, serial = plan_and_serial(semantics)
        for block in partition_sources(plan.n, 3):
            result = dispatch_worker(
                "sweep", {"plan": plan_to_spec(plan), "sources": list(block)}
            )
            assert np.array_equal(matrix_from_spec(result), serial[list(block)])

    def test_ping(self):
        assert dispatch_worker("ping", {}) == "pong"

    def test_unknown_op_rejected(self):
        with pytest.raises(ServiceError):
            dispatch_worker("arrival", {})

    @pytest.mark.parametrize(
        "sources", [None, "0,1", [0, "1"], [True], [[0]], [0, -1], [0, 99]]
    )
    def test_bad_sources_rejected(self, sources):
        plan, _serial = plan_and_serial()
        with pytest.raises(ServiceError):
            dispatch_worker("sweep", {"plan": plan_to_spec(plan), "sources": sources})

    def test_malformed_plan_rejected(self):
        with pytest.raises(ServiceError):
            dispatch_worker("sweep", {"plan": {"kind": "nope"}, "sources": [0]})

    def test_error_frames_are_structured(self):
        response = handle_worker_request({"op": "sweep", "id": 7, "plan": None})
        assert response == {
            "id": 7,
            "ok": False,
            "error": f"ServiceError: malformed sweep plan spec {None!r}",
        }

    def test_result_frames_echo_the_id(self):
        plan, serial = plan_and_serial()
        response = handle_worker_request(
            {"op": "sweep", "id": 3, "plan": plan_to_spec(plan), "sources": [0, 1]}
        )
        assert response["id"] == 3 and response["ok"]
        assert np.array_equal(matrix_from_spec(response["result"]), serial[:2])


class TestWorkerAddresses:
    def test_host_port_strings_parse(self):
        assert parse_worker_address("127.0.0.1:7713") == ("127.0.0.1", 7713)
        assert parse_worker_address("sweeper.internal:80") == ("sweeper.internal", 80)
        assert parse_worker_address(("h", 9)) == ("h", 9)

    @pytest.mark.parametrize("text", ["", "7713", ":7713", "host:", "host:x", "h:0", "h:70000"])
    def test_malformed_addresses_rejected(self, text):
        with pytest.raises(ServiceError):
            parse_worker_address(text)

    def test_bare_string_fleet_is_one_worker_not_characters(self):
        assert ClusterExecutor("127.0.0.1:7713").workers == [("127.0.0.1", 7713)]

    @pytest.mark.parametrize(
        "pair", [("h", 0), ("h", 70000), ("h", "x"), ("", 7713), ("h", None)]
    )
    def test_tuple_addresses_get_the_same_validation(self, pair):
        with pytest.raises(ServiceError):
            parse_worker_address(pair)

    def test_service_accepts_a_bare_worker_string(self):
        from repro.service.service import TVGService

        service = TVGService(
            periodic_random_tvg(6, period=4, density=0.3, seed=1),
            workers="127.0.0.1:7713",
        )
        assert service.cluster.workers == [("127.0.0.1", 7713)]

    def test_service_threads_the_worker_timeout(self):
        from repro.service.service import TVGService

        graph = periodic_random_tvg(6, period=4, density=0.3, seed=1)
        service = TVGService(graph, workers=["127.0.0.1:7713"], worker_timeout=2.5)
        assert service.cluster.timeout == 2.5


class TestExecutorWithoutWorkers:
    def test_empty_fleet_sweeps_locally(self):
        plan, serial = plan_and_serial()
        cluster = ClusterExecutor([])
        assert np.array_equal(cluster.sweep(plan), serial)
        assert cluster.jobs_shipped == 0

    def test_routing_policy(self):
        cluster = ClusterExecutor(["127.0.0.1:7713"])
        assert cluster.routes(100)
        assert not cluster.routes(0)
        assert not cluster.routes(3)  # below MIN_PARALLEL_NODES
        assert not ClusterExecutor([]).routes(100)
        assert ClusterExecutor(["127.0.0.1:7713"], min_nodes=0).routes(1)

    def test_empty_plan_answers_without_any_jobs(self):
        graph = periodic_random_tvg(2, period=4, density=0.5, seed=1)
        engine = TemporalEngine(graph)
        _nodes, plan = build_sweep_plan(engine, 0, WAIT, HORIZON)
        empty = plan.__class__(
            n=0, out_edges=(), target_idx=(), contacts=(), arrivals=(),
            start_time=0, horizon=HORIZON, max_wait=None,
        )
        cluster = ClusterExecutor(["127.0.0.1:1"])  # nothing listens there
        matrix = cluster.sweep(empty)
        assert matrix.shape == (0, 0)
        assert cluster.jobs_shipped == 0

    def test_block_rows_match_serial_rows(self):
        plan, serial = plan_and_serial(bounded_wait(1))
        rows = sweep_block(plan, (4, 1, 7))
        assert np.array_equal(rows, serial[[4, 1, 7]])
