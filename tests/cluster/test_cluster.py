"""End-to-end tests for the distributed arrival sweep.

Real loopback workers (asyncio servers indistinguishable on the wire
from ``python -m repro worker``), a real executor, and the one claim
that matters: whatever the fleet does — cooperate, refuse, die, hang,
or lie about shapes — the stacked matrix equals the serial sweep
element for element.

Marked ``cluster`` *and* ``service``: these open loopback sockets,
which some sandboxes forbid — deselect with ``-m "not service"`` (or
``-m "not cluster"``) there.
"""

import asyncio

import numpy as np
import pytest

from repro.core.engine import TemporalEngine
from repro.core.generators import periodic_random_tvg
from repro.core.latency import function_latency
from repro.core.presence import function_presence, periodic_presence
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.service.cluster import (
    ClusterExecutor,
    FaultyWorker,
    LoopbackWorkerPool,
    _run_sync,
    handle_worker_request,
)
from repro.service.service import TVGService

pytestmark = [pytest.mark.cluster, pytest.mark.service]

HORIZON = 14
SEMANTICS = [NO_WAIT, WAIT, bounded_wait(2)]


def random_graph(n=16, seed=11):
    return periodic_random_tvg(n, period=6, density=0.12, seed=seed)


def blackbox_ring(n=10):
    """Nothing on it pickles or serializes: black-box predicates and a
    lambda latency, all resolved in the parent when the plan is built."""
    g = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="blackbox-ring")
    g.add_nodes(range(n))
    for u in range(n):
        g.add_edge(
            u,
            (u + 1) % n,
            presence=function_presence(
                lambda t, u=u: t % 3 == u % 3, f"p{u}"
            ),
            latency=function_latency(lambda t: 1 + t % 2, "odd-even"),
        )
    g.add_edge(0, n // 2, presence=periodic_presence([0, 2], 4), key="chord")
    return g


@pytest.fixture(scope="module")
def pool():
    try:
        with LoopbackWorkerPool(2) as workers:
            yield workers
    except OSError as exc:  # pragma: no cover — sandbox
        pytest.skip(f"loopback sockets unavailable: {exc}")


class TestRunSync:
    """Pins for the sync/async bridge: sockets never enter the picture.

    ``_run_sync`` must behave identically whether or not the caller is
    already on an event loop — in particular, exceptions from the
    coroutine must *propagate*, never be swallowed (the executor's
    local-resweep fallback keys off them).
    """

    def test_returns_value_outside_a_loop(self):
        async def coro():
            return 41 + 1

        assert _run_sync(coro()) == 42

    def test_propagates_exception_outside_a_loop(self):
        async def coro():
            raise ValueError("sweep failed")

        with pytest.raises(ValueError, match="sweep failed"):
            _run_sync(coro())

    def test_returns_value_inside_a_running_loop(self):
        async def inner():
            return "nested"

        async def outer():
            return _run_sync(inner())

        assert asyncio.run(outer()) == "nested"

    def test_propagates_exception_inside_a_running_loop(self):
        async def inner():
            raise RuntimeError("worker gone")

        async def outer():
            with pytest.raises(RuntimeError, match="worker gone"):
                _run_sync(inner())
            return True

        assert asyncio.run(outer())


class TestDistributedEqualsSerial:
    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_matrix_identical_across_the_wire(self, pool, semantics):
        g = random_graph()
        cluster = ClusterExecutor(pool.addresses)
        nodes, distributed = TemporalEngine(g).arrival_matrix(
            0, semantics, horizon=HORIZON, cluster=cluster
        )
        same, serial = TemporalEngine(g).arrival_matrix(0, semantics, horizon=HORIZON)
        assert nodes == same
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_shipped >= 2 and cluster.jobs_recovered == 0

    def test_blackbox_graph_never_crosses_the_wire(self, pool):
        g = blackbox_ring()
        cluster = ClusterExecutor(pool.addresses)
        nodes, distributed = TemporalEngine(g).arrival_matrix(
            0, WAIT, cluster=cluster
        )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT)
        assert np.array_equal(distributed, serial)

    def test_derived_views_accept_cluster(self, pool):
        g = random_graph(n=12, seed=5)
        cluster = ClusterExecutor(pool.addresses)
        engine = TemporalEngine(g)
        nodes, boolean = engine.reachability_matrix(
            0, WAIT, HORIZON, cluster=cluster
        )
        _same, masks = engine.reachability_masks(0, WAIT, HORIZON, cluster=cluster)
        _also, serial = TemporalEngine(g).reachability_matrix(0, WAIT, HORIZON)
        assert np.array_equal(boolean, serial)
        for j in range(len(nodes)):
            assert masks[j] == sum(1 << i for i in range(len(nodes)) if boolean[i, j])

    def test_tiny_graphs_stay_serial(self, pool):
        g = random_graph(n=4, seed=2)
        cluster = ClusterExecutor(pool.addresses)
        _nodes, matrix = TemporalEngine(g).arrival_matrix(
            0, WAIT, horizon=HORIZON, cluster=cluster
        )
        assert cluster.jobs_shipped == 0  # routed to the serial path
        assert matrix.shape == (4, 4)


class TestFaultRecovery:
    @pytest.mark.parametrize(
        "mode", ["kill", "corrupt", "misshape", "stale-plan-version"]
    )
    def test_faulty_worker_never_changes_the_answer(self, pool, mode):
        g = random_graph()
        with FaultyWorker(mode) as faulty:
            cluster = ClusterExecutor(
                [pool.addresses[0], faulty.address, pool.addresses[1]]
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            assert faulty.jobs_seen >= 1  # it really got a block
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered >= 1

    def test_stale_plan_result_is_rejected_by_fingerprint(self, pool):
        """A stale-plan frame is well-formed AND well-shaped — before
        fingerprint tagging the executor stacked its zeros straight into
        the answer.  Now it must be rejected (counted separately from
        generic recoveries) and the block re-swept locally."""
        g = random_graph()
        with FaultyWorker("stale-plan-version") as faulty:
            cluster = ClusterExecutor(
                [pool.addresses[0], faulty.address, pool.addresses[1]]
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            assert faulty.jobs_seen >= 1
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.stale_results_rejected >= 1
        assert cluster.jobs_recovered >= 1
        assert cluster.stats()["stale_results_rejected"] >= 1

    def test_honest_workers_pass_the_fingerprint_check(self, pool):
        g = random_graph()
        cluster = ClusterExecutor(pool.addresses)
        TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
        assert cluster.jobs_shipped >= 2
        assert cluster.stale_results_rejected == 0
        assert cluster.jobs_recovered == 0

    def test_hanging_worker_times_out_and_recovers(self, pool):
        g = random_graph()
        with FaultyWorker("hang") as faulty:
            cluster = ClusterExecutor(
                [faulty.address, pool.addresses[0]], timeout=0.3
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered >= 1

    def test_whole_fleet_dead_still_answers(self):
        g = random_graph()
        cluster = ClusterExecutor(["127.0.0.1:1", "127.0.0.1:1"], timeout=1.0)
        _nodes, distributed = TemporalEngine(g).arrival_matrix(
            0, WAIT, horizon=HORIZON, cluster=cluster
        )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered == cluster.jobs_shipped >= 2


class TestWorkerConcurrency:
    def test_slow_job_does_not_freeze_the_worker_for_other_clients(
        self, pool, monkeypatch
    ):
        """A worker is shared by many executors: while one client's job
        sweeps, another client's ping must still be answered (dispatch
        runs off the event loop)."""
        import asyncio
        import time

        import repro.service.cluster as cluster_mod
        from repro.service.client import ServiceClient

        real = cluster_mod.dispatch_worker

        def slow_dispatch(op, params, plans=None):
            if op == "sweep":
                time.sleep(1.0)
            return real(op, params, plans)

        monkeypatch.setattr(cluster_mod, "dispatch_worker", slow_dispatch)
        host, port_text = pool.addresses[0].rsplit(":", 1)

        async def body():
            g = random_graph(n=10, seed=3)
            engine = TemporalEngine(g)
            from repro.core.parallel import build_sweep_plan
            from repro.service.wire import plan_to_spec

            _nodes, plan = build_sweep_plan(engine, 0, WAIT, HORIZON)
            sweeper = await ServiceClient.connect(host, int(port_text))
            pinger = await ServiceClient.connect(host, int(port_text))
            try:
                job = asyncio.ensure_future(
                    sweeper.request(
                        "sweep", plan=plan_to_spec(plan), sources=[0, 1]
                    )
                )
                await asyncio.sleep(0.1)  # let the slow job start
                began = time.perf_counter()
                assert await pinger.ping() == "pong"
                ping_seconds = time.perf_counter() - began
                await job
                return ping_seconds
            finally:
                await sweeper.close()
                await pinger.close()

        assert asyncio.run(body()) < 0.5  # answered while the sweep slept

    def test_handle_worker_request_stays_synchronous(self):
        """The dispatcher itself is sync (trace replay and unit tests
        call it directly); only the socket handler threads it."""
        assert handle_worker_request({"op": "ping"})["result"] == "pong"


class TestPoolLifecycle:
    def test_startup_failure_leaks_no_loop_or_servers(self, monkeypatch):
        import repro.service.cluster as cluster_mod

        real = cluster_mod.serve_worker
        calls = {"n": 0}

        async def flaky(host="127.0.0.1", port=0, plan_cache=None):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("no more ports")
            return await real(host, port, plan_cache)

        monkeypatch.setattr(cluster_mod, "serve_worker", flaky)
        pool = cluster_mod.LoopbackWorkerPool(2)
        with pytest.raises(OSError, match="no more ports"):
            pool.__enter__()
        # The first worker's server and the loop thread were torn down.
        assert pool._loop is None and pool._thread is None
        assert not pool._servers


class TestStickyPlans:
    """The sticky fast path: plan shipped once per worker, fingerprint
    jobs after, and the one-re-ship repair on eviction."""

    def test_repeat_sweeps_ship_the_plan_once_per_worker(self):
        with LoopbackWorkerPool(2) as pool:
            g = random_graph()
            engine = TemporalEngine(g)
            cluster = ClusterExecutor(pool.addresses)
            _nodes, first = engine.arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            shipped = cluster.plans_shipped
            assert 1 <= shipped <= len(pool.addresses)
            first_bytes = cluster.bytes_sent
            _same, second = engine.arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            assert np.array_equal(first, second)
            # Same (version, window, semantics) → same fingerprint: the
            # second sweep rides the worker caches, no plan crosses.
            assert cluster.plans_shipped == shipped
            assert cluster.plan_misses == 0 and cluster.jobs_recovered == 0
            assert cluster.bytes_sent - first_bytes < first_bytes

    def test_distinct_queries_ship_distinct_plans(self):
        with LoopbackWorkerPool(1) as pool:
            g = random_graph()
            engine = TemporalEngine(g)
            cluster = ClusterExecutor(pool.addresses)
            engine.arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
            engine.arrival_matrix(0, NO_WAIT, horizon=HORIZON, cluster=cluster)
            assert cluster.plans_shipped == 2
            assert pool.plan_caches[0].stats()["plans"] == 2

    def test_evicted_plan_is_reshipped_and_never_wrong(self):
        """A worker whose LRU dropped a plan answers the fingerprint job
        with a plan-miss; the executor's one re-ship repairs it — no
        local recovery, no answer change."""
        with LoopbackWorkerPool(1, plan_cache_size=1) as pool:
            cluster = ClusterExecutor(pool.addresses, min_nodes=0)
            engines = {
                seed: TemporalEngine(random_graph(n=12, seed=seed))
                for seed in (1, 2)
            }
            serials = {
                seed: TemporalEngine(random_graph(n=12, seed=seed)).arrival_matrix(
                    0, WAIT, horizon=HORIZON
                )[1]
                for seed in (1, 2)
            }
            for _round in range(2):
                # Alternating two plans through a one-slot cache evicts
                # the other plan on every sweep.
                for seed, engine in engines.items():
                    _nodes, matrix = engine.arrival_matrix(
                        0, WAIT, horizon=HORIZON, cluster=cluster
                    )
                    assert np.array_equal(matrix, serials[seed])
            assert cluster.plan_misses >= 1
            assert cluster.jobs_recovered == 0
            assert pool.plan_caches[0].evictions >= 2

    def test_set_workers_forgets_beliefs_about_departed_members(self):
        with LoopbackWorkerPool(1) as pool:
            g = random_graph()
            engine = TemporalEngine(g)
            cluster = ClusterExecutor(pool.addresses)
            engine.arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
            shipped = cluster.plans_shipped
            # Leave and re-join: the executor must not assume the worker
            # still holds the plan (it happens to, but a fresh belief
            # costs one correct re-ship, not a wrong answer).
            cluster.set_workers([])
            cluster.set_workers(pool.addresses)
            engine.arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
            assert cluster.plans_shipped == shipped + 1


class TestChaosModes:
    def test_plan_evicted_chaos_becomes_local_resweep_not_a_loop(self, pool):
        """A worker that claims eviction forever gets exactly one
        re-ship, then its jobs fail into local recovery."""
        g = random_graph()
        with FaultyWorker("plan-evicted") as faulty:
            cluster = ClusterExecutor([pool.addresses[0], faulty.address])
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            assert faulty.jobs_seen >= 1
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered >= 1

    def test_steal_crash_takes_its_block_to_the_grave(self, pool):
        """The worst stealing case: a worker accepts a block, then dies
        completely (no reply, listener closed).  The block must be
        recovered and later jobs routed around the corpse."""
        g = random_graph()
        with FaultyWorker("steal-crash") as faulty:
            cluster = ClusterExecutor(
                [pool.addresses[0], faulty.address, pool.addresses[1]],
                timeout=2.0,
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            assert faulty.jobs_seen >= 1
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered >= 1

    def test_hang_recovery_is_specifically_a_timeout(self, pool):
        """Regression: the hang double used to give up after 10 s —
        shorter than the default 30 s job timeout — so "hang" chaos
        actually manifested as EOF and the asyncio.TimeoutError branch
        (a *subclass of OSError* on this Python, so except-order matters)
        went unexercised.  Now it holds until close(); with a short job
        timeout the recovery must be counted as a timeout."""
        g = random_graph()
        with FaultyWorker("hang") as faulty:
            cluster = ClusterExecutor(
                [faulty.address, pool.addresses[0]], timeout=0.3
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_timed_out >= 1
        assert cluster.jobs_recovered >= cluster.jobs_timed_out
        assert cluster.stats()["jobs_timed_out"] >= 1


class TestElasticFleet:
    def test_worker_joining_mid_sweep_steals_queued_blocks(self, pool):
        """A sweep starts against one hanging worker; a healthy worker
        joins mid-flight via set_workers and drains the queue, so the
        sweep finishes in ~one job timeout instead of one per block."""
        import threading
        import time

        g = random_graph()
        with FaultyWorker("hang") as faulty:
            cluster = ClusterExecutor([faulty.address], timeout=1.0)
            timer = threading.Timer(
                0.2,
                cluster.set_workers,
                args=([faulty.address, pool.addresses[0]],),
            )
            timer.start()
            began = time.perf_counter()
            try:
                _nodes, distributed = TemporalEngine(g).arrival_matrix(
                    0, WAIT, horizon=HORIZON, cluster=cluster
                )
            finally:
                timer.cancel()
                timer.join()
            elapsed = time.perf_counter() - began
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        # The joined worker answered remotely (only it could have) …
        assert cluster.jobs_shipped - cluster.jobs_recovered >= 1
        # … so only the hanging worker's in-flight block paid a timeout.
        assert elapsed < 3.0

    def test_fleet_shrinking_to_empty_goes_local(self, pool):
        g = random_graph()
        cluster = ClusterExecutor(pool.addresses)
        engine = TemporalEngine(g)
        engine.arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
        shipped = cluster.jobs_shipped
        cluster.set_workers([])
        assert not cluster.routes(100)
        _nodes, matrix = engine.arrival_matrix(
            0, WAIT, horizon=HORIZON, cluster=cluster
        )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(matrix, serial)
        assert cluster.jobs_shipped == shipped  # nothing left to ship to

    def test_set_workers_validates_every_address(self, pool):
        from repro.errors import ServiceError

        cluster = ClusterExecutor(pool.addresses)
        with pytest.raises(ServiceError):
            cluster.set_workers(["not-an-address"])
        # The failed call must not have half-applied.
        assert [f"{h}:{p}" for h, p in cluster.workers] == list(pool.addresses)

    def test_oversplit_produces_more_blocks_than_workers(self, pool):
        g = random_graph()
        cluster = ClusterExecutor(pool.addresses, oversplit=4)
        TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
        assert cluster.jobs_shipped >= 2 * len(pool.addresses)
        assert cluster.stats()["oversplit"] == 4

    def test_oversplit_must_be_positive(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            ClusterExecutor([], oversplit=0)


class TestStatsKernel:
    def test_stats_report_the_last_swept_kernel(self, pool, monkeypatch):
        """Regression: stats() used to re-resolve REPRO_SWEEP_KERNEL at
        stats time, so flipping the environment after a sweep made the
        report contradict what the jobs actually ran on."""
        g = random_graph()
        cluster = ClusterExecutor(pool.addresses)
        monkeypatch.setenv("REPRO_SWEEP_KERNEL", "bitset")
        TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
        assert cluster.stats()["kernel"] == "bitset"
        monkeypatch.setenv("REPRO_SWEEP_KERNEL", "bignum")
        assert cluster.stats()["kernel"] == "bitset"  # what actually ran
        TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
        assert cluster.stats()["kernel"] == "bignum"

    def test_stats_before_any_sweep_report_the_resolved_default(self):
        assert ClusterExecutor([], kernel="bignum").stats()["kernel"] == "bignum"


class TestServiceIntegration:
    def test_service_with_workers_matches_local_service(self, pool):
        g = random_graph()
        clustered = TVGService(g, workers=pool.addresses)
        local = TVGService(random_graph())
        assert clustered.growth(0, HORIZON) == local.growth(0, HORIZON)
        assert clustered.arrival(0, 7, 0, HORIZON) == local.arrival(0, 7, 0, HORIZON)
        assert clustered.classify(0, HORIZON) == local.classify(0, HORIZON)
        stats = clustered.stats()
        assert stats["cluster"]["jobs_shipped"] >= 2
        assert stats["cluster"]["jobs_recovered"] == 0

    def test_service_accepts_a_ready_executor(self, pool):
        cluster = ClusterExecutor(pool.addresses, timeout=5.0)
        service = TVGService(random_graph(), workers=cluster)
        assert service.cluster is cluster
        assert service.reach(0, 1, 0, HORIZON) == TVGService(random_graph()).reach(
            0, 1, 0, HORIZON
        )

    def test_service_set_workers_attaches_and_detaches_the_fleet(self, pool):
        service = TVGService(
            random_graph(), worker_timeout=2.5, kernel="bitset", oversplit=3
        )
        assert service.cluster is None
        resolved = service.set_workers(pool.addresses)
        assert resolved == list(pool.addresses)
        # The late-attached executor inherits the service's configuration.
        assert service.cluster.timeout == 2.5
        assert service.cluster.oversplit == 3
        local = TVGService(random_graph())
        assert service.growth(0, HORIZON) == local.growth(0, HORIZON)
        assert service.cluster.jobs_shipped >= 1
        assert service.set_workers([]) == []
        shipped = service.cluster.jobs_shipped
        service.graph.add_edge(0, 1, presence=periodic_presence([0], 2))
        service._mutated()
        service.arrival(0, 1, 0, HORIZON)
        assert service.cluster.jobs_shipped == shipped  # swept locally

    def test_set_workers_over_the_wire(self, pool):
        """The elastic-membership op end to end: dispatch-level frames
        re-resolve a served service's fleet (and reject bad params)."""
        from repro.service.server import handle_request

        service = TVGService(random_graph())
        response = handle_request(
            service, {"op": "set_workers", "id": 1, "workers": list(pool.addresses)}
        )
        assert response == {"id": 1, "ok": True, "result": list(pool.addresses)}
        assert service.cluster is not None
        for bad in (None, "127.0.0.1:1", [1, 2], [["127.0.0.1", 1]]):
            frame = handle_request(
                service, {"op": "set_workers", "id": 2, "workers": bad}
            )
            assert not frame["ok"] and "host:port" in frame["error"]
        # A malformed address inside a well-typed list is a structured
        # error too, and must not half-apply.
        frame = handle_request(
            service, {"op": "set_workers", "id": 3, "workers": ["nope"]}
        )
        assert not frame["ok"] and frame["error"].startswith("ServiceError")
        assert [f"{h}:{p}" for h, p in service.cluster.workers] == list(
            pool.addresses
        )
