"""End-to-end tests for the distributed arrival sweep.

Real loopback workers (asyncio servers indistinguishable on the wire
from ``python -m repro worker``), a real executor, and the one claim
that matters: whatever the fleet does — cooperate, refuse, die, hang,
or lie about shapes — the stacked matrix equals the serial sweep
element for element.

Marked ``cluster`` *and* ``service``: these open loopback sockets,
which some sandboxes forbid — deselect with ``-m "not service"`` (or
``-m "not cluster"``) there.
"""

import numpy as np
import pytest

from repro.core.engine import TemporalEngine
from repro.core.generators import periodic_random_tvg
from repro.core.latency import function_latency
from repro.core.presence import function_presence, periodic_presence
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.service.cluster import (
    ClusterExecutor,
    FaultyWorker,
    LoopbackWorkerPool,
    handle_worker_request,
)
from repro.service.service import TVGService

pytestmark = [pytest.mark.cluster, pytest.mark.service]

HORIZON = 14
SEMANTICS = [NO_WAIT, WAIT, bounded_wait(2)]


def random_graph(n=16, seed=11):
    return periodic_random_tvg(n, period=6, density=0.12, seed=seed)


def blackbox_ring(n=10):
    """Nothing on it pickles or serializes: black-box predicates and a
    lambda latency, all resolved in the parent when the plan is built."""
    g = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="blackbox-ring")
    g.add_nodes(range(n))
    for u in range(n):
        g.add_edge(
            u,
            (u + 1) % n,
            presence=function_presence(
                lambda t, u=u: t % 3 == u % 3, f"p{u}"
            ),
            latency=function_latency(lambda t: 1 + t % 2, "odd-even"),
        )
    g.add_edge(0, n // 2, presence=periodic_presence([0, 2], 4), key="chord")
    return g


@pytest.fixture(scope="module")
def pool():
    try:
        with LoopbackWorkerPool(2) as workers:
            yield workers
    except OSError as exc:  # pragma: no cover — sandbox
        pytest.skip(f"loopback sockets unavailable: {exc}")


class TestDistributedEqualsSerial:
    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_matrix_identical_across_the_wire(self, pool, semantics):
        g = random_graph()
        cluster = ClusterExecutor(pool.addresses)
        nodes, distributed = TemporalEngine(g).arrival_matrix(
            0, semantics, horizon=HORIZON, cluster=cluster
        )
        same, serial = TemporalEngine(g).arrival_matrix(0, semantics, horizon=HORIZON)
        assert nodes == same
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_shipped >= 2 and cluster.jobs_recovered == 0

    def test_blackbox_graph_never_crosses_the_wire(self, pool):
        g = blackbox_ring()
        cluster = ClusterExecutor(pool.addresses)
        nodes, distributed = TemporalEngine(g).arrival_matrix(
            0, WAIT, cluster=cluster
        )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT)
        assert np.array_equal(distributed, serial)

    def test_derived_views_accept_cluster(self, pool):
        g = random_graph(n=12, seed=5)
        cluster = ClusterExecutor(pool.addresses)
        engine = TemporalEngine(g)
        nodes, boolean = engine.reachability_matrix(
            0, WAIT, HORIZON, cluster=cluster
        )
        _same, masks = engine.reachability_masks(0, WAIT, HORIZON, cluster=cluster)
        _also, serial = TemporalEngine(g).reachability_matrix(0, WAIT, HORIZON)
        assert np.array_equal(boolean, serial)
        for j in range(len(nodes)):
            assert masks[j] == sum(1 << i for i in range(len(nodes)) if boolean[i, j])

    def test_tiny_graphs_stay_serial(self, pool):
        g = random_graph(n=4, seed=2)
        cluster = ClusterExecutor(pool.addresses)
        _nodes, matrix = TemporalEngine(g).arrival_matrix(
            0, WAIT, horizon=HORIZON, cluster=cluster
        )
        assert cluster.jobs_shipped == 0  # routed to the serial path
        assert matrix.shape == (4, 4)


class TestFaultRecovery:
    @pytest.mark.parametrize(
        "mode", ["kill", "corrupt", "misshape", "stale-plan-version"]
    )
    def test_faulty_worker_never_changes_the_answer(self, pool, mode):
        g = random_graph()
        with FaultyWorker(mode) as faulty:
            cluster = ClusterExecutor(
                [pool.addresses[0], faulty.address, pool.addresses[1]]
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            assert faulty.jobs_seen >= 1  # it really got a block
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered >= 1

    def test_stale_plan_result_is_rejected_by_fingerprint(self, pool):
        """A stale-plan frame is well-formed AND well-shaped — before
        fingerprint tagging the executor stacked its zeros straight into
        the answer.  Now it must be rejected (counted separately from
        generic recoveries) and the block re-swept locally."""
        g = random_graph()
        with FaultyWorker("stale-plan-version") as faulty:
            cluster = ClusterExecutor(
                [pool.addresses[0], faulty.address, pool.addresses[1]]
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
            assert faulty.jobs_seen >= 1
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.stale_results_rejected >= 1
        assert cluster.jobs_recovered >= 1
        assert cluster.stats()["stale_results_rejected"] >= 1

    def test_honest_workers_pass_the_fingerprint_check(self, pool):
        g = random_graph()
        cluster = ClusterExecutor(pool.addresses)
        TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON, cluster=cluster)
        assert cluster.jobs_shipped >= 2
        assert cluster.stale_results_rejected == 0
        assert cluster.jobs_recovered == 0

    def test_hanging_worker_times_out_and_recovers(self, pool):
        g = random_graph()
        with FaultyWorker("hang") as faulty:
            cluster = ClusterExecutor(
                [faulty.address, pool.addresses[0]], timeout=0.3
            )
            _nodes, distributed = TemporalEngine(g).arrival_matrix(
                0, WAIT, horizon=HORIZON, cluster=cluster
            )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered >= 1

    def test_whole_fleet_dead_still_answers(self):
        g = random_graph()
        cluster = ClusterExecutor(["127.0.0.1:1", "127.0.0.1:1"], timeout=1.0)
        _nodes, distributed = TemporalEngine(g).arrival_matrix(
            0, WAIT, horizon=HORIZON, cluster=cluster
        )
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(distributed, serial)
        assert cluster.jobs_recovered == cluster.jobs_shipped >= 2


class TestWorkerConcurrency:
    def test_slow_job_does_not_freeze_the_worker_for_other_clients(
        self, pool, monkeypatch
    ):
        """A worker is shared by many executors: while one client's job
        sweeps, another client's ping must still be answered (dispatch
        runs off the event loop)."""
        import asyncio
        import time

        import repro.service.cluster as cluster_mod
        from repro.service.client import ServiceClient

        real = cluster_mod.dispatch_worker

        def slow_dispatch(op, params):
            if op == "sweep":
                time.sleep(1.0)
            return real(op, params)

        monkeypatch.setattr(cluster_mod, "dispatch_worker", slow_dispatch)
        host, port_text = pool.addresses[0].rsplit(":", 1)

        async def body():
            g = random_graph(n=10, seed=3)
            engine = TemporalEngine(g)
            from repro.core.parallel import build_sweep_plan
            from repro.service.wire import plan_to_spec

            _nodes, plan = build_sweep_plan(engine, 0, WAIT, HORIZON)
            sweeper = await ServiceClient.connect(host, int(port_text))
            pinger = await ServiceClient.connect(host, int(port_text))
            try:
                job = asyncio.ensure_future(
                    sweeper.request(
                        "sweep", plan=plan_to_spec(plan), sources=[0, 1]
                    )
                )
                await asyncio.sleep(0.1)  # let the slow job start
                began = time.perf_counter()
                assert await pinger.ping() == "pong"
                ping_seconds = time.perf_counter() - began
                await job
                return ping_seconds
            finally:
                await sweeper.close()
                await pinger.close()

        assert asyncio.run(body()) < 0.5  # answered while the sweep slept

    def test_handle_worker_request_stays_synchronous(self):
        """The dispatcher itself is sync (trace replay and unit tests
        call it directly); only the socket handler threads it."""
        assert handle_worker_request({"op": "ping"})["result"] == "pong"


class TestPoolLifecycle:
    def test_startup_failure_leaks_no_loop_or_servers(self, monkeypatch):
        import repro.service.cluster as cluster_mod

        real = cluster_mod.serve_worker
        calls = {"n": 0}

        async def flaky(host="127.0.0.1", port=0):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("no more ports")
            return await real(host, port)

        monkeypatch.setattr(cluster_mod, "serve_worker", flaky)
        pool = cluster_mod.LoopbackWorkerPool(2)
        with pytest.raises(OSError, match="no more ports"):
            pool.__enter__()
        # The first worker's server and the loop thread were torn down.
        assert pool._loop is None and pool._thread is None
        assert not pool._servers


class TestServiceIntegration:
    def test_service_with_workers_matches_local_service(self, pool):
        g = random_graph()
        clustered = TVGService(g, workers=pool.addresses)
        local = TVGService(random_graph())
        assert clustered.growth(0, HORIZON) == local.growth(0, HORIZON)
        assert clustered.arrival(0, 7, 0, HORIZON) == local.arrival(0, 7, 0, HORIZON)
        assert clustered.classify(0, HORIZON) == local.classify(0, HORIZON)
        stats = clustered.stats()
        assert stats["cluster"]["jobs_shipped"] >= 2
        assert stats["cluster"]["jobs_recovered"] == 0

    def test_service_accepts_a_ready_executor(self, pool):
        cluster = ClusterExecutor(pool.addresses, timeout=5.0)
        service = TVGService(random_graph(), workers=cluster)
        assert service.cluster is cluster
        assert service.reach(0, 1, 0, HORIZON) == TVGService(random_graph()).reach(
            0, 1, 0, HORIZON
        )
