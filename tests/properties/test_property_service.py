"""Stateful differential harness for the query service.

The earlier property suites proved the compiled kernel and the analysis
layer equivalent to the interpretive path on *fixed* graphs.  This
harness attacks the part neither could: the version/invalidation
machinery of :class:`~repro.service.service.TVGService` under
*adversarial schedules* — Hypothesis interleaves arbitrary mutations
(edge add/remove, presence swap, structured and black-box schedules)
with queries (``reach``, ``arrival``, ``growth``, ``classify``) under
NO_WAIT, WAIT, and bounded-wait semantics, and every single service
answer must equal a fresh interpretive-path computation on a *shadow
copy* of the graph that mirrors the mutations independently.

Any bug in version bumping, cache purging, engine recompilation, or
:class:`~repro.core.index.LazyContactCache` flushing shows up as a
divergence between the cached service answer and the shadow oracle,
and Hypothesis shrinks the schedule that exposes it.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.analysis.classes import classify
from repro.analysis.evolution import reachability_growth
from repro.core.latency import constant_latency
from repro.core.presence import (
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.traversal import earliest_arrivals
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ServiceError
from repro.service.service import TVGService

NODES = ("a", "b", "c", "d", "e")
HORIZON = 10

semantics_strategy = st.one_of(
    st.just(NO_WAIT),
    st.just(WAIT),
    st.integers(1, 2).map(bounded_wait),
)

endpoints_strategy = st.permutations(NODES).map(lambda order: tuple(order[:2]))


class _ResiduePredicate:
    """A deterministic black-box schedule (forces the lazy-cache path)."""

    def __init__(self, period: int, residue: int) -> None:
        self.period = period
        self.residue = residue

    def __call__(self, time: int) -> bool:
        return time % self.period == self.residue

    def __repr__(self) -> str:
        return f"_ResiduePredicate(t % {self.period} == {self.residue})"


@st.composite
def presences(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        period = draw(st.integers(2, 5))
        pattern = draw(st.sets(st.integers(0, period - 1), min_size=1, max_size=period))
        return periodic_presence(pattern, period)
    if kind == 1:
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, HORIZON - 1), st.integers(1, 4)),
                min_size=1,
                max_size=2,
            )
        )
        return interval_presence((a, a + width) for a, width in pairs)
    period = draw(st.integers(2, 4))
    residue = draw(st.integers(0, period - 1))
    return function_presence(_ResiduePredicate(period, residue), "blackbox")


@st.composite
def windows(draw):
    start = draw(st.integers(0, HORIZON - 2))
    end = draw(st.integers(start + 1, HORIZON))
    return start, end


class ServiceDifferentialMachine(RuleBasedStateMachine):
    """Mutations and queries interleave; the shadow oracle must agree."""

    def __init__(self) -> None:
        super().__init__()
        self.service = TVGService(self._fresh_graph("served"), cache_size=32)
        self.shadow = self._fresh_graph("shadow")
        self.keys: list[str] = []
        self.counter = 0
        # Background tasks in flight: task id -> (submit-time version,
        # the shadow's answer at submit time).  Snapshot isolation means
        # later mutations must never change what a task returns.
        self.pending_tasks: dict[str, tuple[int, list]] = {}

    def teardown(self) -> None:
        self.service.close()

    @staticmethod
    def _fresh_graph(name: str) -> TimeVaryingGraph:
        graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name=name)
        graph.add_nodes(NODES)
        return graph

    # -- mutations (applied to service AND shadow, independently) --------------

    @rule(endpoints=endpoints_strategy, presence=presences(), latency=st.integers(1, 3))
    def add_edge(self, endpoints, presence, latency):
        source, target = endpoints
        key = f"k{self.counter}"
        self.counter += 1
        returned = self.service.add_edge(
            source, target, presence=presence, latency=constant_latency(latency),
            key=key,
        )
        assert returned == key
        self.shadow.add_edge(
            source, target, presence=presence, latency=constant_latency(latency),
            key=key,
        )
        self.keys.append(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def remove_edge(self, data):
        key = self.keys.pop(data.draw(st.integers(0, len(self.keys) - 1), "key index"))
        self.service.remove_edge(key)
        self.shadow.remove_edge(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data(), presence=presences())
    def set_presence(self, data, presence):
        key = self.keys[data.draw(st.integers(0, len(self.keys) - 1), "key index")]
        self.service.set_presence(key, presence)
        self.shadow.set_presence(key, presence)

    # -- queries (service answer vs fresh interpretive shadow computation) -----

    @rule(
        endpoints=endpoints_strategy,
        start=st.integers(0, HORIZON - 1),
        semantics=semantics_strategy,
    )
    def query_arrival_and_reach(self, endpoints, start, semantics):
        source, target = endpoints
        expected = earliest_arrivals(
            self.shadow, source, start, semantics, horizon=HORIZON
        ).get(target)
        assert (
            self.service.arrival(source, target, start, HORIZON, semantics)
            == expected
        )
        assert self.service.reach(source, target, start, HORIZON, semantics) == (
            expected is not None
        )

    @rule(window=windows(), semantics=semantics_strategy)
    def query_growth(self, window, semantics):
        start, end = window
        assert self.service.growth(start, end, semantics) == reachability_growth(
            self.shadow, start, end, semantics
        )

    @rule(window=windows())
    def query_classify(self, window):
        start, end = window
        report = classify(self.shadow, start, end)
        assert self.service.classify(start, end) == {
            "classes": sorted(report.classes),
            "interval_connectivity": report.interval_connectivity,
        }

    @rule(window=windows(), semantics=semantics_strategy)
    def repeated_query_is_served_from_cache(self, window, semantics):
        """Two identical back-to-back queries: the second must hit the
        cache and still answer identically."""
        start, end = window
        first = self.service.growth(start, end, semantics)
        hits_before = self.service.cache.hits
        assert self.service.growth(start, end, semantics) == first
        assert self.service.cache.hits == hits_before + 1

    # -- background tasks (snapshot isolation under mutation churn) ------------

    @rule(window=windows(), semantics=semantics_strategy)
    def submit_background_growth(self, window, semantics):
        """Submit a growth query for background execution, capturing the
        shadow's answer *now* — whatever mutations interleave before the
        task is collected, the snapshot answer must equal this."""
        start, end = window
        expected = [
            [t, r] for t, r in reachability_growth(
                self.shadow, start, end, semantics
            )
        ]
        submitted = self.service.submit(
            "growth", start=start, end=end, semantics=semantics
        )
        assert submitted["version"] == self.service.graph.version
        self.pending_tasks[submitted["task"]] = (
            submitted["version"], expected,
        )

    @precondition(lambda self: self.pending_tasks)
    @rule(data=st.data())
    def collect_background_task(self, data):
        """Join one in-flight task: its result must be the submit-time
        shadow answer, and its staleness flag must reflect whether the
        graph moved on since."""
        task_ids = sorted(self.pending_tasks)
        task_id = task_ids[data.draw(st.integers(0, len(task_ids) - 1), "task")]
        version, expected = self.pending_tasks.pop(task_id)
        assert self.service.task_wait(task_id, timeout=10)
        status = self.service.task_status(task_id)
        assert status["state"] == "done", status
        assert status["version"] == version
        assert status["stale"] == (version != self.service.graph.version)
        assert self.service.task_result(task_id) == expected

    @precondition(lambda self: self.pending_tasks)
    @rule(data=st.data())
    def cancel_background_task(self, data):
        """Cancel one in-flight task: afterwards it is terminal, and its
        result is either the snapshot answer (it finished first) or a
        structured cancellation error — never anything else."""
        task_ids = sorted(self.pending_tasks)
        task_id = task_ids[data.draw(st.integers(0, len(task_ids) - 1), "task")]
        version, expected = self.pending_tasks.pop(task_id)
        status = self.service.task_cancel(task_id)
        assert status["state"] in ("cancelled", "done")
        assert self.service.task_wait(task_id, timeout=10)
        final = self.service.task_status(task_id)
        assert final["state"] == status["state"]
        if final["state"] == "done":
            assert self.service.task_result(task_id) == expected
        else:
            try:
                self.service.task_result(task_id)
            except ServiceError as exc:
                assert "cancelled" in str(exc)
            else:  # pragma: no cover — the assertion documents the bug
                raise AssertionError("cancelled task yielded a result")

    # -- structural invariants -------------------------------------------------

    @invariant()
    def graphs_mirror_each_other(self):
        assert {e.key for e in self.service.graph.edges} == {
            e.key for e in self.shadow.edges
        }
        assert set(self.keys) == {e.key for e in self.shadow.edges}

    @invariant()
    def cache_holds_only_current_or_retained_entries(self):
        """Stale entries may survive a mutation ONLY as incremental
        seed material — retained arrival matrices; every other query
        kind must still be purged to the current version exactly."""
        version = self.service.graph.version
        for cache_version, query in self.service.cache._entries:
            if cache_version != version:
                assert self.service.incremental != "off"
                assert isinstance(query, tuple) and query[0] == "arrival_matrix"


ServiceDifferentialMachine.TestCase.settings = settings(
    max_examples=12,
    stateful_step_count=30,
    deadline=None,
    derandomize=True,
    print_blob=True,
)

TestServiceDifferential = ServiceDifferentialMachine.TestCase
