"""Property suite for the distributed arrival sweep.

Two layers of proof on top of PR 4's in-process sharding equivalence:

* **wire exactness** — :func:`~repro.service.wire.plan_to_spec` /
  :func:`~repro.service.wire.plan_from_spec` round-trip arbitrary
  :class:`~repro.core.parallel.SweepPlan`s *bit-exactly* (empty edge
  sets, empty plans, ``UNREACHED``-magnitude dates, every ``max_wait``
  regime), including through an actual JSON encode/decode — and a block
  sweep over the round-tripped plan equals the sweep over the original,
  so nothing about the answer can depend on which side of the wire the
  plan sits on;

* **fault-injected equivalence** — a Hypothesis *stateful* harness
  drives a real :class:`~repro.service.cluster.ClusterExecutor` over
  real loopback workers, one of which is a
  :class:`~repro.service.cluster.FaultyWorker` whose failure mode
  (kill/hang/corrupt/misshape/stale-plan-version/plan-evicted/
  steal-crash) the schedule rotates mid-run, while mutations (edge
  add/remove, presence swaps, black-box schedules) interleave with
  all-pairs queries under NO_WAIT/WAIT/bounded-wait — some queries
  racing a fleet-membership flip (:meth:`ClusterExecutor.set_workers`
  from a timer thread) against their own sweep.  Every matrix entry
  must equal a fresh interpretive computation on a shadow copy of the
  graph, and every schedule is guaranteed at least one injected worker
  failure (teardown forces a sweep against a dead-worker-only fleet if
  the stealing healthy workers absorbed every block first).
"""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core.engine import UNREACHED, TemporalEngine
from repro.core.latency import constant_latency
from repro.core.parallel import SweepPlan, build_sweep_plan, sweep_block
from repro.core.presence import (
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.traversal import earliest_arrivals
from repro.core.tvg import TimeVaryingGraph
from repro.service.cluster import ClusterExecutor, FaultyWorker, LoopbackWorkerPool
from repro.service.wire import plan_from_spec, plan_to_spec

HORIZON = 10

DETERMINISTIC = settings(deadline=None, derandomize=True, print_blob=True)

semantics_strategy = st.one_of(
    st.just(NO_WAIT),
    st.just(WAIT),
    st.integers(1, 2).map(bounded_wait),
)


class _ResiduePredicate:
    """A deterministic black-box schedule (forces the lazy-cache path)."""

    def __init__(self, period: int, residue: int) -> None:
        self.period = period
        self.residue = residue

    def __call__(self, time: int) -> bool:
        return time % self.period == self.residue

    def __repr__(self) -> str:
        return f"_ResiduePredicate(t % {self.period} == {self.residue})"


@st.composite
def presences(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        period = draw(st.integers(2, 5))
        pattern = draw(st.sets(st.integers(0, period - 1), min_size=1, max_size=period))
        return periodic_presence(pattern, period)
    if kind == 1:
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, HORIZON - 1), st.integers(1, 4)),
                min_size=1,
                max_size=2,
            )
        )
        return interval_presence((a, a + width) for a, width in pairs)
    period = draw(st.integers(2, 4))
    residue = draw(st.integers(0, period - 1))
    return function_presence(_ResiduePredicate(period, residue), "blackbox")


# -- wire round-trip properties ------------------------------------------------


@st.composite
def sweep_plans(draw):
    """Arbitrary plans, structurally valid but otherwise unconstrained —
    including empty node sets, edges with no contacts, and plans no real
    graph lowering would produce."""
    n = draw(st.integers(0, 5))
    edge_count = draw(st.integers(0, 6)) if n else 0
    targets = tuple(draw(st.integers(0, n - 1)) for _ in range(edge_count))
    owner = [draw(st.integers(0, n - 1)) for _ in range(edge_count)]
    out_edges = tuple(
        tuple(ei for ei in range(edge_count) if owner[ei] == j) for j in range(n)
    )
    start = draw(st.integers(-4, 4))
    horizon = start + draw(st.integers(0, 10))
    contacts, arrivals = [], []
    for _ in range(edge_count):
        departures = sorted(
            set(
                draw(
                    st.lists(
                        st.integers(start, max(start, horizon - 1)), max_size=4
                    )
                )
            )
        )
        contacts.append(tuple(departures))
        arrivals.append(
            tuple(dep + draw(st.integers(1, 3)) for dep in departures)
        )
    return SweepPlan(
        n=n,
        out_edges=out_edges,
        target_idx=targets,
        contacts=tuple(contacts),
        arrivals=tuple(arrivals),
        start_time=start,
        horizon=horizon,
        max_wait=draw(st.one_of(st.none(), st.integers(0, 4))),
    )


@st.composite
def tvgs(draw):
    n = draw(st.integers(2, 6))
    graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="random")
    graph.add_nodes(range(n))
    for _ in range(draw(st.integers(1, 9))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        graph.add_edge(
            u,
            v,
            presence=draw(presences()),
            latency=constant_latency(draw(st.integers(1, 3))),
        )
    return graph


class TestPlanSpecRoundTrip:
    @given(sweep_plans())
    @settings(DETERMINISTIC, max_examples=80)
    def test_round_trip_is_bit_exact(self, plan):
        spec = plan_to_spec(plan)
        clone = plan_from_spec(json.loads(json.dumps(spec)))
        assert clone == plan
        assert type(clone.max_wait) is type(plan.max_wait)

    @given(sweep_plans(), st.integers(0, 4))
    @settings(DETERMINISTIC, max_examples=40)
    def test_sweeping_the_clone_equals_sweeping_the_original(self, plan, salt):
        if plan.n == 0:
            sources = ()
        else:
            sources = tuple(range(salt % plan.n, plan.n))
        clone = plan_from_spec(plan_to_spec(plan))
        assert np.array_equal(sweep_block(clone, sources), sweep_block(plan, sources))

    @given(tvgs(), semantics_strategy, st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=40)
    def test_lowered_graph_plans_survive_the_wire(self, graph, semantics, start):
        """Plans produced by the real lowering (black-box presences
        resolved through the LazyContactCache) round-trip and sweep
        identically — the exact payload the cluster ships."""
        engine = TemporalEngine(graph)
        _nodes, plan = build_sweep_plan(engine, start, semantics, HORIZON)
        clone = plan_from_spec(json.loads(json.dumps(plan_to_spec(plan))))
        assert clone == plan
        full = tuple(range(plan.n))
        assert np.array_equal(sweep_block(clone, full), sweep_block(plan, full))

    def test_unreached_magnitude_dates_survive(self):
        """Dates at the int64 ceiling — the UNREACHED sentinel's range —
        must pack without truncation or float drift."""
        big = int(UNREACHED) - 7
        plan = SweepPlan(
            n=2,
            out_edges=((0,), ()),
            target_idx=(1,),
            contacts=((big - 3, big),),
            arrivals=((big - 2, big + 1),),
            start_time=big - 5,
            horizon=big + 2,
            max_wait=None,
        )
        clone = plan_from_spec(json.loads(json.dumps(plan_to_spec(plan))))
        assert clone == plan
        assert clone.contacts[0][1] == big

    def test_empty_plan_round_trips(self):
        plan = SweepPlan(
            n=0, out_edges=(), target_idx=(), contacts=(), arrivals=(),
            start_time=0, horizon=0, max_wait=0,
        )
        assert plan_from_spec(plan_to_spec(plan)) == plan


# -- the fault-injecting differential harness ----------------------------------

NODES = ("a", "b", "c", "d", "e")


class ClusterDifferentialMachine(RuleBasedStateMachine):
    """Mutations, queries, worker faults, and membership churn
    interleave; every matrix entry must match the interpretive shadow
    oracle.

    The executor's fleet is two honest loopback workers around one
    :class:`FaultyWorker`.  Work stealing means the healthy workers may
    drain the shared queue before the faulty one pulls a block, so no
    *per-query* recovery is guaranteed — instead teardown forces one
    sweep against a fleet of only the faulty worker whenever a schedule
    finished without a single absorbed failure, so every schedule still
    proves at least one.  ``steal-crash`` kills the faulty worker for
    good (listener closed); a revive rule swaps in a fresh double via
    :meth:`ClusterExecutor.set_workers`, exercising elastic membership
    on the way.
    """

    def __init__(self) -> None:
        super().__init__()
        self.pool = LoopbackWorkerPool(2).__enter__()
        self.faulty = FaultyWorker("kill")
        self.cluster = ClusterExecutor(
            self._full_fleet(),
            timeout=0.25,
            min_nodes=0,
        )
        self.graph = self._fresh_graph("clustered")
        self.shadow = self._fresh_graph("shadow")
        self.engine = TemporalEngine(self.graph)
        self.keys: list[str] = []
        self.counter = 0
        self.queries_run = 0

    @staticmethod
    def _fresh_graph(name: str) -> TimeVaryingGraph:
        graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name=name)
        graph.add_nodes(NODES)
        return graph

    def _full_fleet(self) -> list[str]:
        return [self.pool.addresses[0], self.faulty.address, self.pool.addresses[1]]

    # -- worker faults (rotated mid-schedule) ----------------------------------

    @rule(
        mode=st.sampled_from(
            [
                "kill",
                "corrupt",
                "misshape",
                "hang",
                "stale-plan-version",
                "plan-evicted",
                "steal-crash",
            ]
        )
    )
    def set_fault_mode(self, mode):
        self.faulty.mode = mode

    @precondition(lambda self: self.faulty._stop.is_set())
    @rule()
    def revive_faulty(self):
        """A steal-crashed double is dead for good — replace it with a
        fresh one and re-resolve the fleet around the new address."""
        self.faulty = FaultyWorker("kill")
        self.cluster.set_workers(self._full_fleet())

    # -- mutations (applied to cluster graph AND shadow, independently) --------

    @rule(
        endpoints=st.permutations(NODES).map(lambda order: tuple(order[:2])),
        presence=presences(),
        latency=st.integers(1, 3),
    )
    def add_edge(self, endpoints, presence, latency):
        source, target = endpoints
        key = f"k{self.counter}"
        self.counter += 1
        for graph in (self.graph, self.shadow):
            graph.add_edge(
                source, target, presence=presence,
                latency=constant_latency(latency), key=key,
            )
        self.keys.append(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def remove_edge(self, data):
        key = self.keys.pop(data.draw(st.integers(0, len(self.keys) - 1), "key index"))
        self.graph.remove_edge(key)
        self.shadow.remove_edge(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data(), presence=presences())
    def set_presence(self, data, presence):
        key = self.keys[data.draw(st.integers(0, len(self.keys) - 1), "key index")]
        self.graph.set_presence(key, presence)
        self.shadow.set_presence(key, presence)

    # -- the differential query ------------------------------------------------

    def _check_matrix(self, start, semantics):
        nodes, matrix = self.engine.arrival_matrix(
            start, semantics, horizon=HORIZON, cluster=self.cluster
        )
        index = {node: i for i, node in enumerate(nodes)}
        for source in NODES:
            expected = earliest_arrivals(
                self.shadow, source, start, semantics, horizon=HORIZON
            )
            for target in NODES:
                value = int(matrix[index[source], index[target]])
                got = None if value == UNREACHED else value
                assert got == expected.get(target), (
                    f"{source}->{target} from {start} under {semantics}: "
                    f"cluster says {got}, oracle says {expected.get(target)}"
                )
        self.queries_run += 1

    @rule(start=st.integers(0, HORIZON - 1), semantics=semantics_strategy)
    def query_matrix(self, start, semantics):
        self._check_matrix(start, semantics)

    @rule(
        start=st.integers(0, HORIZON - 1),
        semantics=semantics_strategy,
        leave=st.booleans(),
    )
    def query_with_membership_churn(self, start, semantics, leave):
        """Fleet membership flips from another thread while the sweep is
        (possibly still) in flight — a shrink to one honest worker, or a
        grow from the faulty worker alone back to the full fleet.  The
        answer must be oracle-exact either way."""
        full = self._full_fleet()
        if leave:
            changed = [self.pool.addresses[0]]
        else:
            self.cluster.set_workers([self.faulty.address])
            changed = full
        timer = threading.Timer(0.02, self.cluster.set_workers, args=(changed,))
        timer.start()
        try:
            self._check_matrix(start, semantics)
        finally:
            timer.cancel()
            timer.join()
            self.cluster.set_workers(full)

    def teardown(self):
        try:
            if self.cluster.jobs_recovered == 0:
                # Stealing lets the healthy workers absorb every block,
                # so a schedule can finish fault-free; force one sweep
                # where the faulty worker owns *everything* so every
                # schedule still proves fault absorption.  (Also covers
                # schedules where Hypothesis drew no query steps.)
                if self.faulty._stop.is_set():
                    self.faulty = FaultyWorker("kill")
                self.faulty.mode = "kill"
                self.cluster.set_workers([self.faulty.address])
                self._check_matrix(0, WAIT)
                assert self.cluster.jobs_recovered > 0
        finally:
            self.faulty.close()
            self.pool.__exit__(None, None, None)


ClusterDifferentialMachine.TestCase.settings = settings(
    max_examples=5,
    stateful_step_count=10,
    deadline=None,
    derandomize=True,
    print_blob=True,
)

TestClusterDifferential = ClusterDifferentialMachine.TestCase
TestClusterDifferential.pytestmark = [pytest.mark.cluster, pytest.mark.service]
