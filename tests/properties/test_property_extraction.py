"""Property-based tests: extraction agrees with direct journey sampling.

This is the load-bearing invariant of Theorem 2.2's constructive side —
the time-expanded automaton and the configuration-set acceptor must
define the same language on every random periodic TVG, under every
waiting regime.
"""

from hypothesis import given, settings, strategies as st

from repro.automata.enumeration import language_upto
from repro.automata.language_compute import (
    bounded_wait_language_automaton,
    nowait_language_automaton,
    wait_language_automaton,
)
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.generators import random_labeled_tvg
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait

seeds = st.integers(0, 10_000)
WORD_BOUND = 3
PERIOD = 3


def automaton_from(seed: int) -> TVGAutomaton:
    g = random_labeled_tvg(
        4, edge_count=7, alphabet="ab", period=PERIOD, density=0.5, seed=seed
    )
    return TVGAutomaton(g, initial=0, accepting=[1, 2], start_time=0)


def horizon_for() -> int:
    # Words of length <= 3, unit latencies, period 3: date 24 is ample.
    return 24


class TestExtractionAgreement:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_wait_extraction(self, seed):
        auto = automaton_from(seed)
        extracted = language_upto(wait_language_automaton(auto), WORD_BOUND)
        sampled = auto.language(WORD_BOUND, WAIT, horizon=horizon_for())
        assert extracted == sampled

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_nowait_extraction(self, seed):
        auto = automaton_from(seed)
        extracted = language_upto(nowait_language_automaton(auto), WORD_BOUND)
        sampled = auto.language(WORD_BOUND, NO_WAIT, horizon=horizon_for())
        assert extracted == sampled

    @given(seeds, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_bounded_extraction(self, seed, budget):
        auto = automaton_from(seed)
        extracted = language_upto(
            bounded_wait_language_automaton(auto, budget), WORD_BOUND
        )
        sampled = auto.language(
            WORD_BOUND, bounded_wait(budget), horizon=horizon_for()
        )
        assert extracted == sampled

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_language_chain_monotone(self, seed):
        """L_nowait ⊆ L_wait[1] ⊆ L_wait[2] ⊆ L_wait — as automata."""
        auto = automaton_from(seed)
        chain = [
            language_upto(nowait_language_automaton(auto), WORD_BOUND),
            language_upto(bounded_wait_language_automaton(auto, 1), WORD_BOUND),
            language_upto(bounded_wait_language_automaton(auto, 2), WORD_BOUND),
            language_upto(wait_language_automaton(auto), WORD_BOUND),
        ]
        for smaller, larger in zip(chain, chain[1:]):
            assert smaller <= larger
