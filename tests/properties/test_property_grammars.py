"""Property-based tests for the CFG substrate.

Regular languages are context-free: for random regexes, the CYK answer
through a grammar generated from the regex AST must match the NFA.
"""

from hypothesis import given, settings, strategies as st

from repro.automata.grammars import ContextFreeGrammar
from repro.automata.regex import (
    Concat,
    Epsilon,
    Literal,
    Star,
    Union,
    random_regex,
    regex_to_nfa,
)

seeds = st.integers(0, 10_000)


def regex_to_cfg(node, counter=None) -> ContextFreeGrammar:
    """Compile a regex AST to an equivalent CFG (standard construction)."""
    productions: list[tuple[str, list[str]]] = []
    fresh = iter(range(10_000))

    def build(n) -> str:
        head = f"N{next(fresh)}"
        if isinstance(n, Epsilon):
            productions.append((head, []))
        elif isinstance(n, Literal):
            productions.append((head, [n.symbol]))
        elif isinstance(n, Concat):
            productions.append((head, [build(n.left), build(n.right)]))
        elif isinstance(n, Union):
            left, right = build(n.left), build(n.right)
            productions.append((head, [left]))
            productions.append((head, [right]))
        elif isinstance(n, Star):
            inner = build(n.inner)
            productions.append((head, []))
            productions.append((head, [inner, head]))
        else:
            raise TypeError(n)
        return head

    start = build(node)
    return ContextFreeGrammar(start, productions)


class TestRegularSubsetOfContextFree:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_cyk_matches_nfa(self, seed):
        node = random_regex("ab", depth=3, seed=seed)
        if not node.symbols():
            return  # grammar needs at least one terminal
        nfa = regex_to_nfa(node, alphabet="ab")
        grammar = regex_to_cfg(node)
        from repro.automata.alphabet import Alphabet

        for word in Alphabet("ab").words_upto(4):
            try:
                cyk = grammar.accepts(word)
            except Exception:  # symbols outside the grammar's terminals
                cyk = False
            assert cyk == nfa.accepts(word), (str(node), word)


class TestCnfInvariants:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_cnf_preserves_language(self, seed):
        node = random_regex("ab", depth=3, seed=seed)
        if not node.symbols():
            return
        grammar = regex_to_cfg(node)
        cnf = grammar.to_cnf()
        from repro.automata.alphabet import Alphabet

        for word in Alphabet("ab").words_upto(4):
            lhs = cnf.accepts(word) if (set(word) <= set(grammar.alphabet) or not word) else False
            rhs = grammar.accepts(word) if (set(word) <= set(grammar.alphabet) or not word) else False
            assert lhs == rhs, (str(node), word)
