"""Differential oracle suite for the engine-backed analysis layer.

PR 1's property suite proved the compiled *kernel* equivalent to the
interpretive one; this suite proves the *analysis layer* built on top of
the batched arrival sweep equivalent to the interpretive path it
replaced: growth curves, connectivity classification, and foremost
broadcast trees must be identical on random TVGs under NO_WAIT, WAIT,
and bounded-wait semantics.  The random graphs mix every structured
presence form plus black-box predicates, so the engine paths here also
exercise :class:`~repro.core.index.LazyContactCache` (black-box contacts
memoized lazily) against the predicate-calling oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.classes import (
    classify,
    is_recurrently_connected,
    is_round_connected,
    is_temporally_connected_from,
)
from repro.analysis.evolution import reachability_growth, value_of_waiting
from repro.analysis.spanners import foremost_broadcast_tree
from repro.core.engine import UNREACHED, TemporalEngine
from repro.core.latency import constant_latency
from repro.core.presence import (
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.traversal import earliest_arrivals
from repro.core.tvg import TimeVaryingGraph

HORIZON = 12

DETERMINISTIC = settings(deadline=None, derandomize=True, print_blob=True)

semantics_strategy = st.one_of(
    st.just(NO_WAIT),
    st.just(WAIT),
    st.integers(0, 3).map(bounded_wait),
)


@st.composite
def presences(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        period = draw(st.integers(2, 5))
        pattern = draw(
            st.sets(st.integers(0, period - 1), min_size=1, max_size=period)
        )
        return periodic_presence(pattern, period)
    if kind == 1:
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, HORIZON - 1), st.integers(1, 4)),
                min_size=1,
                max_size=3,
            )
        )
        return interval_presence([(a, a + w) for a, w in pairs])
    if kind == 2:
        period = draw(st.integers(2, 4))
        shift = draw(st.integers(-2, 3))
        return periodic_presence([0], period).shifted(shift)
    if kind == 3:
        left = periodic_presence([draw(st.integers(0, 2))], 3)
        right = interval_presence([(draw(st.integers(0, 6)), draw(st.integers(7, 11)))])
        return left | right if draw(st.booleans()) else left & right
    # Black-box: an opaque callable routed through the LazyContactCache.
    period = draw(st.integers(2, 5))
    residue = draw(st.integers(0, period - 1))
    return function_presence(lambda t, p=period, r=residue: t % p == r, "blackbox")


@st.composite
def tvgs(draw):
    n = draw(st.integers(2, 5))
    graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="random")
    graph.add_nodes(range(n))
    edge_count = draw(st.integers(1, 8))
    for _ in range(edge_count):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        graph.add_edge(
            u,
            v,
            presence=draw(presences()),
            latency=constant_latency(draw(st.integers(1, 3))),
        )
    return graph


class TestArrivalMatrixAgainstOracle:
    @given(tvgs(), semantics_strategy, st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=40)
    def test_rows_are_earliest_arrivals(self, graph, semantics, start):
        """Each sweep row equals one interpretive earliest-arrival search."""
        engine = TemporalEngine(graph)
        nodes, matrix = engine.arrival_matrix(start, semantics, horizon=HORIZON)
        for i, source in enumerate(nodes):
            oracle = earliest_arrivals(graph, source, start, semantics)
            row = {
                nodes[j]: int(matrix[i, j])
                for j in range(len(nodes))
                if matrix[i, j] != UNREACHED
            }
            assert row == oracle


class TestGrowthAgainstOracle:
    @given(tvgs(), semantics_strategy)
    @settings(DETERMINISTIC, max_examples=40)
    def test_growth_curves_agree(self, graph, semantics):
        engine = TemporalEngine(graph)
        oracle = reachability_growth(graph, 0, HORIZON, semantics)
        compiled = reachability_growth(graph, 0, HORIZON, semantics, engine=engine)
        assert compiled == oracle

    @given(tvgs(), st.integers(1, 5))
    @settings(DETERMINISTIC, max_examples=20)
    def test_value_of_waiting_agrees(self, graph, start):
        engine = TemporalEngine(graph)
        oracle = value_of_waiting(graph, start, HORIZON)
        compiled = value_of_waiting(graph, start, HORIZON, engine=engine)
        assert compiled == oracle


class TestClassificationAgainstOracle:
    @given(tvgs())
    @settings(DETERMINISTIC, max_examples=25)
    def test_classify_agrees(self, graph):
        engine = TemporalEngine(graph)
        oracle = classify(graph, 0, HORIZON)
        compiled = classify(graph, 0, HORIZON, engine=engine)
        assert compiled == oracle

    @given(tvgs(), st.integers(0, 4))
    @settings(DETERMINISTIC, max_examples=25)
    def test_connectivity_predicates_agree(self, graph, start):
        engine = TemporalEngine(graph)
        assert is_temporally_connected_from(
            graph, start, HORIZON, engine=engine
        ) == is_temporally_connected_from(graph, start, HORIZON)
        assert is_round_connected(
            graph, start, HORIZON, engine=engine
        ) == is_round_connected(graph, start, HORIZON)
        assert is_recurrently_connected(
            graph, start, HORIZON, stride=2, engine=engine
        ) == is_recurrently_connected(graph, start, HORIZON, stride=2)


class TestBroadcastTreeAgainstOracle:
    @given(tvgs(), semantics_strategy, st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=40)
    def test_trees_identical(self, graph, semantics, start):
        """Same informed times AND the same entry hops, node for node."""
        engine = TemporalEngine(graph)
        for source in graph.nodes:
            oracle = foremost_broadcast_tree(graph, source, start, semantics)
            compiled = foremost_broadcast_tree(
                graph, source, start, semantics, engine=engine
            )
            assert compiled.informed_at == oracle.informed_at
            assert compiled.entry_hop == oracle.entry_hop


class TestRepeatedQueriesThroughOneEngine:
    @given(tvgs())
    @settings(DETERMINISTIC, max_examples=15)
    def test_growth_then_classify_then_tree_stay_exact(self, graph):
        """One engine serving the whole analysis layer back-to-back (the
        LazyContactCache is shared across all of it) never drifts from
        the oracle."""
        engine = TemporalEngine(graph)
        for _ in range(2):  # second round hits fully-warmed caches
            assert reachability_growth(
                graph, 0, HORIZON, WAIT, engine=engine
            ) == reachability_growth(graph, 0, HORIZON, WAIT)
            assert classify(graph, 0, HORIZON, engine=engine) == classify(
                graph, 0, HORIZON
            )
            tree = foremost_broadcast_tree(graph, graph.nodes[0], 0, WAIT,
                                           engine=engine)
            oracle = foremost_broadcast_tree(graph, graph.nodes[0], 0, WAIT)
            assert tree.informed_at == oracle.informed_at
