"""Compiled-vs-interpretive equivalence (N-version checking).

The interpretive journey search in :mod:`repro.core.traversal` is the
ground-truth oracle; the compiled contact-sequence engine must agree
with it *exactly* — same reachable temporal states, same earliest
arrivals, same reachability matrices — on arbitrary graphs under all
three waiting semantics.  Hypothesis drives random TVGs mixing every
structured presence form (periodic, interval, shifted, dilated, unions)
plus black-box predicates that force the engine's fallback path.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.reachability import (
    reachability_matrix,
    reachability_ratio,
    semantics_gap_matrix,
)
from repro.core.engine import TemporalEngine
from repro.core.presence import (
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.traversal import earliest_arrivals, reachable_states
from repro.core.tvg import TimeVaryingGraph

HORIZON = 12

DETERMINISTIC = settings(deadline=None, derandomize=True, print_blob=True)

semantics_strategy = st.one_of(
    st.just(NO_WAIT),
    st.just(WAIT),
    st.integers(0, 3).map(bounded_wait),
)


@st.composite
def presences(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        period = draw(st.integers(2, 5))
        pattern = draw(
            st.sets(st.integers(0, period - 1), min_size=1, max_size=period)
        )
        return periodic_presence(pattern, period)
    if kind == 1:
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, HORIZON - 1), st.integers(1, 4)),
                min_size=1,
                max_size=3,
            )
        )
        return interval_presence([(a, a + w) for a, w in pairs])
    if kind == 2:
        period = draw(st.integers(2, 4))
        shift = draw(st.integers(-2, 3))
        return periodic_presence([0], period).shifted(shift)
    if kind == 3:
        left = periodic_presence([draw(st.integers(0, 2))], 3)
        right = interval_presence([(draw(st.integers(0, 6)), draw(st.integers(7, 11)))])
        return left | right if draw(st.booleans()) else left & right
    # Black-box: an opaque callable the index cannot lower (fallback path).
    period = draw(st.integers(2, 5))
    residue = draw(st.integers(0, period - 1))
    return function_presence(lambda t, p=period, r=residue: t % p == r, "blackbox")


@st.composite
def tvgs(draw):
    n = draw(st.integers(2, 5))
    graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="random")
    graph.add_nodes(range(n))
    edge_count = draw(st.integers(1, 8))
    for _ in range(edge_count):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        graph.add_edge(u, v, presence=draw(presences()))
    return graph


@st.composite
def tvgs_with_latencies(draw):
    from repro.core.latency import constant_latency

    graph = draw(tvgs())
    rebuilt = TimeVaryingGraph(lifetime=graph.lifetime, name=graph.name)
    rebuilt.add_nodes(graph.nodes)
    for edge in graph.edges:
        rebuilt.add_edge(
            edge.source,
            edge.target,
            presence=edge.presence,
            latency=constant_latency(draw(st.integers(1, 3))),
            key=edge.key,
        )
    return rebuilt


class TestCompiledEquivalence:
    @given(tvgs_with_latencies(), semantics_strategy, st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=40)
    def test_reachable_states_agree(self, graph, semantics, start):
        engine = TemporalEngine(graph)
        for source in graph.nodes:
            oracle = reachable_states(graph, [(source, start)], semantics)
            compiled = reachable_states(
                graph, [(source, start)], semantics, engine=engine
            )
            assert compiled == oracle

    @given(tvgs_with_latencies(), semantics_strategy, st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=40)
    def test_earliest_arrivals_agree(self, graph, semantics, start):
        engine = TemporalEngine(graph)
        for source in graph.nodes:
            oracle = earliest_arrivals(graph, source, start, semantics)
            compiled = earliest_arrivals(
                graph, source, start, semantics, engine=engine
            )
            assert compiled == oracle

    @given(tvgs_with_latencies(), semantics_strategy)
    @settings(DETERMINISTIC, max_examples=40)
    def test_reachability_matrix_agrees(self, graph, semantics):
        engine = TemporalEngine(graph)
        oracle_nodes, oracle = reachability_matrix(graph, 0, semantics)
        nodes, compiled = reachability_matrix(graph, 0, semantics, engine=engine)
        assert nodes == oracle_nodes
        assert np.array_equal(compiled, oracle)
        assert reachability_ratio(
            graph, 0, semantics, engine=engine
        ) == reachability_ratio(graph, 0, semantics)

    @given(tvgs_with_latencies())
    @settings(DETERMINISTIC, max_examples=20)
    def test_gap_matrix_agrees(self, graph):
        engine = TemporalEngine(graph)
        _nodes, oracle = semantics_gap_matrix(graph, 0)
        _same, compiled = semantics_gap_matrix(graph, 0, engine=engine)
        assert np.array_equal(compiled, oracle)

    @given(tvgs_with_latencies(), semantics_strategy)
    @settings(DETERMINISTIC, max_examples=20)
    def test_agreement_survives_mutation(self, graph, semantics):
        engine = TemporalEngine(graph)
        reachable_states(graph, [(graph.nodes[0], 0)], semantics, engine=engine)
        graph.add_edge(
            graph.nodes[-1],
            graph.nodes[0],
            presence=periodic_presence([1], 3),
            key="mutation",
        )
        for source in graph.nodes:
            assert reachable_states(
                graph, [(source, 0)], semantics, engine=engine
            ) == reachable_states(graph, [(source, 0)], semantics)
