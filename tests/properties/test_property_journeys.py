"""Property-based tests for journeys and traversal invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.generators import periodic_random_tvg
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.traversal import (
    earliest_arrivals,
    enumerate_journeys,
    foremost_journey,
    reachable_nodes,
)

seeds = st.integers(0, 10_000)
HORIZON = 12


def graph_from(seed: int):
    return periodic_random_tvg(4, period=3, density=0.45, seed=seed, latency=1)


class TestSemanticsMonotonicity:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_reachability_monotone_in_waiting(self, seed):
        g = graph_from(seed)
        source = 0
        nowait = reachable_nodes(g, source, 0, NO_WAIT, horizon=HORIZON)
        d1 = reachable_nodes(g, source, 0, bounded_wait(1), horizon=HORIZON)
        d3 = reachable_nodes(g, source, 0, bounded_wait(3), horizon=HORIZON)
        wait = reachable_nodes(g, source, 0, WAIT, horizon=HORIZON)
        assert nowait <= d1 <= d3 <= wait

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_horizon_monotone(self, seed):
        g = graph_from(seed)
        small = reachable_nodes(g, 0, 0, WAIT, horizon=6)
        large = reachable_nodes(g, 0, 0, WAIT, horizon=HORIZON)
        assert small <= large


class TestJourneyValidity:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_enumerated_journeys_feasible(self, seed):
        g = graph_from(seed)
        for journey in enumerate_journeys(g, 0, 0, WAIT, horizon=8, max_hops=3):
            assert journey.feasible_under(WAIT)
            assert journey.source == 0
            for hop in journey:
                assert hop.edge.present_at(hop.start)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_nowait_journeys_direct(self, seed):
        g = graph_from(seed)
        for journey in enumerate_journeys(g, 0, 0, NO_WAIT, horizon=8, max_hops=3):
            assert journey.is_direct

    @given(seeds, st.integers(0, 4))
    @settings(max_examples=20, deadline=None)
    def test_bounded_pauses_bounded(self, seed, budget):
        g = graph_from(seed)
        for journey in enumerate_journeys(
            g, 0, 0, bounded_wait(budget), horizon=8, max_hops=3
        ):
            assert journey.max_pause <= budget


class TestForemostOptimality:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_foremost_journey_matches_earliest_arrival(self, seed):
        g = graph_from(seed)
        arrivals = earliest_arrivals(g, 0, 0, WAIT, horizon=HORIZON)
        for node in g.nodes:
            if node == 0 or node not in arrivals:
                continue
            journey = foremost_journey(g, 0, node, 0, WAIT, horizon=HORIZON)
            assert journey is not None
            assert journey.arrival == arrivals[node]

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_foremost_beats_every_enumerated_journey(self, seed):
        g = graph_from(seed)
        best: dict = {}
        for journey in enumerate_journeys(g, 0, 0, WAIT, horizon=8, max_hops=3):
            node = journey.destination
            best[node] = min(best.get(node, journey.arrival), journey.arrival)
        arrivals = earliest_arrivals(g, 0, 0, WAIT, horizon=8)
        for node, arrival in best.items():
            assert arrivals[node] <= arrival
