"""Property-based tests for the automata toolkit.

Random regexes are the generator; every operation is checked against
brute-force word enumeration up to a depth bound.
"""

from hypothesis import given, settings, strategies as st

from repro.automata.alphabet import Alphabet
from repro.automata.enumeration import count_words_by_length, language_upto
from repro.automata.equivalence import equivalent, find_distinguishing_word
from repro.automata.operations import complement, intersect, minimize, union
from repro.automata.regex import random_regex, regex_to_nfa

SIGMA = Alphabet("ab")
DEPTH = 4

seeds = st.integers(0, 10_000)


def dfa_from_seed(seed: int):
    return regex_to_nfa(random_regex("ab", depth=3, seed=seed), alphabet=SIGMA).to_dfa()


def words():
    return list(SIGMA.words_upto(DEPTH))


class TestOperationsAgainstBruteForce:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_minimize_preserves_language(self, seed):
        dfa = dfa_from_seed(seed)
        minimal = minimize(dfa)
        for word in words():
            assert minimal.accepts(word) == dfa.accepts(word)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_minimize_not_larger(self, seed):
        dfa = dfa_from_seed(seed)
        assert len(minimize(dfa).states) <= max(len(dfa.trim().states) + 1, 1)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_complement_flips(self, seed):
        dfa = dfa_from_seed(seed)
        comp = complement(dfa)
        for word in words():
            assert comp.accepts(word) != dfa.accepts(word)

    @given(seeds, seeds)
    @settings(max_examples=30, deadline=None)
    def test_product_constructions(self, seed_a, seed_b):
        a, b = dfa_from_seed(seed_a), dfa_from_seed(seed_b)
        meet, join = intersect(a, b), union(a, b)
        for word in words():
            assert meet.accepts(word) == (a.accepts(word) and b.accepts(word))
            assert join.accepts(word) == (a.accepts(word) or b.accepts(word))

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_subset_construction_equivalent(self, seed):
        nfa = regex_to_nfa(random_regex("ab", depth=3, seed=seed), alphabet=SIGMA)
        dfa = nfa.to_dfa()
        for word in words():
            assert dfa.accepts(word) == nfa.accepts(word)

    @given(seeds, seeds)
    @settings(max_examples=30, deadline=None)
    def test_equivalence_decision_matches_sampling(self, seed_a, seed_b):
        a, b = dfa_from_seed(seed_a), dfa_from_seed(seed_b)
        same_on_sample = language_upto(a, DEPTH) == language_upto(b, DEPTH)
        if equivalent(a, b):
            assert same_on_sample
        else:
            word = find_distinguishing_word(a, b)
            assert word is not None
            assert a.accepts(word) != b.accepts(word)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_counting_matches_enumeration(self, seed):
        dfa = dfa_from_seed(seed)
        counts = count_words_by_length(dfa, DEPTH)
        sample = language_upto(dfa, DEPTH)
        for length in range(DEPTH + 1):
            assert counts[length] == sum(1 for w in sample if len(w) == length)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_minimization_canonical(self, seed):
        dfa = dfa_from_seed(seed)
        minimal = minimize(dfa)
        again = minimize(minimal)
        assert minimal.transitions == again.transitions
        assert minimal.accepting == again.accepting
