"""Differential property suite for incremental arrival-sweep maintenance.

The incremental path — dirty-edge deltas out of the graph, cone of
affected source rows out of the old matrix, re-sweep of just that cone
merged over the cached result — must be *entry-for-entry equal* to a
from-scratch sweep on every schedule, under all three waiting semantics
and on both sweep kernels.  Two layers attack it:

* a **stateful machine** drives a :class:`TVGService` pinned to
  ``incremental="force"`` (every applicable cache miss takes the patch
  path) through interleaved mutations — edge add/remove, presence swaps
  over structured *and* black-box schedules, and the nasty
  remove-then-re-add of the same key — and checks every matrix entry
  against a from-scratch sweep on an independently-mirrored shadow
  graph; one machine per kernel;

* a **direct engine-level property** applies an arbitrary mutation
  batch to a random graph and checks
  :meth:`TemporalEngine.arrival_matrix_incremental` against the
  from-scratch matrix, plus that its cone bound really is conservative
  (rows it skips are bit-identical in the fresh matrix).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    precondition,
    rule,
)

from repro.core.engine import TemporalEngine
from repro.core.latency import constant_latency
from repro.core.presence import (
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.service.service import TVGService

NODES = ("a", "b", "c", "d", "e")
HORIZON = 10

DETERMINISTIC = settings(deadline=None, derandomize=True, print_blob=True)

semantics_strategy = st.one_of(
    st.just(NO_WAIT),
    st.just(WAIT),
    st.integers(1, 2).map(bounded_wait),
)

endpoints_strategy = st.permutations(NODES).map(lambda order: tuple(order[:2]))


class _ResiduePredicate:
    """A deterministic black-box schedule (forces the lazy-cache path)."""

    def __init__(self, period: int, residue: int) -> None:
        self.period = period
        self.residue = residue

    def __call__(self, time: int) -> bool:
        return time % self.period == self.residue

    def __repr__(self) -> str:
        return f"_ResiduePredicate(t % {self.period} == {self.residue})"


@st.composite
def presences(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        period = draw(st.integers(2, 5))
        pattern = draw(st.sets(st.integers(0, period - 1), min_size=1, max_size=period))
        return periodic_presence(pattern, period)
    if kind == 1:
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, HORIZON - 1), st.integers(1, 4)),
                min_size=1,
                max_size=2,
            )
        )
        return interval_presence((a, a + width) for a, width in pairs)
    period = draw(st.integers(2, 4))
    residue = draw(st.integers(0, period - 1))
    return function_presence(_ResiduePredicate(period, residue), "blackbox")


class IncrementalDifferentialMachine(RuleBasedStateMachine):
    """Mutate/query schedules against a force-incremental service.

    Every query's full matrix must equal a from-scratch sweep on the
    shadow graph — through a *fresh* engine each time, so nothing of
    the service's caches can leak into the oracle.
    """

    kernel = "bitset"

    def __init__(self) -> None:
        super().__init__()
        self.service = TVGService(
            self._fresh_graph("served"),
            cache_size=64,
            kernel=self.kernel,
            incremental="force",
        )
        self.shadow = self._fresh_graph("shadow")
        self.keys: list[str] = []
        self.counter = 0

    @staticmethod
    def _fresh_graph(name: str) -> TimeVaryingGraph:
        graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name=name)
        graph.add_nodes(NODES)
        return graph

    # -- mutations (mirrored independently onto the shadow) --------------------

    @rule(endpoints=endpoints_strategy, presence=presences(), latency=st.integers(1, 3))
    def add_edge(self, endpoints, presence, latency):
        source, target = endpoints
        key = f"k{self.counter}"
        self.counter += 1
        self.service.add_edge(
            source, target, presence=presence, latency=constant_latency(latency),
            key=key,
        )
        self.shadow.add_edge(
            source, target, presence=presence, latency=constant_latency(latency),
            key=key,
        )
        self.keys.append(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data())
    def remove_edge(self, data):
        key = self.keys.pop(data.draw(st.integers(0, len(self.keys) - 1), "key index"))
        self.service.remove_edge(key)
        self.shadow.remove_edge(key)

    @precondition(lambda self: self.keys)
    @rule(data=st.data(), presence=presences())
    def set_presence(self, data, presence):
        key = self.keys[data.draw(st.integers(0, len(self.keys) - 1), "key index")]
        self.service.set_presence(key, presence)
        self.shadow.set_presence(key, presence)

    @precondition(lambda self: self.keys)
    @rule(data=st.data(), presence=presences(), latency=st.integers(1, 3))
    def remove_then_readd_same_key(self, data, presence, latency):
        """The delta chain a naive key-based cache trips over: the same
        key comes back with a different schedule (and endpoints)."""
        key = self.keys[data.draw(st.integers(0, len(self.keys) - 1), "key index")]
        endpoints = data.draw(endpoints_strategy, "endpoints")
        source, target = endpoints
        self.service.remove_edge(key)
        self.shadow.remove_edge(key)
        self.service.add_edge(
            source, target, presence=presence, latency=constant_latency(latency),
            key=key,
        )
        self.shadow.add_edge(
            source, target, presence=presence, latency=constant_latency(latency),
            key=key,
        )

    # -- the differential query ------------------------------------------------

    @rule(start=st.integers(0, HORIZON - 1), semantics=semantics_strategy)
    def query_matrix(self, start, semantics):
        index, matrix = self.service._arrival_matrix(start, HORIZON, semantics)
        nodes, scratch = TemporalEngine(self.shadow).arrival_matrix(
            start, semantics, horizon=HORIZON, kernel=self.kernel
        )
        assert list(index) == nodes
        assert np.array_equal(matrix, scratch), (
            f"incremental matrix diverged from scratch at start={start} "
            f"under {semantics} on {self.kernel}"
        )

    def teardown(self):
        # The machine only proves something if the patch path actually
        # ran; with "force", any query after a presence-only mutation
        # must have taken it.  (Schedules with no such pair prove the
        # fallback instead — both outcomes are valid, so no assert on
        # the counter here; test_incremental_path_is_exercised pins it.)
        stats = self.service.stats()
        assert stats["sweeps"]["full"] + stats["sweeps"]["incremental"] >= 0


class IncrementalDifferentialBitset(IncrementalDifferentialMachine):
    kernel = "bitset"


class IncrementalDifferentialBignum(IncrementalDifferentialMachine):
    kernel = "bignum"


for machine in (IncrementalDifferentialBitset, IncrementalDifferentialBignum):
    machine.TestCase.settings = settings(
        max_examples=10,
        stateful_step_count=25,
        deadline=None,
        derandomize=True,
        print_blob=True,
    )

TestIncrementalDifferentialBitset = IncrementalDifferentialBitset.TestCase
TestIncrementalDifferentialBignum = IncrementalDifferentialBignum.TestCase


# -- direct engine-level properties --------------------------------------------


@st.composite
def graphs(draw):
    n = draw(st.integers(2, 6))
    graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="random")
    graph.add_nodes(range(n))
    for i in range(draw(st.integers(1, 8))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        graph.add_edge(
            u, v,
            presence=draw(presences()),
            latency=constant_latency(draw(st.integers(1, 3))),
            key=f"e{i}",
        )
    return graph


@st.composite
def mutation_batches(draw):
    """(kind, presence) steps applied to random existing edges."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["set_presence", "remove", "readd"]),
                presences(),
                st.integers(0, 99),
            ),
            min_size=1,
            max_size=4,
        )
    )


def _apply(graph, batch):
    for kind, presence, pick in batch:
        keys = [e.key for e in graph.edges]
        if not keys:
            return
        key = keys[pick % len(keys)]
        if kind == "set_presence":
            graph.set_presence(key, presence)
        elif kind == "remove":
            graph.remove_edge(key)
        else:
            edge = graph.remove_edge(key)
            graph.add_edge(edge.source, edge.target, presence=presence, key=key)


class TestEngineIncrementalEqualsScratch:
    @pytest.mark.parametrize("kernel", ["bitset", "bignum"])
    @given(graph=graphs(), batch=mutation_batches(), semantics=semantics_strategy,
           start=st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=30)
    def test_patched_equals_scratch(self, graph, batch, semantics, start, kernel):
        graph = graph.copy()  # hypothesis reuses drawn graphs across examples
        engine = TemporalEngine(graph)
        v0 = graph.version
        nodes0, m0 = engine.arrival_matrix(
            start, semantics, horizon=HORIZON, kernel=kernel
        )
        _apply(graph, batch)
        deltas = graph.deltas_since(v0)
        result = engine.arrival_matrix_incremental(
            start, (nodes0, m0), deltas, semantics, HORIZON, kernel=kernel
        )
        nodes_f, scratch = TemporalEngine(graph).arrival_matrix(
            start, semantics, horizon=HORIZON, kernel=kernel
        )
        assert result is not None  # no node was added, chain is complete
        nodes_i, merged, reswept = result
        assert nodes_i == nodes_f
        assert np.array_equal(merged, scratch)
        assert 0 <= reswept <= len(nodes_i)

    @given(graph=graphs(), batch=mutation_batches(), semantics=semantics_strategy)
    @settings(DETERMINISTIC, max_examples=20)
    def test_skipped_rows_were_truly_unchanged(self, graph, batch, semantics):
        """The cone bound's soundness, separately: every row the
        incremental path did NOT re-sweep is bit-identical in the
        from-scratch matrix — i.e. conservative really means safe."""
        graph = graph.copy()
        engine = TemporalEngine(graph)
        v0 = graph.version
        nodes0, m0 = engine.arrival_matrix(0, semantics, horizon=HORIZON)
        _apply(graph, batch)
        result = engine.arrival_matrix_incremental(
            0, (nodes0, m0), graph.deltas_since(v0), semantics, HORIZON
        )
        assert result is not None
        _nodes, merged, _reswept = result
        _same, scratch = TemporalEngine(graph).arrival_matrix(
            0, semantics, horizon=HORIZON
        )
        unchanged = np.all(merged == m0, axis=1)
        assert np.array_equal(merged[unchanged], scratch[unchanged])

    def test_node_addition_defeats_the_incremental_path(self):
        g = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON))
        g.add_nodes("ab")
        g.add_edge("a", "b", key="ab")
        engine = TemporalEngine(g)
        v0 = g.version
        nodes0, m0 = engine.arrival_matrix(0, WAIT, horizon=HORIZON)
        g.add_edge("b", "z", key="bz")  # z is a NEW node
        assert engine.arrival_matrix_incremental(
            0, (nodes0, m0), g.deltas_since(v0), WAIT, HORIZON
        ) is None


class TestServiceIncrementalPlumbing:
    def test_incremental_path_is_exercised(self):
        """A presence swap between two identical queries MUST take the
        patch path under "force" — pins that the machine above is not
        vacuously passing through full sweeps."""
        service = TVGService(
            IncrementalDifferentialMachine._fresh_graph("pinned"),
            incremental="force",
        )
        service.add_edge("a", "b", presence=interval_presence([(0, 4)]), key="ab")
        service.arrival("a", "b", 0, HORIZON, WAIT)
        service.set_presence("ab", interval_presence([(2, 6)]))
        service.arrival("a", "b", 0, HORIZON, WAIT)
        stats = service.stats()["sweeps"]
        assert stats["incremental"] == 1, stats
        assert service.stats()["cache"]["retained"] >= 1

    def test_off_mode_never_patches_or_retains(self):
        service = TVGService(
            IncrementalDifferentialMachine._fresh_graph("off"),
            incremental="off",
        )
        service.add_edge("a", "b", presence=interval_presence([(0, 4)]), key="ab")
        service.arrival("a", "b", 0, HORIZON, WAIT)
        service.set_presence("ab", interval_presence([(2, 6)]))
        service.arrival("a", "b", 0, HORIZON, WAIT)
        stats = service.stats()
        assert stats["sweeps"]["incremental"] == 0
        assert stats["cache"]["retained"] == 0

    def test_mode_resolution_env_and_validation(self, monkeypatch):
        from repro.service.service import resolve_incremental

        monkeypatch.delenv("REPRO_INCREMENTAL", raising=False)
        assert resolve_incremental() == "on"
        monkeypatch.setenv("REPRO_INCREMENTAL", "force")
        assert resolve_incremental() == "force"
        assert resolve_incremental("off") == "off"  # argument wins
        with pytest.raises(ValueError):
            resolve_incremental("sometimes")
