"""Property-based tests: serialization round trips."""

from hypothesis import given, settings, strategies as st

from repro.core.generators import bernoulli_tvg, periodic_random_tvg
from repro.core.intervals import Interval
from repro.core.serialize import dumps, loads, sampled

seeds = st.integers(0, 10_000)


def schedules_equal(first, second, start, end) -> bool:
    if {e.key for e in first.edges} != {e.key for e in second.edges}:
        return False
    window = Interval(start, end)
    for edge in first.edges:
        twin = second.edge(edge.key)
        if edge.label != twin.label:
            return False
        mine = list(edge.presence.support(window).times())
        theirs = list(twin.presence.support(window).times())
        if mine != theirs:
            return False
        for t in mine:
            if edge.latency(t) != twin.latency(t):
                return False
    return True


class TestRoundTripProperties:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_bernoulli_round_trip(self, seed):
        graph = bernoulli_tvg(5, horizon=15, density=0.3, seed=seed)
        again = loads(dumps(graph))
        assert again.lifetime == graph.lifetime
        assert schedules_equal(graph, again, 0, 15)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_periodic_round_trip(self, seed):
        graph = periodic_random_tvg(4, period=5, density=0.4, labels="ab", seed=seed)
        again = loads(dumps(graph))
        assert again.period == 5
        assert schedules_equal(graph, again, 0, 10)

    @given(seeds, st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_sampled_window_faithful(self, seed, width):
        graph = bernoulli_tvg(4, horizon=20, density=0.4, seed=seed)
        start, end = 3, 3 + width
        finite = sampled(graph, start, end)
        window = Interval(start, end)
        for edge in graph.edges:
            twin = finite.edge(edge.key)
            original = list(edge.presence.support(window).times())
            copied = list(twin.presence.support(window).times())
            assert original == copied

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_double_round_trip_stable(self, seed):
        graph = periodic_random_tvg(3, period=4, density=0.5, labels="a", seed=seed)
        once = dumps(loads(dumps(graph)))
        twice = dumps(loads(once))
        assert once == twice
