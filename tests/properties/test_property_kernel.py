"""Property suite for the sweep kernels (N-version checking).

The bignum kernel is the ground-truth oracle: the per-state heap sweep
is a direct transcription of the semantics.  The bitset kernel is the
fast path: one contact scan over packed uint64 frontiers.  They must
agree *bit for bit* — on arbitrary graphs (every structured presence
form plus black-box predicates), all three waiting semantics, any start
date, any source block (including duplicated and out-of-order sources)
— and both must agree with the interpretive journey search in
:mod:`repro.core.traversal`, which shares no code with either kernel.

The handcrafted cases pin the regimes Hypothesis rarely reaches:
UNREACHED-magnitude dates (the kernels must not overflow int64 when
sorting or bucketing near ``2**63``), empty and single-node graphs, and
the bounded-wait collapse (a bound no departure can exhaust must equal
unbounded waiting exactly).

Run any suite under the other kernel with ``--sweep-kernel`` (see
``tests/conftest.py``) — it pins ``REPRO_SWEEP_KERNEL`` for every sweep
that doesn't pass ``kernel=`` explicitly.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.engine import TemporalEngine
from repro.core.latency import constant_latency
from repro.core.parallel import SweepPlan, build_sweep_plan, partition_sources
from repro.core.presence import (
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.sweep_kernel import (
    UNREACHED,
    sweep_block,
    sweep_block_bignum,
    sweep_block_bitset,
)
from repro.core.time_domain import Lifetime
from repro.core.traversal import earliest_arrivals
from repro.core.tvg import TimeVaryingGraph

HORIZON = 12

DETERMINISTIC = settings(deadline=None, derandomize=True, print_blob=True)

semantics_strategy = st.one_of(
    st.just(NO_WAIT),
    st.just(WAIT),
    st.integers(0, 3).map(bounded_wait),
)


@st.composite
def presences(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        period = draw(st.integers(2, 5))
        pattern = draw(
            st.sets(st.integers(0, period - 1), min_size=1, max_size=period)
        )
        return periodic_presence(pattern, period)
    if kind == 1:
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, HORIZON - 1), st.integers(1, 4)),
                min_size=1,
                max_size=3,
            )
        )
        return interval_presence([(a, a + w) for a, w in pairs])
    if kind == 2:
        period = draw(st.integers(2, 4))
        shift = draw(st.integers(-2, 3))
        return periodic_presence([0], period).shifted(shift)
    # Black-box: an opaque callable routed through the LazyContactCache.
    period = draw(st.integers(2, 5))
    residue = draw(st.integers(0, period - 1))
    return function_presence(lambda t, p=period, r=residue: t % p == r, "blackbox")


@st.composite
def tvgs(draw):
    n = draw(st.integers(2, 6))
    graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="random")
    graph.add_nodes(range(n))
    edge_count = draw(st.integers(1, 9))
    for _ in range(edge_count):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        graph.add_edge(
            u,
            v,
            presence=draw(presences()),
            latency=constant_latency(draw(st.integers(1, 3))),
        )
    return graph


class TestBitsetEqualsBignum:
    @given(tvgs(), semantics_strategy, st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=80)
    def test_full_sweep_agrees(self, graph, semantics, start):
        _nodes, plan = build_sweep_plan(
            TemporalEngine(graph), start, semantics, HORIZON
        )
        sources = tuple(range(plan.n))
        assert np.array_equal(
            sweep_block_bitset(plan, sources), sweep_block_bignum(plan, sources)
        )

    @given(tvgs(), semantics_strategy, st.integers(2, 4))
    @settings(DETERMINISTIC, max_examples=40)
    def test_block_partitions_agree(self, graph, semantics, shards):
        """Stacked per-block bitset sweeps equal the serial bignum sweep
        — the exactness the sharded and cluster paths inherit."""
        _nodes, plan = build_sweep_plan(TemporalEngine(graph), 0, semantics, HORIZON)
        serial = sweep_block_bignum(plan, tuple(range(plan.n)))
        stacked = np.vstack(
            [
                sweep_block_bitset(plan, block)
                for block in partition_sources(plan.n, shards)
            ]
        )
        assert np.array_equal(stacked, serial)

    @given(tvgs(), semantics_strategy, st.data())
    @settings(DETERMINISTIC, max_examples=40)
    def test_arbitrary_source_blocks_agree(self, graph, semantics, data):
        """Duplicated and out-of-order source rows: row ``i`` of the
        output answers ``sources[i]`` under both kernels."""
        _nodes, plan = build_sweep_plan(TemporalEngine(graph), 0, semantics, HORIZON)
        sources = tuple(
            data.draw(
                st.lists(
                    st.integers(0, plan.n - 1), min_size=1, max_size=2 * plan.n
                )
            )
        )
        assert np.array_equal(
            sweep_block_bitset(plan, sources), sweep_block_bignum(plan, sources)
        )


class TestKernelsMatchInterpretiveOracle:
    @given(tvgs(), semantics_strategy, st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=40)
    def test_both_kernels_match_journey_search(self, graph, semantics, start):
        """Three-version agreement: each kernel's matrix row equals the
        interpretive temporal-state search, which shares no code with
        either kernel."""
        engine = TemporalEngine(graph)
        nodes, bitset = engine.arrival_matrix(
            start, semantics, horizon=HORIZON, kernel="bitset"
        )
        _same, bignum = engine.arrival_matrix(
            start, semantics, horizon=HORIZON, kernel="bignum"
        )
        assert np.array_equal(bitset, bignum)
        for i, source in enumerate(nodes):
            oracle = earliest_arrivals(graph, source, start, semantics, HORIZON)
            expected = [oracle.get(node, UNREACHED) for node in nodes]
            assert bitset[i].tolist() == expected


def _plan_for_dates(base: int) -> SweepPlan:
    """A 4-node line+shortcut plan with every date near ``base`` — built
    directly so the magnitude (e.g. near ``UNREACHED``) exercises only
    the kernels, not the graph layer."""
    return SweepPlan(
        n=4,
        out_edges=((0, 1), (2,), (3,), ()),
        target_idx=(1, 2, 2, 3),
        contacts=(
            (base, base + 1),
            (base + 3,),
            (base + 1, base + 4),
            (base + 5,),
        ),
        arrivals=(
            (base + 1, base + 2),
            (base + 4,),
            (base + 3, base + 5),
            (base + 6,),
        ),
        start_time=base,
        horizon=base + 8,
        max_wait=None,
    )


class TestHandcraftedRegimes:
    def test_unreached_magnitude_dates(self):
        """Dates within a few steps of ``UNREACHED`` (int64 max): both
        kernels must sort, bucket, and compare without overflowing."""
        base = int(UNREACHED) - 16
        for max_wait in (None, 0, 1, 3):
            plan = SweepPlan(
                n=4,
                out_edges=((0, 1), (2,), (3,), ()),
                target_idx=(1, 2, 2, 3),
                contacts=_plan_for_dates(base).contacts,
                arrivals=_plan_for_dates(base).arrivals,
                start_time=base,
                horizon=base + 8,
                max_wait=max_wait,
            )
            sources = (0, 1, 2, 3)
            bitset = sweep_block_bitset(plan, sources)
            bignum = sweep_block_bignum(plan, sources)
            assert np.array_equal(bitset, bignum), f"max_wait={max_wait}"
            assert bitset[0, 0] == base  # the trivial journey survives
            assert bitset.max() <= np.iinfo(np.int64).max

    def test_empty_graph(self):
        graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="empty")
        for kernel in ("bitset", "bignum"):
            nodes, matrix = TemporalEngine(graph).arrival_matrix(
                0, WAIT, horizon=HORIZON, kernel=kernel
            )
            assert nodes == [] and matrix.shape == (0, 0)

    def test_single_node_graph(self):
        graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="one")
        graph.add_nodes(["a"])
        for kernel in ("bitset", "bignum"):
            _nodes, matrix = TemporalEngine(graph).arrival_matrix(
                3, WAIT, horizon=HORIZON, kernel=kernel
            )
            assert matrix.tolist() == [[3]]

    def test_empty_source_block(self):
        plan = _plan_for_dates(0)
        for fn in (sweep_block_bitset, sweep_block_bignum):
            assert fn(plan, ()).shape == (0, 4)

    @given(tvgs(), st.integers(0, 3))
    @settings(DETERMINISTIC, max_examples=30)
    def test_unexhaustible_bound_collapses_to_wait(self, graph, start):
        """A waiting bound no in-window departure can exhaust must equal
        unbounded waiting exactly (the kernel's ``wait_like`` collapse)."""
        engine = TemporalEngine(graph)
        _n1, bounded = engine.arrival_matrix(
            start, bounded_wait(HORIZON), horizon=HORIZON, kernel="bitset"
        )
        _n2, unbounded = engine.arrival_matrix(
            start, WAIT, horizon=HORIZON, kernel="bitset"
        )
        assert np.array_equal(bounded, unbounded)


class TestDispatch:
    @given(tvgs(), semantics_strategy)
    @settings(DETERMINISTIC, max_examples=20)
    def test_dispatcher_routes_by_name(self, graph, semantics):
        _nodes, plan = build_sweep_plan(TemporalEngine(graph), 0, semantics, HORIZON)
        sources = tuple(range(plan.n))
        assert np.array_equal(
            sweep_block(plan, sources, kernel="bitset"),
            sweep_block_bitset(plan, sources),
        )
        assert np.array_equal(
            sweep_block(plan, sources, kernel="bignum"),
            sweep_block_bignum(plan, sources),
        )
