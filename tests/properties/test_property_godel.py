"""Property-based tests for the Gödel encodings."""

from hypothesis import given, settings, strategies as st

from repro.constructions.godel import GodelEncoding

words = st.text(alphabet="ab", max_size=7)
other_words = st.text(alphabet="abc", max_size=5)


class TestGodelProperties:
    @given(words)
    def test_roundtrip(self, word):
        enc = GodelEncoding("ab")
        assert enc.decode(enc.encode(word)) == word

    @given(words, words)
    def test_injective(self, first, second):
        enc = GodelEncoding("ab")
        if first != second:
            assert enc.encode(first) != enc.encode(second)

    @given(words, st.sampled_from("ab"))
    def test_extension_is_one_multiplication(self, word, symbol):
        enc = GodelEncoding("ab")
        assert enc.encode(word + symbol) == enc.encode(word) * enc.extension_factor(
            len(word), symbol
        )

    @given(words, st.sampled_from("ab"))
    def test_extension_latency_lands_on_next_code(self, word, symbol):
        enc = GodelEncoding("ab")
        t = enc.encode(word)
        assert t + enc.extension_latency(t, symbol) == enc.encode(word + symbol)

    @given(st.integers(1, 5000))
    def test_decode_encode_partial_inverse(self, value):
        enc = GodelEncoding("ab")
        word = enc.decode(value)
        if word is not None:
            assert enc.encode(word) == value

    @given(other_words)
    @settings(max_examples=50)
    def test_three_symbol_roundtrip(self, word):
        enc = GodelEncoding("abc")
        assert enc.decode(enc.encode(word)) == word

    @given(words)
    def test_codes_grow_with_length(self, word):
        enc = GodelEncoding("ab")
        if word:
            assert enc.encode(word) > enc.encode(word[:-1])
