"""Property suite for the sharded arrival sweep.

The sharding claim is exact, not approximate: for ANY graph (every
structured presence form plus black-box predicates routed through the
LazyContactCache), any waiting semantics, any start date, and any block
count, lowering the sweep to a :class:`~repro.core.parallel.SweepPlan`,
sweeping each source block independently, and stacking the sub-matrices
equals the serial sweep element for element.  Hypothesis drives the
block sweeps in-process (same code the workers run, minus the fork) so
hundreds of examples stay cheap; ``tests/core/test_parallel.py`` adds
the end-to-end multi-process runs under the ``slow`` marker.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.engine import TemporalEngine
from repro.core.latency import constant_latency
from repro.core.parallel import build_sweep_plan, partition_sources, sweep_block
from repro.core.presence import (
    function_presence,
    interval_presence,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph

HORIZON = 12

DETERMINISTIC = settings(deadline=None, derandomize=True, print_blob=True)

semantics_strategy = st.one_of(
    st.just(NO_WAIT),
    st.just(WAIT),
    st.integers(0, 3).map(bounded_wait),
)


@st.composite
def presences(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        period = draw(st.integers(2, 5))
        pattern = draw(
            st.sets(st.integers(0, period - 1), min_size=1, max_size=period)
        )
        return periodic_presence(pattern, period)
    if kind == 1:
        pairs = draw(
            st.lists(
                st.tuples(st.integers(0, HORIZON - 1), st.integers(1, 4)),
                min_size=1,
                max_size=3,
            )
        )
        return interval_presence([(a, a + w) for a, w in pairs])
    if kind == 2:
        period = draw(st.integers(2, 4))
        shift = draw(st.integers(-2, 3))
        return periodic_presence([0], period).shifted(shift)
    # Black-box: an opaque callable routed through the LazyContactCache.
    period = draw(st.integers(2, 5))
    residue = draw(st.integers(0, period - 1))
    return function_presence(lambda t, p=period, r=residue: t % p == r, "blackbox")


@st.composite
def tvgs(draw):
    n = draw(st.integers(2, 6))
    graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="random")
    graph.add_nodes(range(n))
    edge_count = draw(st.integers(1, 9))
    for _ in range(edge_count):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        graph.add_edge(
            u,
            v,
            presence=draw(presences()),
            latency=constant_latency(draw(st.integers(1, 3))),
        )
    return graph


class TestShardedEqualsSerial:
    @given(tvgs(), semantics_strategy, st.integers(0, 3), st.integers(2, 4))
    @settings(DETERMINISTIC, max_examples=60)
    def test_stacked_block_sweeps_equal_serial(
        self, graph, semantics, start, shards
    ):
        engine = TemporalEngine(graph)
        _nodes, serial = engine.arrival_matrix(start, semantics, horizon=HORIZON)
        _same, plan = build_sweep_plan(engine, start, semantics, HORIZON)
        blocks = partition_sources(plan.n, shards)
        stacked = np.vstack([sweep_block(plan, block) for block in blocks])
        assert np.array_equal(stacked, serial)

    @given(tvgs(), semantics_strategy, st.integers(2, 4))
    @settings(DETERMINISTIC, max_examples=30)
    def test_fresh_engine_per_path_still_agrees(self, graph, semantics, shards):
        """Same equality with NO shared engine state between the two
        paths — each lowers its own index and black-box cache."""
        _nodes, serial = TemporalEngine(graph).arrival_matrix(
            0, semantics, horizon=HORIZON
        )
        _same, plan = build_sweep_plan(
            TemporalEngine(graph), 0, semantics, HORIZON
        )
        stacked = np.vstack(
            [sweep_block(plan, b) for b in partition_sources(plan.n, shards)]
        )
        assert np.array_equal(stacked, serial)

    @given(tvgs(), semantics_strategy)
    @settings(DETERMINISTIC, max_examples=30)
    def test_masks_match_the_matrix(self, graph, semantics):
        """The vectorized mask packing agrees with the boolean matrix
        (bit i of masks[j] == matrix[i, j]) on arbitrary graphs."""
        engine = TemporalEngine(graph)
        nodes, matrix = engine.reachability_matrix(0, semantics, horizon=HORIZON)
        _same, masks = engine.reachability_masks(0, semantics, horizon=HORIZON)
        for j in range(len(nodes)):
            assert masks[j] == sum(
                1 << i for i in range(len(nodes)) if matrix[i, j]
            )
