"""Property-based tests for interval sets."""

from hypothesis import given, strategies as st

from repro.core.intervals import Interval, IntervalSet

pairs = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=8,
)
dates = st.integers(-60, 60)


def brute_membership(raw_pairs, time):
    return any(a <= time < b for a, b in raw_pairs)


class TestIntervalSetProperties:
    @given(pairs, dates)
    def test_membership_matches_brute_force(self, raw, time):
        s = IntervalSet.from_pairs(raw)
        assert (time in s) == brute_membership(raw, time)

    @given(pairs)
    def test_normalized_disjoint_and_sorted(self, raw):
        s = IntervalSet.from_pairs(raw)
        intervals = list(s)
        for left, right in zip(intervals, intervals[1:]):
            assert left.end < right.start  # strictly separated (merged otherwise)

    @given(pairs, dates)
    def test_next_time_in_is_correct(self, raw, time):
        s = IntervalSet.from_pairs(raw)
        found = s.next_time_in(time)
        if found is None:
            assert all(not brute_membership(raw, t) for t in range(time, 61))
        else:
            assert found >= time
            assert found in s
            assert all(t not in s for t in range(time, found))

    @given(pairs, pairs, dates)
    def test_union_membership(self, raw_a, raw_b, time):
        a, b = IntervalSet.from_pairs(raw_a), IntervalSet.from_pairs(raw_b)
        assert (time in a.union(b)) == ((time in a) or (time in b))

    @given(pairs, pairs, dates)
    def test_intersection_membership(self, raw_a, raw_b, time):
        a, b = IntervalSet.from_pairs(raw_a), IntervalSet.from_pairs(raw_b)
        assert (time in a.intersect(b)) == ((time in a) and (time in b))

    @given(pairs, dates)
    def test_complement_membership(self, raw, time):
        s = IntervalSet.from_pairs(raw)
        window = Interval(-60, 61)
        complement = s.complement(window)
        assert (time in complement) == (time in window and time not in s)

    @given(pairs)
    def test_total_length_equals_enumeration(self, raw):
        s = IntervalSet.from_pairs(raw)
        assert s.total_length() == len(list(s.times()))

    @given(pairs, st.integers(1, 5))
    def test_dilate_sparse_bijection(self, raw, factor):
        s = IntervalSet.from_pairs(raw)
        dilated = s.dilate_sparse(factor)
        assert sorted(dilated.times()) == [t * factor for t in s.times()]

    @given(pairs, st.integers(-20, 20), dates)
    def test_shift_membership(self, raw, delta, time):
        s = IntervalSet.from_pairs(raw)
        assert (time in s.shift(delta)) == ((time - delta) in s)
