"""Property-based tests for the wqo toolkit (Higman order invariants)."""

from hypothesis import given, settings, strategies as st

from repro.automata.enumeration import language_upto
from repro.automata.regex import random_regex, regex_to_nfa
from repro.automata.wqo import (
    downward_closure,
    is_subword,
    maximal_antichain,
    minimal_elements,
    upward_closure,
    upward_closure_of_words,
)

words = st.text(alphabet="ab", max_size=8)
word_sets = st.sets(st.text(alphabet="ab", min_size=1, max_size=5), min_size=1, max_size=6)
seeds = st.integers(0, 10_000)


class TestSubwordOrder:
    @given(words)
    def test_reflexive(self, w):
        assert is_subword(w, w)

    @given(words, words)
    def test_antisymmetric_on_lengths(self, u, v):
        if is_subword(u, v) and is_subword(v, u):
            assert u == v

    @given(words, words, words)
    def test_transitive(self, u, v, w):
        if is_subword(u, v) and is_subword(v, w):
            assert is_subword(u, w)

    @given(words, words)
    def test_concatenation_monotone(self, u, v):
        assert is_subword(u, u + v)
        assert is_subword(v, u + v)


class TestClosureProperties:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_upward_closure_contains_language(self, seed):
        nfa = regex_to_nfa(random_regex("ab", depth=3, seed=seed), alphabet="ab")
        up = upward_closure(nfa)
        for word in language_upto(nfa, 4):
            assert up.accepts(word)

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_closure_membership_characterization(self, seed):
        nfa = regex_to_nfa(random_regex("ab", depth=3, seed=seed), alphabet="ab")
        sample = language_upto(nfa, 4)
        up = upward_closure(nfa)
        down = downward_closure(nfa)
        from repro.automata.alphabet import Alphabet

        for word in Alphabet("ab").words_upto(4):
            in_up = any(is_subword(member, word) for member in sample)
            in_down = any(is_subword(word, member) for member in sample)
            # up/down closures computed on the full (possibly infinite)
            # language can only accept MORE than the sample predicts.
            if in_up:
                assert up.accepts(word)
            if in_down:
                assert down.accepts(word)

    @given(word_sets)
    @settings(max_examples=40, deadline=None)
    def test_upward_closure_of_words_exact(self, generators):
        nfa = upward_closure_of_words(sorted(generators), "ab")
        from repro.automata.alphabet import Alphabet

        for word in Alphabet("ab").words_upto(5):
            expected = any(is_subword(g, word) for g in generators)
            assert nfa.accepts(word) == expected, word


class TestAntichains:
    @given(word_sets)
    def test_minimal_elements_generate(self, pool):
        minimal = minimal_elements(pool)
        for word in pool:
            assert any(is_subword(m, word) for m in minimal)

    @given(word_sets)
    def test_maximal_antichain_incomparable(self, pool):
        chain = maximal_antichain(pool)
        for i, first in enumerate(chain):
            for second in chain[i + 1 :]:
                assert not is_subword(first, second)
                assert not is_subword(second, first)
