"""Property-based N-version checking of the two regex engines.

The Thompson/subset pipeline and the Brzozowski derivative engine share
no code; hypothesis drives random regexes and words through both and
through the state-elimination round trip.  Any divergence is a bug in
one of the three.
"""

from hypothesis import given, settings, strategies as st

from repro.automata.derivatives import derivative_dfa, matches
from repro.automata.equivalence import equivalent
from repro.automata.regex import random_regex, regex_to_nfa
from repro.automata.to_regex import nfa_to_regex

seeds = st.integers(0, 100_000)
words = st.text(alphabet="ab", max_size=6)

# derandomize pins Hypothesis to a fixed example sequence so CI runs are
# reproducible; deadline=None because DFA construction time varies wildly
# with the drawn regex, not with any bug.
DETERMINISTIC = settings(deadline=None, derandomize=True, print_blob=True)


class TestEngineAgreement:
    @given(seeds, words)
    @settings(DETERMINISTIC, max_examples=60)
    def test_membership_agreement(self, seed, word):
        node = random_regex("ab", depth=3, seed=seed)
        nfa = regex_to_nfa(node, alphabet="ab")
        assert matches(node, word) == nfa.accepts(word)

    @given(seeds)
    @settings(DETERMINISTIC, max_examples=25)
    def test_dfa_construction_agreement(self, seed):
        node = random_regex("ab", depth=3, seed=seed)
        via_derivatives = derivative_dfa(node, alphabet="ab")
        via_thompson = regex_to_nfa(node, alphabet="ab").to_dfa()
        assert equivalent(via_derivatives, via_thompson)

    def test_dfa_construction_agreement_regression(self):
        # Seed 247 once drew (a|b)*(b*|aa), whose b-derivatives piled up
        # ((R|b*)|b*)|b*... because union similarity was not ACI-complete.
        node = random_regex("ab", depth=3, seed=247)
        via_derivatives = derivative_dfa(node, alphabet="ab")
        via_thompson = regex_to_nfa(node, alphabet="ab").to_dfa()
        assert equivalent(via_derivatives, via_thompson)

    @given(seeds)
    @settings(DETERMINISTIC, max_examples=25)
    def test_state_elimination_round_trip(self, seed):
        node = random_regex("ab", depth=3, seed=seed)
        source = regex_to_nfa(node, alphabet="ab")
        if source.to_dfa().trim().is_empty():
            return  # plain syntax cannot write the empty language
        text = str(nfa_to_regex(source))
        rebuilt = regex_to_nfa(text, alphabet="ab")
        assert equivalent(source, rebuilt)

    @given(seeds, words)
    @settings(DETERMINISTIC, max_examples=40)
    def test_three_way_membership(self, seed, word):
        node = random_regex("ab", depth=2, seed=seed)
        nfa = regex_to_nfa(node, alphabet="ab")
        dfa = derivative_dfa(node, alphabet="ab")
        assert nfa.accepts(word) == dfa.accepts(word) == matches(node, word)
