"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import TVGBuilder, figure1_automaton
from repro.core.generators import periodic_random_tvg


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--sweep-kernel",
        choices=["bitset", "bignum"],
        default=None,
        help="run every arrival sweep that doesn't pin its own kernel on "
        "this one (sets REPRO_SWEEP_KERNEL), so the whole suite re-runs "
        "against either kernel",
    )
    parser.addoption(
        "--incremental",
        choices=["off", "on", "force"],
        default=None,
        help="run every TVGService that doesn't pin its own mode under "
        "this incremental-maintenance policy (sets REPRO_INCREMENTAL); "
        "'force' makes every applicable cache miss take the incremental "
        "patch path, so the whole suite re-proves it",
    )


def pytest_configure(config: pytest.Config) -> None:
    kernel = config.getoption("--sweep-kernel")
    if kernel is not None:
        os.environ["REPRO_SWEEP_KERNEL"] = kernel
    incremental = config.getoption("--incremental")
    if incremental is not None:
        os.environ["REPRO_INCREMENTAL"] = incremental


@pytest.fixture(scope="session")
def fig1():
    """The Figure 1 automaton with the default primes (p=2, q=3)."""
    return figure1_automaton()


@pytest.fixture()
def line_graph():
    """a -> b -> c with staggered presence: a->b at t in [0,2), b->c at
    t in [5,7).  A journey a->c exists only with waiting."""
    return (
        TVGBuilder(name="line")
        .lifetime(0, 10)
        .edge("a", "b", present=[(0, 2)], key="ab")
        .edge("b", "c", present=[(5, 7)], key="bc")
        .build()
    )


@pytest.fixture()
def periodic_graph():
    """A small random periodic labeled TVG (period 4)."""
    return periodic_random_tvg(4, period=4, density=0.5, labels="ab", seed=11)
