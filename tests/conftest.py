"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import TVGBuilder, figure1_automaton
from repro.core.generators import periodic_random_tvg


@pytest.fixture(scope="session")
def fig1():
    """The Figure 1 automaton with the default primes (p=2, q=3)."""
    return figure1_automaton()


@pytest.fixture()
def line_graph():
    """a -> b -> c with staggered presence: a->b at t in [0,2), b->c at
    t in [5,7).  A journey a->c exists only with waiting."""
    return (
        TVGBuilder(name="line")
        .lifetime(0, 10)
        .edge("a", "b", present=[(0, 2)], key="ab")
        .edge("b", "c", present=[(5, 7)], key="bc")
        .build()
    )


@pytest.fixture()
def periodic_graph():
    """A small random periodic labeled TVG (period 4)."""
    return periodic_random_tvg(4, period=4, density=0.5, labels="ab", seed=11)
