"""Tests for messages."""

from repro.dynamics.messages import Message


class TestMessage:
    def test_forwarded_provenance(self):
        original = Message(uid=1, origin="a", payload="p", created=0, path=("a",))
        hop1 = original.forwarded("a")
        hop2 = hop1.forwarded("b")
        assert hop2.hops == 2
        assert hop2.path == ("a", "a", "b")
        assert hop2.uid == original.uid
        assert hop2.payload == "p"

    def test_original_untouched(self):
        original = Message(uid=1, origin="a", payload="p", created=0)
        original.forwarded("a")
        assert original.hops == 0

    def test_immutable(self):
        import pytest

        message = Message(uid=1, origin="a", payload="p", created=0)
        with pytest.raises(AttributeError):
            message.hops = 5
