"""Tests for mobility-driven contact generation."""

import pytest

from repro.dynamics.mobility import (
    proximity_tvg,
    random_walk_positions,
    random_waypoint_tvg,
)
from repro.errors import ReproError


class TestRandomWalk:
    def test_deterministic(self):
        a = random_walk_positions(3, 4, 4, 10, seed=5)
        b = random_walk_positions(3, 4, 4, 10, seed=5)
        assert a == b

    def test_track_lengths(self):
        positions = random_walk_positions(2, 3, 3, 7, seed=1)
        assert all(len(track) == 7 for track in positions.values())

    def test_moves_are_lazy_grid_steps(self):
        positions = random_walk_positions(2, 5, 5, 50, seed=2)
        for track in positions.values():
            for before, after in zip(track, track[1:]):
                dist = abs(before[0] - after[0]) + abs(before[1] - after[1])
                assert dist <= 1

    def test_positions_in_bounds(self):
        positions = random_walk_positions(3, 4, 2, 30, seed=3)
        for track in positions.values():
            for x, y in track:
                assert 0 <= x < 4 and 0 <= y < 2

    def test_validation(self):
        with pytest.raises(ReproError):
            random_walk_positions(0, 3, 3, 5)


class TestProximity:
    def test_contacts_from_fixed_tracks(self):
        positions = {
            "u": [(0, 0), (0, 0), (2, 2)],
            "v": [(0, 1), (2, 2), (2, 2)],
        }
        g = proximity_tvg(positions)
        edge = g.edges_between("u", "v")[0]
        assert edge.present_at(0)   # adjacent cells
        assert not edge.present_at(1)  # far apart
        assert edge.present_at(2)   # same cell

    def test_no_contact_no_edge(self):
        positions = {"u": [(0, 0)], "v": [(3, 3)]}
        g = proximity_tvg(positions)
        assert g.edge_count == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            proximity_tvg({"u": [(0, 0)], "v": [(0, 0), (1, 1)]})

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            proximity_tvg({})


class TestRandomWaypoint:
    def test_end_to_end(self):
        g = random_waypoint_tvg(4, 3, 3, 15, seed=7)
        assert g.node_count == 4
        assert g.lifetime.end == 15
        # Contacts are symmetric.
        for edge in g.edges:
            assert g.edges_between(edge.target, edge.source)
