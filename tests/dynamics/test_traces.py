"""Tests for contact-trace I/O."""

import io

import pytest

from repro.core.builders import TVGBuilder
from repro.dynamics.traces import load_trace, parse_trace, save_trace, write_trace
from repro.errors import TraceFormatError


SAMPLE = """
# a tiny trace
n1 n2 0 3
n2 n3 5 8
n1 n2 10 12
"""


class TestParse:
    def test_round_structure(self):
        g = parse_trace(SAMPLE.splitlines())
        assert g.node_count == 3
        assert g.edge_count == 4  # two pairs, both directions
        assert g.lifetime.end == 12

    def test_windows(self):
        g = parse_trace(SAMPLE.splitlines())
        edge = g.edges_between("n1", "n2")[0]
        assert edge.present_at(0) and edge.present_at(2)
        assert not edge.present_at(3)
        assert edge.present_at(10)

    def test_symmetry(self):
        g = parse_trace(SAMPLE.splitlines())
        forward = g.edges_between("n1", "n2")[0]
        backward = g.edges_between("n2", "n1")[0]
        assert forward.present_at(1) == backward.present_at(1)

    def test_comments_and_blanks_ignored(self):
        g = parse_trace(["# only a comment", "", "a b 0 1"])
        assert g.edge_count == 2

    def test_bad_field_count(self):
        with pytest.raises(TraceFormatError) as info:
            parse_trace(["a b 0"])
        assert info.value.line_number == 1

    def test_non_integer(self):
        with pytest.raises(TraceFormatError):
            parse_trace(["a b zero 5"])

    def test_empty_window(self):
        with pytest.raises(TraceFormatError):
            parse_trace(["a b 5 5"])

    def test_self_contact(self):
        with pytest.raises(TraceFormatError):
            parse_trace(["a a 0 1"])


class TestWrite:
    def test_round_trip(self):
        g = parse_trace(SAMPLE.splitlines())
        buffer = io.StringIO()
        write_trace(g, buffer)
        reparsed = parse_trace(buffer.getvalue().splitlines())
        assert reparsed.node_count == g.node_count
        assert reparsed.edge_count == g.edge_count
        for t in (0, 2, 3, 5, 10, 11):
            original = {e.key for e in g.edges_at(t)}
            again = {e.key for e in reparsed.edges_at(t)}
            assert len(original) == len(again), t

    def test_write_requires_horizon_for_unbounded(self):
        g = TVGBuilder().contact("a", "b").build()
        with pytest.raises(TraceFormatError):
            write_trace(g, io.StringIO())
        buffer = io.StringIO()
        write_trace(g, buffer, horizon=5)
        assert "a b 0 5" in buffer.getvalue()

    def test_file_round_trip(self, tmp_path):
        g = parse_trace(SAMPLE.splitlines())
        path = tmp_path / "contacts.trace"
        save_trace(g, path)
        again = load_trace(path)
        assert again.node_count == 3
