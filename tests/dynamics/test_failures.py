"""Failure-injection tests: simulator vs the failure-filtered graph."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.generators import edge_markovian_tvg
from repro.core.semantics import NO_WAIT, WAIT
from repro.core.traversal import reachable_states
from repro.dynamics.failures import is_down, validate_failures, with_node_failures
from repro.dynamics.network import Simulator
from repro.dynamics.protocols.broadcast import simulate_broadcast
from repro.errors import SimulationError


@pytest.fixture()
def relay_chain():
    """a-b early, b-c late: b must buffer — and b failing loses the flood."""
    return (
        TVGBuilder(name="chain")
        .lifetime(0, 12)
        .contact("a", "b", present={1}, key="ab")
        .contact("b", "c", present={6}, key="bc")
        .build()
    )


class TestFailureSchedule:
    def test_is_down(self):
        failures = {"b": {3, 4}}
        assert is_down(failures, "b", 3)
        assert not is_down(failures, "b", 5)
        assert not is_down(failures, "a", 3)

    def test_unknown_node_rejected(self, relay_chain):
        with pytest.raises(SimulationError):
            validate_failures(relay_chain, {"ghost": {1}})
        with pytest.raises(SimulationError):
            Simulator(relay_chain, lambda n: None, failures={"ghost": {1}})


class TestFilteredGraph:
    def test_source_downtime_blocks_departure(self, relay_chain):
        filtered = with_node_failures(relay_chain, {"b": {6}})
        # b is down at 6 — the bc edge cannot be taken then.
        assert not filtered.edge("bc").present_at(6)
        # The reverse direction departs from c at 6 and arrives at 7,
        # when b is back up — that traversal survives.
        assert filtered.edge("bc~rev").present_at(6)

    def test_arrival_downtime_blocks_traversal(self, relay_chain):
        # b down at 2: the a->b traversal departing at 1 arrives at 2 — lost.
        filtered = with_node_failures(relay_chain, {"b": {2}})
        assert not filtered.edge("ab").present_at(1)
        # departure is fine for the reverse direction (b up at 1, a always up)
        assert filtered.edge("ab~rev").present_at(1)

    def test_unaffected_edges_shared(self, relay_chain):
        filtered = with_node_failures(relay_chain, {"c": {0}})
        assert filtered.edge("ab") is relay_chain.edge("ab")


class TestSimulatorFailures:
    def test_relay_failure_kills_delivery(self, relay_chain):
        healthy = simulate_broadcast(relay_chain, "a", buffering=True)
        assert healthy.informed == {"b", "c"}
        # b down exactly when it would receive (t=2): flood dies at b.
        failed = simulate_broadcast(
            relay_chain, "a", buffering=True, failures={"b": {2}}, persistent=True
        )
        assert failed.informed == set()

    def test_forwarding_window_failure(self, relay_chain):
        # b down at 6 only: it received fine at 2 but cannot forward at 6.
        failed = simulate_broadcast(
            relay_chain, "a", buffering=True, failures={"b": {6}}, persistent=True
        )
        assert failed.informed == {"b"}

    def test_dropped_counter(self, relay_chain):
        simulate = simulate_broadcast  # alias for line length
        outcome = simulate(
            relay_chain, "a", buffering=True, failures={"b": {2}}, persistent=True
        )
        assert outcome.informed == set()

    def test_buffer_survives_downtime(self):
        """A node down between receipt and forwarding still forwards
        after rebooting: storage persists through the failure."""
        g = (
            TVGBuilder()
            .lifetime(0, 12)
            .contact("a", "b", present={1}, key="ab")
            .contact("b", "c", present={5, 8}, key="bc")
            .build()
        )
        outcome = simulate_broadcast(
            g, "a", buffering=True, failures={"b": {4, 5, 6}}, persistent=True
        )
        # b missed the t=5 contact (down) but catches the t=8 one.
        assert outcome.informed == {"b", "c"}
        assert outcome.arrival_times["c"] == 9


class TestTheoryBridgeUnderFailures:
    @pytest.mark.parametrize("seed", range(4))
    def test_persistent_flood_matches_filtered_reachability(self, seed):
        g = edge_markovian_tvg(8, horizon=25, birth=0.12, death=0.4, seed=seed)
        failures = {2: set(range(5, 15)), 5: {0, 1, 2}}
        outcome = simulate_broadcast(
            g, 0, buffering=True, failures=failures, persistent=True
        )
        filtered = with_node_failures(g, failures)
        states = reachable_states(filtered, [(0, 0)], WAIT, horizon=25)
        predicted = {n for n, t in states if t < 25} - {0}
        assert set(outcome.informed) == predicted

    @pytest.mark.parametrize("seed", range(3))
    def test_bufferless_matches_filtered_reachability(self, seed):
        g = edge_markovian_tvg(8, horizon=25, birth=0.12, death=0.4, seed=seed)
        failures = {3: set(range(0, 10))}
        outcome = simulate_broadcast(
            g, 0, buffering=False, failures=failures
        )
        filtered = with_node_failures(g, failures)
        states = reachable_states(filtered, [(0, 0)], NO_WAIT, horizon=25)
        predicted = {n for n, t in states if t < 25} - {0}
        assert set(outcome.informed) == predicted

    def test_failures_only_shrink_the_informed_set(self):
        for seed in range(3):
            g = edge_markovian_tvg(8, horizon=25, birth=0.12, death=0.4, seed=seed)
            healthy = simulate_broadcast(g, 0, buffering=True, persistent=True)
            failed = simulate_broadcast(
                g, 0, buffering=True, persistent=True,
                failures={1: set(range(0, 25))},
            )
            assert set(failed.informed) <= set(healthy.informed)
