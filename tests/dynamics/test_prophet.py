"""Tests for PRoPHET routing."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.generators import edge_markovian_tvg
from repro.core.semantics import WAIT
from repro.core.traversal import can_reach
from repro.dynamics.protocols.prophet import ProphetNode, route_prophet
from repro.dynamics.protocols.routing import route_epidemic
from repro.errors import SimulationError


class TestPredictability:
    def test_direct_boost(self):
        node = ProphetNode("a", "a", "z")
        node._met("b")
        assert node.predictability["b"] == pytest.approx(0.75)
        node._met("b")
        assert node.predictability["b"] == pytest.approx(0.75 + 0.25 * 0.75)

    def test_aging_decays(self):
        node = ProphetNode("a", "a", "z")
        node._last_aged = 0
        node._met("b")
        node._age(10)
        assert node.predictability["b"] == pytest.approx(0.75 * 0.98**10)

    def test_transitivity(self):
        node = ProphetNode("a", "a", "z")
        node._met("b")
        node._transit("b", {"z": 0.8})
        expected = 0.75 * 0.8 * 0.25
        assert node.predictability["z"] == pytest.approx(expected)

    def test_transitivity_never_decreases(self):
        node = ProphetNode("a", "a", "z")
        node.predictability["z"] = 0.9
        node._met("b")
        node._transit("b", {"z": 0.1})
        assert node.predictability["z"] >= 0.9


class TestRouting:
    def test_direct_contact_delivers(self):
        g = (
            TVGBuilder()
            .lifetime(0, 10)
            .contact("src", "dst", present={3}, key="sd")
            .build()
        )
        outcome = route_prophet(g, "src", "dst")
        assert outcome.delivered
        assert outcome.delay == 4

    def test_relay_via_history(self):
        """dst-regular relay picks up the message: src meets relay after
        the relay has met dst (so its predictability is already high).
        The src-relay contact lasts two instants — summaries cross during
        the first, the data copy follows during the second."""
        g = (
            TVGBuilder()
            .lifetime(0, 30)
            .contact("relay", "dst", present={2, 20}, key="rd")
            .contact("src", "relay", present={10, 11}, key="sr")
            .build()
        )
        outcome = route_prophet(g, "src", "dst")
        assert outcome.delivered
        assert outcome.delay == 21  # relay hands over at the t=20 contact

    def test_never_delivers_without_wait_journey(self):
        for seed in range(3):
            g = edge_markovian_tvg(8, horizon=30, birth=0.08, death=0.5, seed=seed)
            outcome = route_prophet(g, 0, 7)
            if outcome.delivered:
                assert can_reach(g, 0, 7, 0, WAIT, horizon=30)

    def test_fewer_copies_than_epidemic(self):
        copies, epidemic_copies = 0, 0
        for seed in range(4):
            g = edge_markovian_tvg(10, horizon=40, birth=0.15, death=0.3, seed=seed)
            prophet = route_prophet(g, 0, 9)
            epidemic = route_epidemic(g, 0, 9)
            copies += prophet.data_copies
            epidemic_copies += epidemic.transmissions
        assert copies < epidemic_copies

    def test_validation(self):
        g = TVGBuilder().lifetime(0, 5).contact("a", "b").build()
        with pytest.raises(SimulationError):
            route_prophet(g, "a", "a")
