"""Tests for the discrete-event simulator."""

import pytest

from repro.core.builders import TVGBuilder
from repro.dynamics.network import Simulator
from repro.dynamics.nodes import NodeContext, Protocol
from repro.errors import SimulationError


def two_hop_graph():
    return (
        TVGBuilder(name="pipe")
        .lifetime(0, 10)
        .edge("a", "b", present={0}, latency=2, key="ab")
        .edge("b", "c", present={2, 5}, latency=1, key="bc")
        .build()
    )


class SendOnceAtStart(Protocol):
    """Origin sends one message over each present edge at the start."""

    buffering = True

    def __init__(self, node, origin="a"):
        self.node = node
        self.origin = origin
        self.simulator = None

    def on_start(self, ctx: NodeContext):
        if self.node == self.origin:
            message = self.simulator.new_message(self.node, "hi", ctx.time)
            ctx.broadcast(message)


class RelayOnReceive(SendOnceAtStart):
    def on_receive(self, ctx: NodeContext, message):
        ctx.broadcast(message)


class TestSimulator:
    def test_latency_respected(self):
        sim = Simulator(two_hop_graph(), lambda n: SendOnceAtStart(n))
        for protocol in sim.protocols.values():
            protocol.simulator = sim
        report = sim.run()
        # ab sent at 0 with latency 2 -> delivered to b at 2.
        assert report.arrival_time(1, "b") == 2
        assert report.transmissions == 1

    def test_relay_chain(self):
        sim = Simulator(two_hop_graph(), lambda n: RelayOnReceive(n))
        for protocol in sim.protocols.values():
            protocol.simulator = sim
        report = sim.run()
        # b receives at 2 and relays immediately (bc present at 2).
        assert report.arrival_time(1, "c") == 3

    def test_deliveries_recorded_in_order(self):
        sim = Simulator(two_hop_graph(), lambda n: RelayOnReceive(n))
        for protocol in sim.protocols.values():
            protocol.simulator = sim
        report = sim.run()
        times = [t for t, _n, _m in report.deliveries]
        assert times == sorted(times)

    def test_send_over_absent_edge_rejected(self):
        class BadSender(Protocol):
            def __init__(self, node):
                self.node = node
                self.simulator = None

            def on_tick(self, ctx, buffered):
                if self.node == "a" and ctx.time == 1:
                    # ab is absent at t=1.
                    edge = ctx.present_edges[0] if ctx.present_edges else None
                    if edge is None:
                        graph_edge = sim.graph.edge("ab")
                        ctx.send(graph_edge, sim.new_message("a", "x", 1))

        sim = Simulator(two_hop_graph(), BadSender)
        for protocol in sim.protocols.values():
            protocol.simulator = sim
        with pytest.raises(SimulationError):
            sim.run()

    def test_bufferless_protocol_cannot_store(self):
        class Hoarder(Protocol):
            buffering = False

            def __init__(self, node):
                self.node = node
                self.simulator = None

            def on_tick(self, ctx, buffered):
                if ctx.time == 0 and self.node == "a":
                    ctx.store(sim.new_message("a", "x", 0))

        sim = Simulator(two_hop_graph(), Hoarder)
        for protocol in sim.protocols.values():
            protocol.simulator = sim
        with pytest.raises(SimulationError):
            sim.run()

    def test_arrival_past_horizon_dropped(self):
        g = (
            TVGBuilder()
            .lifetime(0, 3)
            .edge("a", "b", present={2}, latency=5, key="ab")
            .build()
        )

        class SendLate(Protocol):
            def __init__(self, node):
                self.node = node
                self.simulator = None

            def on_tick(self, ctx, buffered):
                if self.node == "a" and ctx.time == 2:
                    ctx.broadcast(sim.new_message("a", "x", 2))

        sim = Simulator(g, SendLate)
        for protocol in sim.protocols.values():
            protocol.simulator = sim
        report = sim.run()
        assert report.dropped_after_horizon == 1
        assert not report.deliveries

    def test_window_validation(self):
        with pytest.raises(SimulationError):
            Simulator(two_hop_graph(), SendOnceAtStart, start=5, end=2)

    def test_unbounded_graph_needs_end(self):
        g = TVGBuilder().edge("a", "b").build()
        with pytest.raises(SimulationError):
            Simulator(g, SendOnceAtStart)

    def test_determinism(self):
        def run_once():
            sim = Simulator(two_hop_graph(), lambda n: RelayOnReceive(n))
            for protocol in sim.protocols.values():
                protocol.simulator = sim
            report = sim.run()
            return [(t, n, m.uid) for t, n, m in report.deliveries]

        assert run_once() == run_once()
