"""Tests for flooding broadcast and the theory bridge."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.generators import bernoulli_tvg, edge_markovian_tvg
from repro.dynamics.protocols.broadcast import (
    reachability_prediction,
    simulate_broadcast,
)


@pytest.fixture()
def relay_chain():
    """a-b contact early, b-c contact late: buffering required at b."""
    return (
        TVGBuilder(name="chain")
        .lifetime(0, 10)
        .contact("a", "b", present={1}, key="ab")
        .contact("b", "c", present={6}, key="bc")
        .build()
    )


class TestStoreCarryForward:
    def test_buffered_reaches_everyone(self, relay_chain):
        outcome = simulate_broadcast(relay_chain, "a", buffering=True)
        assert outcome.informed == {"b", "c"}
        assert outcome.delivery_ratio == 1.0
        assert outcome.completion_time == 7

    def test_bufferless_stalls(self, relay_chain):
        outcome = simulate_broadcast(relay_chain, "a", buffering=False)
        # The origin's only transmission window is t=1... but the flood
        # starts at t=0 when no edge is present, so nothing ever leaves.
        assert outcome.informed == set()

    def test_arrival_times(self, relay_chain):
        outcome = simulate_broadcast(relay_chain, "a", buffering=True)
        assert outcome.arrival_times == {"b": 2, "c": 7}

    def test_origin_not_counted_informed(self, relay_chain):
        outcome = simulate_broadcast(relay_chain, "a", buffering=True)
        assert "a" not in outcome.informed

    def test_completion_none_when_partial(self, relay_chain):
        outcome = simulate_broadcast(relay_chain, "a", buffering=False)
        assert outcome.completion_time is None


class TestTheoryBridge:
    @pytest.mark.parametrize("buffering", [False, True])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reachability_on_markovian(self, seed, buffering):
        g = edge_markovian_tvg(8, horizon=25, birth=0.08, death=0.5, seed=seed)
        outcome = simulate_broadcast(g, 0, buffering)
        predicted = reachability_prediction(g, 0, buffering, 0, 25)
        assert set(outcome.informed) == predicted

    @pytest.mark.parametrize("buffering", [False, True])
    def test_matches_reachability_on_bernoulli(self, buffering):
        g = bernoulli_tvg(7, horizon=20, density=0.06, seed=3)
        outcome = simulate_broadcast(g, 0, buffering)
        predicted = reachability_prediction(g, 0, buffering, 0, 20)
        assert set(outcome.informed) == predicted

    def test_buffering_dominates(self):
        for seed in range(4):
            g = edge_markovian_tvg(8, horizon=25, birth=0.08, death=0.5, seed=seed)
            with_buffer = simulate_broadcast(g, 0, True)
            without = simulate_broadcast(g, 0, False)
            assert set(without.informed) <= set(with_buffer.informed)


class TestBufferlessImmediateRelay:
    def test_same_instant_relay_works(self):
        """A bufferless node can still relay if the next edge is present
        at the very instant the message arrives."""
        g = (
            TVGBuilder()
            .lifetime(0, 5)
            .contact("a", "b", present={0}, key="ab")
            .contact("b", "c", present={1}, key="bc")
            .build()
        )
        outcome = simulate_broadcast(g, "a", buffering=False)
        assert outcome.informed == {"b", "c"}
