"""Tests for spray-and-wait routing."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.generators import edge_markovian_tvg
from repro.core.semantics import WAIT
from repro.dynamics.protocols.routing import route_epidemic
from repro.dynamics.protocols.spray_and_wait import spray_and_wait
from repro.errors import SimulationError


@pytest.fixture()
def meeting_graph():
    """src meets relay early; relay meets dst later; src never meets dst."""
    return (
        TVGBuilder(name="meetings")
        .lifetime(0, 20)
        .contact("src", "relay", present={2}, key="sr")
        .contact("relay", "dst", present={8}, key="rd")
        .build()
    )


class TestSprayAndWait:
    def test_two_copies_suffice_via_relay(self, meeting_graph):
        outcome = spray_and_wait(meeting_graph, "src", "dst", copies=2)
        assert outcome.delivered
        assert outcome.delay == 9  # relay meets dst at 8, latency 1

    def test_single_copy_direct_only(self, meeting_graph):
        # With one copy the source may not spray; it never meets dst.
        outcome = spray_and_wait(meeting_graph, "src", "dst", copies=1)
        assert not outcome.delivered

    def test_direct_contact_delivers_with_one_copy(self):
        g = (
            TVGBuilder()
            .lifetime(0, 10)
            .contact("src", "dst", present={4}, key="sd")
            .build()
        )
        outcome = spray_and_wait(g, "src", "dst", copies=1)
        assert outcome.delivered
        assert outcome.delay == 5

    def test_cheaper_than_epidemic(self):
        for seed in range(3):
            g = edge_markovian_tvg(10, horizon=40, birth=0.15, death=0.3, seed=seed)
            spray = spray_and_wait(g, 0, 9, copies=4)
            epidemic = route_epidemic(g, 0, 9)
            if epidemic.delivered:
                assert spray.transmissions <= epidemic.transmissions

    def test_never_slower_than_never(self):
        """Delivered implies a wait journey existed."""
        from repro.core.traversal import can_reach

        for seed in range(3):
            g = edge_markovian_tvg(8, horizon=30, birth=0.1, death=0.4, seed=seed)
            outcome = spray_and_wait(g, 0, 7, copies=4)
            if outcome.delivered:
                assert can_reach(g, 0, 7, 0, WAIT, horizon=30)

    def test_validation(self, meeting_graph):
        with pytest.raises(SimulationError):
            spray_and_wait(meeting_graph, "src", "dst", copies=0)
        with pytest.raises(SimulationError):
            spray_and_wait(meeting_graph, "src", "src", copies=2)
