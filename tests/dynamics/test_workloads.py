"""Tests for the workload registry and the service trace driver."""

import json

import pytest

from repro.analysis.connectivity import classify_connectivity
from repro.dynamics.workloads import (
    all_workloads,
    generate_service_trace,
    make_workload,
    sparse_dtn,
    workload_names,
)
from repro.errors import ReproError
from repro.service.replay import replay_service_trace
from repro.service.service import TVGService


class TestRegistry:
    def test_names_sorted_and_nonempty(self):
        names = workload_names()
        assert names == sorted(names)
        assert len(names) >= 6

    def test_make_by_name(self):
        for name in workload_names():
            workload = make_workload(name, seed=1)
            assert workload.name == name
            assert workload.graph.node_count >= 2
            assert workload.start < workload.end

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            make_workload("quantum-teleporter")

    def test_all_workloads(self):
        workloads = all_workloads(seed=2)
        assert len(workloads) == len(workload_names())

    def test_endpoints_exist(self):
        for workload in all_workloads(seed=0):
            assert workload.graph.has_node(workload.source)
            assert workload.graph.has_node(workload.destination)
            assert workload.source != workload.destination


class TestScenarioShapes:
    @pytest.mark.slow
    def test_sparse_dtn_is_paper_regime_often(self):
        hits = 0
        for seed in range(5):
            w = sparse_dtn(seed)
            report = classify_connectivity(w.graph, w.start, w.end)
            if report.never_snapshot_connected:
                hits += 1
        assert hits >= 3  # sparse settings: snapshots essentially never connect

    def test_night_bus_periodic(self):
        w = make_workload("night-bus")
        assert w.graph.period == 8

    def test_determinism(self):
        a = make_workload("bernoulli-cloud", seed=7)
        b = make_workload("bernoulli-cloud", seed=7)
        from repro.core.snapshots import presence_density

        assert presence_density(a.graph, *a.window) == presence_density(
            b.graph, *b.window
        )


class TestServiceTraces:
    def test_generation_is_deterministic_and_jsonable(self):
        workload = make_workload("flaky-backbone")
        first = generate_service_trace(workload, operations=60, seed=3)
        second = generate_service_trace(workload, operations=60, seed=3)
        assert first == second
        assert len(first) == 60
        assert first == json.loads(json.dumps(first))
        assert generate_service_trace(workload, operations=60, seed=4) != first

    def test_trace_mixes_queries_and_mutations(self):
        workload = make_workload("flaky-backbone")
        trace = generate_service_trace(
            workload, operations=50, mutation_every=5, seed=1
        )
        ops = {entry["op"] for entry in trace}
        mutations = [
            e for e in trace
            if e["op"] in ("add_edge", "remove_edge", "set_presence")
        ]
        assert len(mutations) == 10  # every 5th of 50
        assert {"reach", "arrival"} <= ops

    def test_mutation_every_zero_means_queries_only(self):
        workload = make_workload("flaky-backbone")
        trace = generate_service_trace(
            workload, operations=30, mutation_every=0, seed=0
        )
        assert all(
            e["op"] in ("reach", "arrival", "growth", "classify") for e in trace
        )

    def test_replay_twice_yields_identical_answer_streams(self):
        """The determinism guard for the benchmark: a recorded workload
        replayed against two fresh services answers identically."""
        trace = generate_service_trace(
            make_workload("flaky-backbone"), operations=60, seed=9
        )
        streams = [
            replay_service_trace(
                TVGService(make_workload("flaky-backbone").graph), trace
            )
            for _ in range(2)
        ]
        assert streams[0] == streams[1]
        assert len(streams[0]) == 60
        assert all(response["ok"] for response in streams[0])

    def test_replay_actually_mutates_the_service(self):
        workload = make_workload("night-bus")
        service = TVGService(workload.graph)
        version = service.graph.version
        trace = generate_service_trace(
            workload, operations=20, mutation_every=2, seed=2
        )
        responses = replay_service_trace(service, trace)
        assert service.graph.version > version
        assert service.mutations_applied == 10
        assert all(response["ok"] for response in responses)

    def test_removals_only_name_keys_the_trace_added(self):
        workload = make_workload("flaky-backbone")
        initial_keys = {e.key for e in workload.graph.edges}
        trace = generate_service_trace(
            workload, operations=200, mutation_every=2, seed=11
        )
        added, touched = set(), []
        for entry in trace:
            if entry["op"] == "add_edge":
                added.add(entry["key"])
            elif entry["op"] in ("remove_edge", "set_presence"):
                touched.append(entry["key"])
        assert touched, "a long trace should remove or reschedule something"
        assert all(key in added for key in touched)
        assert not any(key in initial_keys for key in added)
