"""Tests for the workload registry."""

import pytest

from repro.analysis.connectivity import classify_connectivity
from repro.dynamics.workloads import (
    all_workloads,
    make_workload,
    sparse_dtn,
    workload_names,
)
from repro.errors import ReproError


class TestRegistry:
    def test_names_sorted_and_nonempty(self):
        names = workload_names()
        assert names == sorted(names)
        assert len(names) >= 6

    def test_make_by_name(self):
        for name in workload_names():
            workload = make_workload(name, seed=1)
            assert workload.name == name
            assert workload.graph.node_count >= 2
            assert workload.start < workload.end

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            make_workload("quantum-teleporter")

    def test_all_workloads(self):
        workloads = all_workloads(seed=2)
        assert len(workloads) == len(workload_names())

    def test_endpoints_exist(self):
        for workload in all_workloads(seed=0):
            assert workload.graph.has_node(workload.source)
            assert workload.graph.has_node(workload.destination)
            assert workload.source != workload.destination


class TestScenarioShapes:
    @pytest.mark.slow
    def test_sparse_dtn_is_paper_regime_often(self):
        hits = 0
        for seed in range(5):
            w = sparse_dtn(seed)
            report = classify_connectivity(w.graph, w.start, w.end)
            if report.never_snapshot_connected:
                hits += 1
        assert hits >= 3  # sparse settings: snapshots essentially never connect

    def test_night_bus_periodic(self):
        w = make_workload("night-bus")
        assert w.graph.period == 8

    def test_determinism(self):
        a = make_workload("bernoulli-cloud", seed=7)
        b = make_workload("bernoulli-cloud", seed=7)
        from repro.core.snapshots import presence_density

        assert presence_density(a.graph, *a.window) == presence_density(
            b.graph, *b.window
        )
