"""Tests for temporal routing."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.generators import edge_markovian_tvg
from repro.core.semantics import NO_WAIT, WAIT
from repro.dynamics.protocols.routing import route_direct, route_epidemic


@pytest.fixture()
def chain():
    return (
        TVGBuilder(name="chain")
        .lifetime(0, 12)
        .contact("a", "b", present={1}, key="ab")
        .contact("b", "c", present={6}, key="bc")
        .build()
    )


class TestRouteDirect:
    def test_wait_route_found(self, chain):
        outcome = route_direct(chain, "a", "c", 0, WAIT)
        assert outcome.delivered
        assert outcome.delay == 7
        assert outcome.hops == 2

    def test_nowait_route_missing(self, chain):
        outcome = route_direct(chain, "a", "c", 0, NO_WAIT)
        assert not outcome.delivered
        assert outcome.delay is None
        assert outcome.transmissions == 0

    def test_transmission_cost_is_path_length(self, chain):
        outcome = route_direct(chain, "a", "c", 0, WAIT)
        assert outcome.transmissions == outcome.hops == 2


class TestRouteEpidemic:
    def test_delivers_when_wait_route_exists(self, chain):
        outcome = route_epidemic(chain, "a", "c")
        assert outcome.delivered
        assert outcome.delay == 7
        assert outcome.hops == 2

    def test_cost_exceeds_source_routing(self):
        g = edge_markovian_tvg(8, horizon=30, birth=0.2, death=0.3, seed=2)
        epidemic = route_epidemic(g, 0, 7)
        direct = route_direct(g, 0, 7, 0, WAIT, horizon=30)
        if direct.delivered:
            assert epidemic.delivered
            assert epidemic.transmissions >= direct.transmissions

    def test_delay_matches_foremost(self):
        for seed in range(3):
            g = edge_markovian_tvg(6, horizon=25, birth=0.15, death=0.4, seed=seed)
            epidemic = route_epidemic(g, 0, 5)
            direct = route_direct(g, 0, 5, 0, WAIT, horizon=25)
            assert epidemic.delivered == direct.delivered
            if direct.delivered:
                assert epidemic.delay == direct.delay

    def test_ttl_zero_blocks_relay(self, chain):
        outcome = route_epidemic(chain, "a", "c", ttl=1)
        # One hop of TTL lets a->b happen but b cannot relay further.
        assert not outcome.delivered
