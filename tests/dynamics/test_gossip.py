"""Tests for token gossip."""

from repro.core.builders import TVGBuilder
from repro.dynamics.protocols.gossip import run_gossip


def rotor():
    """One contact live per instant, repeating — mixes fully over time."""
    return (
        TVGBuilder(name="rotor")
        .lifetime(0, 12)
        .contact("a", "b", period=(0, 3), key="ab")
        .contact("b", "c", period=(1, 3), key="bc")
        .contact("c", "a", period=(2, 3), key="ca")
        .build()
    )


class TestGossip:
    def test_full_mixing_on_rotor(self):
        report = run_gossip(rotor())
        assert report.fully_mixed
        assert all(count == 3 for count in report.final_counts.values())

    def test_counts_monotone(self):
        report = run_gossip(rotor())
        previous = None
        for _time, counts in report.counts_over_time:
            total = sum(counts)
            if previous is not None:
                assert total >= previous
            previous = total

    def test_no_contacts_no_mixing(self):
        g = TVGBuilder().lifetime(0, 5).node("a").node("b").build()
        report = run_gossip(g)
        assert not report.fully_mixed
        assert all(count == 1 for count in report.final_counts.values())

    def test_sampling_interval(self):
        report = run_gossip(rotor(), sample_every=4)
        assert len(report.counts_over_time) == 3  # 12 rounds / 4

    def test_partition_respected(self):
        g = (
            TVGBuilder()
            .lifetime(0, 8)
            .contact("a", "b", period=(0, 2))
            .contact("x", "y", period=(1, 2))
            .build()
        )
        report = run_gossip(g)
        assert report.final_counts["a"] == 2
        assert report.final_counts["x"] == 2
        assert not report.fully_mixed
