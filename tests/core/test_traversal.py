"""Tests for journey search."""

import pytest

from repro.core.builders import TVGBuilder, static_graph
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.traversal import (
    can_reach,
    earliest_arrivals,
    edge_departures,
    enumerate_journeys,
    foremost_journey,
    reachable_nodes,
    reachable_states,
    successors,
)
from repro.errors import TimeDomainError


@pytest.fixture()
def staggered():
    """a->b present [0,2), b->c present [5,7): connected only by waiting."""
    return (
        TVGBuilder(name="staggered")
        .lifetime(0, 10)
        .edge("a", "b", present=[(0, 2)], key="ab")
        .edge("b", "c", present=[(5, 7)], key="bc")
        .build()
    )


class TestEdgeDepartures:
    def test_nowait_only_ready_instant(self, staggered):
        edge = staggered.edge("ab")
        assert list(edge_departures(edge, 0, NO_WAIT, 10)) == [0]
        assert list(edge_departures(edge, 2, NO_WAIT, 10)) == []

    def test_wait_all_support(self, staggered):
        edge = staggered.edge("bc")
        assert list(edge_departures(edge, 0, WAIT, 10)) == [5, 6]
        assert list(edge_departures(edge, 6, WAIT, 10)) == [6]

    def test_bounded_wait_window(self, staggered):
        edge = staggered.edge("bc")
        assert list(edge_departures(edge, 1, bounded_wait(3), 10)) == []
        assert list(edge_departures(edge, 1, bounded_wait(4), 10)) == [5]
        assert list(edge_departures(edge, 1, bounded_wait(5), 10)) == [5, 6]

    def test_horizon_caps(self, staggered):
        edge = staggered.edge("bc")
        assert list(edge_departures(edge, 0, WAIT, 6)) == [5]
        assert list(edge_departures(edge, 9, WAIT, 6)) == []


class TestSuccessors:
    def test_nowait(self, staggered):
        moves = list(successors(staggered, "a", 0, NO_WAIT))
        assert [(e.key, dep, arr) for e, dep, arr in moves] == [("ab", 0, 1)]

    def test_wait(self, staggered):
        moves = list(successors(staggered, "b", 0, WAIT))
        assert [(dep, arr) for _e, dep, arr in moves] == [(5, 6), (6, 7)]

    def test_horizon_required_on_unbounded_graph(self):
        g = static_graph([("a", "b")])
        with pytest.raises(TimeDomainError):
            list(successors(g, "a", 0, NO_WAIT))
        assert list(successors(g, "a", 0, NO_WAIT, horizon=5))


class TestReachability:
    def test_wait_bridges_the_gap(self, staggered):
        assert reachable_nodes(staggered, "a", 0, WAIT) == {"a", "b", "c"}
        assert reachable_nodes(staggered, "a", 0, NO_WAIT) == {"a", "b"}

    def test_bounded_wait_threshold(self, staggered):
        # Best plan: pause 1 at a (depart ab at 1, arrive 2), then pause 3
        # until bc opens at 5 — so d = 3 suffices and d = 2 does not.
        assert reachable_nodes(staggered, "a", 0, bounded_wait(2)) == {"a", "b"}
        assert reachable_nodes(staggered, "a", 0, bounded_wait(3)) == {"a", "b", "c"}

    def test_can_reach(self, staggered):
        assert can_reach(staggered, "a", "c", 0, WAIT)
        assert not can_reach(staggered, "a", "c", 0, NO_WAIT)

    def test_start_time_matters(self, staggered):
        assert not can_reach(staggered, "a", "b", 2, WAIT)  # ab closed at 2

    def test_reachable_states_contains_sources(self, staggered):
        states = reachable_states(staggered, [("a", 0)], NO_WAIT)
        assert ("a", 0) in states
        assert ("b", 1) in states

    def test_max_hops_limits(self, staggered):
        states = reachable_states(staggered, [("a", 0)], WAIT, max_hops=1)
        assert all(node != "c" for node, _t in states)


class TestEarliestArrivals:
    def test_foremost_times(self, staggered):
        arrivals = earliest_arrivals(staggered, "a", 0, WAIT)
        assert arrivals["a"] == 0
        assert arrivals["b"] == 1
        assert arrivals["c"] == 6

    def test_nowait_unreachable_missing(self, staggered):
        arrivals = earliest_arrivals(staggered, "a", 0, NO_WAIT)
        assert "c" not in arrivals

    def test_earliest_is_minimal(self):
        g = (
            TVGBuilder()
            .lifetime(0, 10)
            .edge("a", "b", present={0}, latency=5, key="slow")
            .edge("a", "b", present={2}, latency=1, key="fast")
            .build()
        )
        assert earliest_arrivals(g, "a", 0, WAIT)["b"] == 3


class TestForemostJourney:
    def test_witness_matches_arrival(self, staggered):
        journey = foremost_journey(staggered, "a", "c", 0, WAIT)
        assert journey is not None
        assert journey.arrival == 6
        assert journey.nodes() == ("a", "b", "c")
        assert journey.feasible_under(WAIT)

    def test_none_when_unreachable(self, staggered):
        assert foremost_journey(staggered, "a", "c", 0, NO_WAIT) is None

    def test_direct_when_nowait(self):
        g = static_graph([("a", "b"), ("b", "c")])
        journey = foremost_journey(g, "a", "c", 0, NO_WAIT, horizon=10)
        assert journey is not None and journey.is_direct


class TestEnumerateJourneys:
    def test_counts_and_words(self, staggered):
        journeys = list(enumerate_journeys(staggered, "a", 0, WAIT, max_hops=2))
        # a->b at t=0 or 1; then b->c at 5 or 6: 2 one-hop + 4 two-hop.
        assert len(journeys) == 6
        assert {j.destination for j in journeys} == {"b", "c"}

    def test_nowait_enumeration(self, staggered):
        # Without waiting the only departure is the ready instant t = 0.
        journeys = list(enumerate_journeys(staggered, "a", 0, NO_WAIT, max_hops=3))
        assert [j.destination for j in journeys] == ["b"]
        assert journeys[0].is_direct

    def test_targets_filter(self, staggered):
        journeys = list(
            enumerate_journeys(staggered, "a", 0, WAIT, max_hops=2, targets=["c"])
        )
        assert len(journeys) == 4
        assert all(j.destination == "c" for j in journeys)

    def test_max_hops_zero_edges(self, staggered):
        assert not list(enumerate_journeys(staggered, "a", 0, WAIT, max_hops=0))

    def test_journeys_are_valid(self, staggered):
        for journey in enumerate_journeys(staggered, "a", 0, WAIT, max_hops=2):
            assert journey.feasible_under(WAIT)
