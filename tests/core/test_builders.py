"""Tests for the TVG builder and shorthand coercions."""

import pytest

from repro.core.builders import (
    TVGBuilder,
    coerce_latency,
    coerce_presence,
    from_contact_table,
    static_graph,
)
from repro.core.latency import constant_latency
from repro.core.presence import always
from repro.core.time_domain import Lifetime
from repro.errors import ReproError


class TestCoercePresence:
    def test_none_is_always(self):
        assert coerce_presence(None)(12345)

    def test_passthrough(self):
        p = always()
        assert coerce_presence(p) is p

    def test_set_of_times(self):
        p = coerce_presence({1, 4})
        assert p(1) and p(4) and not p(2)

    def test_interval_pairs(self):
        p = coerce_presence([(0, 2), (5, 6)])
        assert p(1) and p(5) and not p(3)

    def test_callable(self):
        p = coerce_presence(lambda t: t == 7)
        assert p(7) and not p(6)

    def test_period_shorthand(self):
        p = coerce_presence(None, period=(1, 3))
        assert p(1) and p(4) and not p(0)


class TestCoerceLatency:
    def test_none_is_unit(self):
        assert coerce_latency(None)(0) == 1

    def test_int(self):
        assert coerce_latency(4)(0) == 4

    def test_passthrough(self):
        lat = constant_latency(2)
        assert coerce_latency(lat) is lat

    def test_callable(self):
        assert coerce_latency(lambda t: t + 2)(3) == 5

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            coerce_latency("soon")


class TestTVGBuilder:
    def test_full_build(self):
        g = (
            TVGBuilder(name="demo")
            .lifetime(0, 20)
            .node("lonely")
            .edge("a", "b", label="x", present=[(0, 5)], latency=2, key="ab")
            .contact("b", "c", present={3}, key="bc")
            .build()
        )
        assert g.name == "demo"
        assert g.lifetime == Lifetime(0, 20)
        assert "lonely" in g.nodes
        assert g.edge("ab").latency(0) == 2
        assert g.edge("bc").present_at(3)
        assert g.edge("bc~rev").source == "c"

    def test_periodic_declaration(self):
        g = TVGBuilder().periodic(6).edge("a", "b", period=(2, 6)).build()
        assert g.period == 6
        assert g.edges[0].present_at(2) and g.edges[0].present_at(8)

    def test_chaining_returns_builder(self):
        builder = TVGBuilder()
        assert builder.node("a") is builder
        assert builder.edge("a", "b") is builder


class TestConvenienceConstructors:
    def test_from_contact_table(self):
        g = from_contact_table(
            {("a", "b"): [(0, 3)], ("b", "c"): [(4, 6)]},
            lifetime=Lifetime(0, 10),
        )
        assert g.edge_count == 4  # two contacts, both directions
        keys = {e.key for e in g.out_edges("b")}
        assert len(keys) == 2

    def test_static_graph(self):
        g = static_graph([("a", "b"), ("b", "c")])
        assert g.period == 1
        for edge in g.edges:
            assert edge.present_at(0) and edge.present_at(99)
            assert edge.latency(0) == 1
