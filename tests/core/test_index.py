"""Tests for the compiled contact-sequence index and the temporal engine."""

import numpy as np
import pytest

from repro.core.engine import TemporalEngine
from repro.core.index import CompiledTVG, is_structured
from repro.core.intervals import Interval
from repro.core.latency import function_latency
from repro.core.presence import (
    always,
    at_times,
    function_presence,
    interval_presence,
    never,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.traversal import (
    earliest_arrivals,
    foremost_journey,
    reachable_states,
    successors,
)
from repro.core.tvg import TimeVaryingGraph


def build_graph():
    g = TimeVaryingGraph(lifetime=Lifetime(0, 12), name="mixed")
    g.add_edge("a", "b", presence=periodic_presence([0, 1], 4), key="ab")
    g.add_edge("b", "c", presence=interval_presence([(3, 5), (8, 10)]), key="bc")
    g.add_edge("c", "d", presence=always(), key="cd")
    g.add_edge("d", "a", presence=never(), key="da")
    g.add_edge(
        "a", "d", presence=function_presence(lambda t: t % 5 == 2, "mod5"), key="ad"
    )
    g.add_edge("b", "d", presence=periodic_presence([1], 3).shifted(1), key="bd")
    return g


class TestLowering:
    def test_structured_detection(self):
        assert is_structured(always())
        assert is_structured(never())
        assert is_structured(at_times([1, 5]))
        assert is_structured(periodic_presence([0], 3))
        assert is_structured(periodic_presence([0], 3).shifted(2))
        assert is_structured(periodic_presence([0], 3).dilated(2))
        assert is_structured(at_times([1]) | periodic_presence([0], 2))
        assert not is_structured(function_presence(lambda t: True))
        assert not is_structured(at_times([1]) | function_presence(lambda t: True))

    def test_contacts_match_presence_truth(self):
        g = build_graph()
        index = CompiledTVG(g, Interval(0, 12))
        for i, edge in enumerate(index.edge_list):
            truth = [t for t in range(12) if edge.present_at(t)]
            if index.contacts[i] is None:
                continue  # black-box edges are checked via queries below
            assert index.contacts[i].tolist() == truth, edge.key

    def test_blackbox_edge_not_compiled(self):
        g = build_graph()
        index = CompiledTVG(g, Interval(0, 12))
        by_key = {e.key: i for i, e in enumerate(index.edge_list)}
        assert index.contacts[by_key["ad"]] is None
        assert index.compiled_edge_count == len(index.edge_list) - 1
        # fallback queries still answer exactly
        assert index.next_present(by_key["ad"], 0, 12) == 2
        assert index.departures(by_key["ad"], 0, 12) == [2, 7]
        assert index.present_at(by_key["ad"], 7)
        assert not index.present_at(by_key["ad"], 3)

    def test_kernel_queries(self):
        g = build_graph()
        index = CompiledTVG(g, Interval(0, 12))
        by_key = {e.key: i for i, e in enumerate(index.edge_list)}
        ab = by_key["ab"]
        assert index.next_present(ab, 0, 12) == 0
        assert index.next_present(ab, 2, 12) == 4
        assert index.next_present(ab, 10, 12) is None
        assert index.departures(ab, 0, 6) == [0, 1, 4, 5]
        assert index.departures(ab, 6, 6) == []
        assert index.present_at(ab, 5) and not index.present_at(ab, 2)

    def test_csr_adjacency_matches_graph(self):
        g = build_graph()
        index = CompiledTVG(g, Interval(0, 12))
        assert index.out_ptr[0] == 0 and index.out_ptr[-1] == len(index.edge_list)
        for node in g.nodes:
            j = index.node_index[node]
            keys = [
                index.edge_list[ei].key
                for ei in index.out_edge_idx[index.out_ptr[j] : index.out_ptr[j + 1]]
            ]
            assert keys == [e.key for e in g.out_edges(node)]
            assert list(index.out_edge_indices(j)) == list(
                index.out_edge_idx[index.out_ptr[j] : index.out_ptr[j + 1]]
            )

    def test_varying_latency_not_constant_folded(self):
        g = TimeVaryingGraph(lifetime=Lifetime(0, 8))
        g.add_edge("a", "b", latency=function_latency(lambda t: t + 1), key="ab")
        index = CompiledTVG(g, Interval(0, 8))
        assert int(index.const_latency[0]) == -1
        assert index.arrival(0, 3) == 7


class TestInvalidation:
    def test_stale_flag(self):
        g = build_graph()
        index = CompiledTVG(g, Interval(0, 12))
        assert not index.stale
        g.add_edge("d", "b", key="db")
        assert index.stale

    def test_engine_recompiles_on_mutation(self):
        g = build_graph()
        engine = TemporalEngine(g)
        before = reachable_states(g, [("a", 0)], WAIT, engine=engine)
        g.add_edge("d", "e", key="de")  # 'e' only reachable after the mutation
        after = reachable_states(g, [("a", 0)], WAIT, engine=engine)
        legacy = reachable_states(g, [("a", 0)], WAIT)
        assert after == legacy
        assert "e" in {node for node, _t in after}
        assert before != after

    def test_engine_recompiles_on_edge_removal(self):
        g = build_graph()
        engine = TemporalEngine(g)
        reachable_states(g, [("a", 0)], WAIT, engine=engine)
        g.remove_edge("ab")
        assert reachable_states(g, [("a", 0)], WAIT, engine=engine) == reachable_states(
            g, [("a", 0)], WAIT
        )

    def test_window_grows_on_demand(self):
        g = TimeVaryingGraph()  # unbounded lifetime
        g.add_edge("a", "b", presence=periodic_presence([0], 7), key="ab")
        engine = TemporalEngine(g)
        first = earliest_arrivals(g, "a", 0, WAIT, horizon=5, engine=engine)
        assert first == {"a": 0, "b": 1}
        wide = earliest_arrivals(g, "a", 2, WAIT, horizon=20, engine=engine)
        assert wide == {"a": 2, "b": 8}
        assert engine.compiled.covers(0, 20)


class TestEngineAgainstOracle:
    @pytest.mark.parametrize("semantics", [NO_WAIT, WAIT, bounded_wait(2)])
    def test_mixed_graph_agreement(self, semantics):
        g = build_graph()
        engine = TemporalEngine(g)
        for source in g.nodes:
            assert reachable_states(
                g, [(source, 0)], semantics, engine=engine
            ) == reachable_states(g, [(source, 0)], semantics)
            assert earliest_arrivals(
                g, source, 0, semantics, engine=engine
            ) == earliest_arrivals(g, source, 0, semantics)

    def test_successors_order_matches(self):
        g = build_graph()
        engine = TemporalEngine(g)
        for source in g.nodes:
            for ready in range(4):
                compiled = list(successors(g, source, ready, WAIT, engine=engine))
                interpretive = list(successors(g, source, ready, WAIT))
                assert compiled == interpretive

    def test_foremost_journey_identical(self):
        g = build_graph()
        engine = TemporalEngine(g)
        for semantics in (NO_WAIT, WAIT, bounded_wait(1)):
            via_engine = foremost_journey(g, "a", "d", 0, semantics, engine=engine)
            legacy = foremost_journey(g, "a", "d", 0, semantics)
            if legacy is None:
                assert via_engine is None
            else:
                assert via_engine.hops == legacy.hops

    def test_engine_rejects_foreign_graph(self):
        from repro.errors import TimeDomainError

        g, other = build_graph(), build_graph()
        engine = TemporalEngine(other)
        with pytest.raises(TimeDomainError):
            reachable_states(g, [("a", 0)], WAIT, engine=engine)
        with pytest.raises(TimeDomainError):
            list(successors(g, "a", 0, WAIT, engine=engine))

    def test_reachability_matrix_rejects_foreign_engine(self):
        from repro.analysis.reachability import reachability_matrix
        from repro.errors import ReproError

        g, other = build_graph(), build_graph()
        with pytest.raises(ReproError):
            reachability_matrix(g, 0, WAIT, engine=TemporalEngine(other))


class TestSimulatorFastPath:
    def test_out_edges_at_matches_graph(self):
        g = build_graph()
        engine = TemporalEngine(g)
        for node in g.nodes:
            for t in range(12):
                assert engine.out_edges_at(node, t) == list(g.out_edges_at(node, t))

    def test_broadcast_identical_with_engine(self):
        from repro.core.generators import edge_markovian_tvg
        from repro.dynamics.protocols.broadcast import simulate_broadcast

        g = edge_markovian_tvg(10, horizon=30, birth=0.1, death=0.4, seed=5)
        for buffering in (False, True):
            plain = simulate_broadcast(g, 0, buffering)
            fast = simulate_broadcast(g, 0, buffering, engine=TemporalEngine(g))
            assert plain == fast

    def test_simulator_rejects_foreign_engine(self):
        from repro.dynamics.network import Simulator
        from repro.dynamics.nodes import Protocol
        from repro.errors import SimulationError

        g, other = build_graph(), build_graph()
        with pytest.raises(SimulationError):
            Simulator(g, lambda node: Protocol(), engine=TemporalEngine(other))


class TestArrivalMatrix:
    @pytest.mark.parametrize("semantics", [NO_WAIT, WAIT, bounded_wait(2)])
    def test_rows_match_single_source_searches(self, semantics):
        from repro.core.engine import UNREACHED

        g = build_graph()
        engine = TemporalEngine(g)
        nodes, matrix = engine.arrival_matrix(0, semantics)
        for i, source in enumerate(nodes):
            oracle = earliest_arrivals(g, source, 0, semantics)
            row = {
                nodes[j]: int(matrix[i, j])
                for j in range(len(nodes))
                if matrix[i, j] != UNREACHED
            }
            assert row == oracle, (source, semantics)

    def test_diagonal_is_start_time(self):
        g = build_graph()
        nodes, matrix = TemporalEngine(g).arrival_matrix(3, WAIT)
        for i in range(len(nodes)):
            assert matrix[i, i] == 3

    def test_masks_and_matrix_derive_from_arrivals(self):
        import numpy as np

        from repro.core.engine import UNREACHED

        g = build_graph()
        engine = TemporalEngine(g)
        nodes, arrival = engine.arrival_matrix(0, WAIT)
        _same, masks = engine.reachability_masks(0, WAIT)
        _also, boolean = engine.reachability_matrix(0, WAIT)
        assert np.array_equal(boolean, arrival != UNREACHED)
        for j in range(len(nodes)):
            expected = 0
            for i in range(len(nodes)):
                if arrival[i, j] != UNREACHED:
                    expected |= 1 << i
            assert masks[j] == expected

    def test_arrivals_past_horizon_are_kept(self):
        # b->c departs at 3 (the last date < horizon) with unit latency:
        # the arrival at 4 == horizon is still recorded, matching the
        # interpretive convention (departures bounded, arrivals not).
        from repro.core.engine import UNREACHED

        g = build_graph()
        nodes, matrix = TemporalEngine(g).arrival_matrix(0, WAIT, horizon=4)
        idx = {node: k for k, node in enumerate(nodes)}
        oracle = earliest_arrivals(g, "a", 0, WAIT, horizon=4)
        assert oracle["c"] == 4  # lands exactly on the horizon
        row = {
            n: int(matrix[idx["a"], idx[n]])
            for n in nodes
            if matrix[idx["a"], idx[n]] != UNREACHED
        }
        assert row == oracle
        # d's only out-edge never fires: the whole row is unreachable.
        assert all(
            int(matrix[idx["d"], idx[n]]) == UNREACHED for n in "abc"
        )


class TestGeometricWindowRegrowth:
    """Regression for the exact-fit regrowth bug: per-date lookups on an
    unbounded-lifetime graph used to recompile the whole index every
    round (O(rounds x compile)).  Growth is geometric now, so a rolling
    query sequence costs O(log rounds) rebuilds."""

    ROUNDS = 100

    def _counting_engine(self, monkeypatch, graph):
        import repro.core.engine as engine_module

        builds: list[Interval] = []
        real = engine_module.CompiledTVG

        def counting(tvg, window, cache=None):
            builds.append(window)
            return real(tvg, window, cache)

        monkeypatch.setattr(engine_module, "CompiledTVG", counting)
        return TemporalEngine(graph), builds

    def _unbounded_graph(self):
        g = TimeVaryingGraph(name="unbounded")
        g.add_edge("a", "b", presence=periodic_presence([0], 2), key="ab")
        g.add_edge("b", "a", presence=periodic_presence([1], 2), key="ba")
        return g

    def test_rolling_lookups_rebuild_logarithmically(self, monkeypatch):
        """The simulator's per-round fast path: out_edges_at over an
        ever-advancing date must not recompile per round."""
        g = self._unbounded_graph()
        engine, builds = self._counting_engine(monkeypatch, g)
        for t in range(self.ROUNDS):
            engine.out_edges_at("a", t)
        # Exact-fit regrowth would build ~ROUNDS indexes; geometric
        # doubling needs at most log2(ROUNDS) + a seed build.
        assert len(builds) <= self.ROUNDS.bit_length() + 2
        # And the answers stay right: presence is residue-0 periodic.
        assert engine.out_edges_at("a", self.ROUNDS) == [g.edge("ab")]
        assert engine.out_edges_at("a", self.ROUNDS + 1) == []

    def test_descending_lookups_rebuild_logarithmically(self, monkeypatch):
        """Leftward growth must be geometric too: a replay walking
        *backwards* through time would otherwise regrow exact-fit once
        per date (the ascending bug, mirrored)."""
        g = self._unbounded_graph()
        engine, builds = self._counting_engine(monkeypatch, g)
        for t in range(self.ROUNDS, 0, -1):
            engine.out_edges_at("a", t)
        assert len(builds) <= self.ROUNDS.bit_length() + 2
        assert engine.out_edges_at("a", 2) == [g.edge("ab")]
        assert engine.out_edges_at("a", 3) == []

    def test_simulator_run_rebuild_count(self, monkeypatch):
        """A full 100-round Simulator run through the engine compiles
        O(log rounds) indexes (the warm-up covers the window up front)."""
        from repro.dynamics.network import Simulator
        from repro.dynamics.nodes import Protocol

        g = self._unbounded_graph()
        engine, builds = self._counting_engine(monkeypatch, g)
        report = Simulator(
            g, lambda node: Protocol(), start=0, end=self.ROUNDS, engine=engine
        ).run()
        assert report.end == self.ROUNDS
        assert len(builds) <= self.ROUNDS.bit_length() + 2

    def test_growth_rebuilds_preserve_contacts(self, monkeypatch):
        """Geometric growth must not change what the index answers."""
        g = self._unbounded_graph()
        engine, _builds = self._counting_engine(monkeypatch, g)
        for t in range(0, 50, 7):
            assert engine.successors("a", t, WAIT, horizon=t + 10) == list(
                successors(g, "a", t, WAIT, horizon=t + 10)
            )

    def test_staleness_rebuild_keeps_the_window(self, monkeypatch):
        """Mutation-triggered rebuilds must NOT inflate the window —
        doubling belongs to growth only, else a mutating service would
        balloon its compiled span."""
        g = self._unbounded_graph()
        engine, builds = self._counting_engine(monkeypatch, g)
        engine.index_for(0, 16)
        for round_ in range(5):
            g.add_edge("a", "b", key=f"extra{round_}")
            engine.index_for(0, 16)
        spans = [(w.start, w.end) for w in builds]
        assert spans == [(0, 16)] * 6
