"""Tests for the graph's mutation-delta log.

Every mutator must record one :class:`MutationDelta` per version bump
(versions stay consecutive), ``deltas_since`` must hand back a complete
chain or admit defeat with None — never a silently truncated one — and
the recorded endpoints must survive edge removal, because the
incremental sweep needs the tail of every dirty edge after the edge
itself is gone.
"""

import pytest

from repro.core.engine import TemporalEngine
from repro.core.presence import interval_presence, periodic_presence
from repro.core.semantics import WAIT
from repro.core.tvg import DELTA_HISTORY, MutationDelta, TimeVaryingGraph


def small_graph():
    g = TimeVaryingGraph()
    g.add_nodes("abc")
    g.add_edge("a", "b", presence=interval_presence([(0, 4)]), key="ab")
    g.add_edge("b", "c", presence=periodic_presence([1], 3), key="bc")
    return g


class TestRecording:
    def test_every_mutator_records_its_kind(self):
        g = TimeVaryingGraph()
        v = g.version
        g.add_node("a")
        g.add_node("b")
        g.add_edge("a", "b", key="ab")
        g.set_presence("ab", interval_presence([(1, 3)]))
        g.remove_edge("ab")
        kinds = [d.kind for d in g.deltas_since(v)]
        assert kinds == [
            "add_node", "add_node", "add_edge", "set_presence", "remove_edge"
        ]

    def test_versions_are_consecutive_and_match_the_graph(self):
        g = small_graph()
        v = 0
        deltas = g.deltas_since(v)
        assert [d.version for d in deltas] == list(range(1, g.version + 1))

    def test_add_edge_with_new_endpoints_records_node_deltas_too(self):
        g = small_graph()
        v = g.version
        g.add_edge("c", "z", key="cz")  # z is new
        kinds = [d.kind for d in g.deltas_since(v)]
        assert kinds == ["add_node", "add_edge"]

    def test_removed_edge_keeps_its_endpoints(self):
        g = small_graph()
        v = g.version
        g.remove_edge("ab")
        (delta,) = g.deltas_since(v)
        assert delta == MutationDelta(g.version, "remove_edge", "ab", "a", "b")

    def test_set_presence_records_endpoints(self):
        g = small_graph()
        v = g.version
        g.set_presence("bc", interval_presence([(0, 2)]))
        (delta,) = g.deltas_since(v)
        assert (delta.kind, delta.edge_key) == ("set_presence", "bc")
        assert (delta.source, delta.target) == ("b", "c")


class TestDeltasSince:
    def test_current_version_yields_empty_chain(self):
        g = small_graph()
        assert g.deltas_since(g.version) == ()

    def test_future_version_is_unknowable(self):
        g = small_graph()
        assert g.deltas_since(g.version + 1) is None

    def test_chain_is_everything_after_the_snapshot(self):
        g = small_graph()
        v = g.version
        g.set_presence("ab", interval_presence([(1, 2)]))
        g.remove_edge("bc")
        deltas = g.deltas_since(v)
        assert [d.kind for d in deltas] == ["set_presence", "remove_edge"]
        # An older snapshot sees a longer suffix of the same log.
        assert g.deltas_since(v - 1)[1:] == deltas

    def test_truncated_history_is_unknowable_not_partial(self):
        g = TimeVaryingGraph()
        g.add_edge("a", "b", key="ab")
        v = g.version
        for i in range(DELTA_HISTORY + 5):
            g.set_presence("ab", interval_presence([(i % 7, i % 7 + 1)]))
        assert g.deltas_since(v) is None  # the deque dropped the head
        # A recent-enough snapshot still gets a complete chain.
        recent = g.version - 3
        assert len(g.deltas_since(recent)) == 3

    def test_oldest_retained_delta_is_still_reachable(self):
        g = TimeVaryingGraph()
        g.add_edge("a", "b", key="ab")
        for i in range(DELTA_HISTORY + 5):
            g.set_presence("ab", interval_presence([(i % 7, i % 7 + 1)]))
        # The snapshot exactly one before the oldest retained delta is
        # the earliest answerable one.
        oldest = g.version - DELTA_HISTORY
        assert len(g.deltas_since(oldest)) == DELTA_HISTORY
        assert g.deltas_since(oldest - 1) is None


class TestIndexPatching:
    def test_presence_only_chain_patches_in_place(self):
        g = small_graph()
        engine = TemporalEngine(g)
        engine.arrival_matrix(0, WAIT, 8)
        index = engine.compiled
        g.set_presence("ab", interval_presence([(2, 5)]))
        assert index.stale
        engine.arrival_matrix(0, WAIT, 8)
        assert engine.compiled is index, "presence swap should patch, not rebuild"
        assert not index.stale

    def test_patched_contacts_match_a_fresh_compile(self):
        g = small_graph()
        engine = TemporalEngine(g)
        engine.arrival_matrix(0, WAIT, 8)
        g.set_presence("ab", periodic_presence([0, 2], 4))
        g.set_presence("bc", interval_presence([(1, 6)]))
        _nodes, patched = engine.arrival_matrix(0, WAIT, 8)
        fresh = TemporalEngine(g)
        _nodes2, scratch = fresh.arrival_matrix(0, WAIT, 8)
        assert (patched == scratch).all()

    def test_structural_chain_forces_rebuild(self):
        g = small_graph()
        engine = TemporalEngine(g)
        engine.arrival_matrix(0, WAIT, 8)
        index = engine.compiled
        g.add_edge("c", "a", key="ca")
        engine.arrival_matrix(0, WAIT, 8)
        assert engine.compiled is not index, "add_edge cannot be patched"

    def test_apply_deltas_rejects_unknowable_chain(self):
        g = small_graph()
        engine = TemporalEngine(g)
        engine.arrival_matrix(0, WAIT, 8)
        assert engine.compiled.apply_deltas(None) is False

    @pytest.mark.parametrize("kind_mutation", [
        lambda g: g.add_edge("c", "a", key="ca"),
        lambda g: g.remove_edge("ab"),
        lambda g: g.add_node("z"),
    ])
    def test_apply_deltas_rejects_structural_kinds(self, kind_mutation):
        g = small_graph()
        engine = TemporalEngine(g)
        engine.arrival_matrix(0, WAIT, 8)
        index = engine.compiled
        v = index.version
        kind_mutation(g)
        assert index.apply_deltas(g.deltas_since(v)) is False
        assert index.stale  # version untouched on rejection
