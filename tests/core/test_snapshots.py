"""Tests for snapshots and footprints."""

from repro.core.builders import TVGBuilder
from repro.core.snapshots import (
    always_disconnected,
    footprint,
    is_connected_at,
    presence_density,
    snapshot,
    snapshots,
)


def rotating_triangle():
    """Exactly one of the three contacts is up at any instant."""
    return (
        TVGBuilder(name="rotor")
        .lifetime(0, 9)
        .contact("a", "b", period=(0, 3), key="ab")
        .contact("b", "c", period=(1, 3), key="bc")
        .contact("c", "a", period=(2, 3), key="ca")
        .build()
    )


class TestSnapshot:
    def test_snapshot_contents(self):
        g = rotating_triangle()
        s0 = snapshot(g, 0)
        assert set(s0.nodes) == {"a", "b", "c"}
        assert s0.number_of_edges() == 2  # the ab contact, both directions
        assert s0.has_edge("a", "b") and s0.has_edge("b", "a")

    def test_snapshot_latency_annotation(self):
        g = TVGBuilder().lifetime(0, 5).edge("a", "b", latency=3, key="e").build()
        s = snapshot(g, 0)
        assert s["a"]["b"]["e"]["latency"] == 3

    def test_isolated_nodes_kept(self):
        g = TVGBuilder().lifetime(0, 5).node("z").edge("a", "b").build()
        assert "z" in snapshot(g, 0).nodes

    def test_snapshots_iterator(self):
        g = rotating_triangle()
        frames = dict(snapshots(g, 0, 3))
        assert frames[0].has_edge("a", "b")
        assert frames[1].has_edge("b", "c")
        assert frames[2].has_edge("c", "a")


class TestFootprint:
    def test_union_over_window(self):
        g = rotating_triangle()
        fp = footprint(g, 0, 9)
        assert fp.number_of_edges() == 6  # all three contacts, both ways

    def test_narrow_window(self):
        g = rotating_triangle()
        fp = footprint(g, 0, 1)
        assert fp.number_of_edges() == 2

    def test_support_annotation(self):
        g = rotating_triangle()
        fp = footprint(g, 0, 9)
        support = fp["a"]["b"]["ab"]["support"]
        assert sorted(support.times()) == [0, 3, 6]


class TestConnectivityOverTime:
    def test_every_snapshot_disconnected(self):
        g = rotating_triangle()
        assert always_disconnected(g, 0, 9)
        assert not is_connected_at(g, 0)

    def test_connected_snapshot_detected(self):
        g = (
            TVGBuilder()
            .lifetime(0, 2)
            .contact("a", "b", present={0})
            .contact("b", "c", present={0})
            .build()
        )
        assert is_connected_at(g, 0)
        assert not always_disconnected(g, 0, 2)

    def test_trivial_graph_connected(self):
        g = TVGBuilder().lifetime(0, 2).node("only").build()
        assert is_connected_at(g, 0)


class TestPresenceDensity:
    def test_rotor_density(self):
        g = rotating_triangle()
        # Each directed edge is up 3 of 9 slots.
        assert presence_density(g, 0, 9) == 3 / 9

    def test_empty_graph(self):
        g = TVGBuilder().lifetime(0, 5).node("a").build()
        assert presence_density(g, 0, 5) == 0.0
