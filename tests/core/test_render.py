"""Tests for ASCII rendering."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.render import (
    render_journey,
    render_journey_over_schedule,
    render_schedule,
)
from repro.core.semantics import WAIT
from repro.core.traversal import foremost_journey
from repro.errors import ReproError


@pytest.fixture()
def small():
    return (
        TVGBuilder(name="small")
        .lifetime(0, 6)
        .edge("a", "b", present={0, 1, 4}, key="ab")
        .edge("b", "c", present={2}, key="bc")
        .build()
    )


class TestRenderSchedule:
    def test_golden(self, small):
        expected = "\n".join(
            [
                "t         012345",
                "ab  a->b  ##..#.",
                "bc  b->c  ..#...",
            ]
        )
        assert render_schedule(small) == expected

    def test_window_override(self, small):
        out = render_schedule(small, start=2, end=5)
        assert out.splitlines()[0].endswith("234")
        assert out.splitlines()[1].endswith("..#")

    def test_labels_shown(self):
        g = TVGBuilder().lifetime(0, 3).edge("a", "b", label="x", key="e").build()
        out = render_schedule(g)
        assert "a->b:x" in out

    def test_periodic_default_window(self):
        g = TVGBuilder().periodic(3).edge("a", "b", period=(1, 3), key="e").build()
        out = render_schedule(g)
        # two periods rendered: dates 0..5
        assert out.splitlines()[1].endswith(".#..#.")

    def test_empty_graph_rejected(self):
        g = TVGBuilder().lifetime(0, 4).node("a").build()
        with pytest.raises(ReproError):
            render_schedule(g)

    def test_unbounded_needs_end(self):
        g = TVGBuilder().edge("a", "b", key="e").build()
        with pytest.raises(ReproError):
            render_schedule(g)
        assert render_schedule(g, end=4)

    def test_empty_window_rejected(self, small):
        with pytest.raises(ReproError):
            render_schedule(small, start=4, end=4)


class TestRenderJourney:
    def test_itinerary_with_pause(self, small):
        journey = foremost_journey(small, "a", "c", 0, WAIT)
        text = render_journey(journey)
        assert text.startswith("'a'@0")
        assert "--ab-->" in text and "--bc-->" in text
        assert "(wait 1)" in text  # arrive b at 1, bc opens at 2

    def test_direct_journey_no_pause_text(self, small):
        journey = foremost_journey(small, "a", "b", 0, WAIT)
        assert "(wait" not in render_journey(journey)


class TestOverlay:
    def test_departures_marked(self, small):
        journey = foremost_journey(small, "a", "c", 0, WAIT)
        out = render_journey_over_schedule(journey, small)
        lines = out.splitlines()
        # ab departure at t=0, bc departure at t=2.
        assert lines[1].endswith("@#..#.")
        assert lines[2].endswith("..@...")
