"""Tests for labeled time-varying edges."""

import pytest

from repro.core.edges import Edge
from repro.core.latency import affine_latency, constant_latency
from repro.core.presence import at_times, periodic_presence
from repro.errors import EdgeNotPresentError


def make_edge(**overrides):
    defaults = dict(
        source="u",
        target="v",
        label="a",
        key="e",
        presence=at_times([0, 2, 4]),
        latency=constant_latency(2),
    )
    defaults.update(overrides)
    return Edge(**defaults)


class TestEdge:
    def test_present_at(self):
        edge = make_edge()
        assert edge.present_at(0) and edge.present_at(4)
        assert not edge.present_at(1)

    def test_traverse(self):
        edge = make_edge()
        assert edge.traverse(0) == 2
        assert edge.traverse(4) == 6

    def test_traverse_absent_raises(self):
        with pytest.raises(EdgeNotPresentError):
            make_edge().traverse(1)

    def test_time_varying_latency(self):
        edge = make_edge(latency=affine_latency(1))  # latency = t
        assert edge.traverse(2) == 4
        assert edge.traverse(4) == 8

    def test_defaults_always_present_unit_latency(self):
        edge = Edge("u", "v")
        assert edge.present_at(123)
        assert edge.traverse(123) == 124
        assert edge.label is None

    def test_shifted(self):
        edge = make_edge().shifted(10)
        assert edge.present_at(10) and edge.present_at(12)
        assert not edge.present_at(0)
        assert edge.traverse(10) == 12

    def test_dilated(self):
        edge = make_edge().dilated(3)
        assert edge.present_at(0) and edge.present_at(6) and edge.present_at(12)
        assert not edge.present_at(2) and not edge.present_at(4)
        assert edge.traverse(6) == 6 + 3 * 2

    def test_relabeled(self):
        edge = make_edge().relabeled("z")
        assert edge.label == "z"
        assert edge.source == "u"

    def test_reversed(self):
        edge = make_edge().reversed()
        assert edge.source == "v" and edge.target == "u"
        assert edge.key == "e~rev"
        assert edge.present_at(0)

    def test_reversed_custom_key(self):
        assert make_edge().reversed(key="back").key == "back"

    def test_frozen(self):
        edge = make_edge()
        with pytest.raises(AttributeError):
            edge.label = "q"

    def test_periodic_edge_traversal(self):
        edge = make_edge(presence=periodic_presence([1], 3), latency=constant_latency(1))
        assert edge.traverse(4) == 5
        with pytest.raises(EdgeNotPresentError):
            edge.traverse(3)
