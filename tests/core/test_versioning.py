"""Audit of the version counter across every mutating method.

``TimeVaryingGraph.version`` is the single invalidation signal for
every derived structure — the compiled index, the engine's
:class:`~repro.core.index.LazyContactCache`, and the service's
:class:`~repro.service.cache.QueryCache` all key on it.  A mutator that
forgets to bump it silently serves stale answers from all three, so
this suite pins the exact bump count of each mutation, checks that
failed mutations and read-only calls never bump, and freezes the public
method surface so a newly added mutator cannot dodge the audit.
"""

import inspect

import pytest

from repro.core.presence import never, periodic_presence
from repro.core.tvg import TimeVaryingGraph
from repro.devtools import discover_mutators
from repro.errors import ReproError


@pytest.fixture()
def graph():
    g = TimeVaryingGraph(name="audited")
    g.add_nodes(["a", "b", "c"])
    g.add_edge("a", "b", key="ab")
    g.add_edge("b", "c", key="bc")
    return g


class TestEachMutatorBumpsExactlyOnce:
    """One structural change (endpoints pre-existing) = one bump."""

    def test_add_node_new(self, graph):
        before = graph.version
        graph.add_node("d")
        assert graph.version == before + 1

    def test_add_node_idempotent_is_not_a_mutation(self, graph):
        before = graph.version
        graph.add_node("a")
        assert graph.version == before

    def test_add_nodes_bumps_once_per_new_node(self, graph):
        before = graph.version
        graph.add_nodes(["a", "d", "e"])  # one existing, two new
        assert graph.version == before + 2

    def test_add_edge_between_existing_nodes(self, graph):
        before = graph.version
        graph.add_edge("a", "c", key="ac")
        assert graph.version == before + 1

    def test_add_edge_object(self, graph):
        before = graph.version
        graph.add_edge_object(graph.edge("ab").reversed())
        assert graph.version == before + 1

    def test_add_contact_is_two_edges_two_bumps(self, graph):
        before = graph.version
        graph.add_contact("a", "c", key="contact")
        assert graph.version == before + 2

    def test_remove_edge(self, graph):
        before = graph.version
        graph.remove_edge("ab")
        assert graph.version == before + 1

    def test_set_presence(self, graph):
        before = graph.version
        graph.set_presence("ab", periodic_presence([0], 2))
        assert graph.version == before + 1

    def test_set_presence_bumps_once_not_twice(self, graph):
        """The in-place swap must be cheaper to invalidate than the
        remove + re-add it replaces (which costs two bumps)."""
        twin = graph.copy()
        v_swap, v_readd = graph.version, twin.version
        graph.set_presence("ab", never())
        edge = twin.remove_edge("ab")
        twin.add_edge_object(edge.with_presence(never()))
        assert graph.version - v_swap == 1
        assert twin.version - v_readd == 2

    def test_set_presence_preserves_everything_but_the_schedule(self, graph):
        old = graph.edge("ab")
        new = graph.set_presence("ab", never())
        assert graph.edge("ab") is new
        assert (new.source, new.target, new.key, new.label) == (
            old.source, old.target, old.key, old.label,
        )
        assert new.latency is old.latency
        assert not new.present_at(0)
        assert graph.out_edges("a")[0] is new
        assert graph.in_edges("b")[0] is new

    def test_version_is_monotone_over_a_mixed_history(self, graph):
        seen = [graph.version]
        graph.add_node("z")
        seen.append(graph.version)
        graph.add_edge("z", "a", key="za")
        seen.append(graph.version)
        graph.set_presence("za", periodic_presence([1], 3))
        seen.append(graph.version)
        graph.remove_edge("za")
        seen.append(graph.version)
        assert seen == sorted(set(seen)), "version must strictly increase"


class TestFailedMutationsDoNotBump:
    def test_duplicate_edge_key(self, graph):
        before = graph.version
        with pytest.raises(ReproError):
            graph.add_edge("a", "c", key="ab")
        assert graph.version == before

    def test_remove_unknown_edge(self, graph):
        before = graph.version
        with pytest.raises(ReproError):
            graph.remove_edge("nope")
        assert graph.version == before

    def test_set_presence_unknown_edge(self, graph):
        before = graph.version
        with pytest.raises(ReproError):
            graph.set_presence("nope", never())
        assert graph.version == before


class TestReadsDoNotBump:
    def test_reads_and_copies_leave_version_alone(self, graph):
        before = graph.version
        graph.nodes, graph.edges, graph.alphabet
        graph.edge("ab"), graph.has_edge("ab"), graph.has_node("a")
        graph.out_edges("a"), graph.in_edges("b"), graph.edges_between("a", "b")
        list(graph.edges_at(0)), list(graph.out_edges_at("a", 0))
        graph.degree_at("a", 0)
        graph.copy()
        repr(graph)
        assert graph.version == before


class TestAuditIsComplete:
    #: Every public method/property of TimeVaryingGraph, partitioned by
    #: whether it may bump the version.  A new method must be added to
    #: one of these sets — and, if mutating, to the bump tests above —
    #: before this audit passes again.
    MUTATORS = {
        "add_node", "add_nodes", "add_edge", "add_edge_object",
        "add_contact", "set_presence", "remove_edge",
    }
    READERS = {
        "version", "nodes", "node_count", "has_node", "edges",
        "edge_count", "edge", "has_edge", "out_edges", "in_edges",
        "edges_between", "edges_at", "out_edges_at", "degree_at",
        "alphabet", "copy", "deltas_since",
    }

    def test_static_rule_and_audit_agree_on_the_mutator_list(self):
        """The static RL002 pass and this audit share one mutator list.

        ``discover_mutators`` re-derives the list from the AST (public
        methods that transitively write ``_nodes``/``_edges``/``_out``/
        ``_in``), so a newly added mutator fails here until it is
        audited above — and a method the audit lists as a mutator must
        actually write state, or the linter's view has drifted.
        """
        source = inspect.getsource(TimeVaryingGraph)
        assert discover_mutators(source) == self.MUTATORS, (
            "static mutator discovery and the audit list disagree: "
            "update MUTATORS (with a bump test) or fix the rule"
        )
        public = {
            name
            for name in dir(TimeVaryingGraph)
            if not name.startswith("_")
        }
        assert public - self.MUTATORS == self.READERS, (
            "every public non-mutating method must be listed in READERS"
        )
