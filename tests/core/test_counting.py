"""Tests for journey counting."""

import pytest

from repro.automata.language_compute import count_words
from repro.core.builders import TVGBuilder, static_graph
from repro.core.counting import count_journeys, count_journeys_by_hops
from repro.core.semantics import NO_WAIT, WAIT
from repro.core.traversal import enumerate_journeys


@pytest.fixture()
def branching():
    """Two parallel a->b edges and one b->c edge, all with choices."""
    return (
        TVGBuilder()
        .lifetime(0, 8)
        .edge("a", "b", present={0, 1}, key="ab1")
        .edge("a", "b", present={1}, key="ab2")
        .edge("b", "c", present={3, 4}, key="bc")
        .build()
    )


class TestCountJourneys:
    def test_matches_enumeration(self, branching):
        for semantics in (NO_WAIT, WAIT):
            counts = count_journeys(branching, "a", 0, semantics, max_hops=3)
            journeys = list(
                enumerate_journeys(branching, "a", 0, semantics, max_hops=3)
            )
            by_destination: dict = {}
            for journey in journeys:
                by_destination[journey.destination] = (
                    by_destination.get(journey.destination, 0) + 1
                )
            assert counts == by_destination, semantics

    def test_wait_counts_departure_choices(self, branching):
        counts = count_journeys(branching, "a", 0, WAIT, max_hops=1)
        # ab1 at 0 or 1, ab2 at 1: three distinct one-hop journeys.
        assert counts == {"b": 3}

    def test_nowait_single_departure(self, branching):
        counts = count_journeys(branching, "a", 0, NO_WAIT, max_hops=2)
        assert counts == {"b": 1}  # only ab1@0; bc unreachable directly

    def test_static_graph_growth(self):
        g = static_graph([("a", "a")])  # self-loop, always present
        counts = count_journeys_by_hops(g, "a", 0, NO_WAIT, horizon=10, max_hops=4)
        assert counts == [1, 1, 1, 1, 1]

    def test_by_hops_sums_to_total(self, branching):
        per_hop = count_journeys_by_hops(branching, "a", 0, WAIT, max_hops=3)
        totals = count_journeys(branching, "a", 0, WAIT, max_hops=3)
        assert sum(per_hop[1:]) == sum(totals.values())


class TestCountWords:
    def test_word_counts_deduplicate_journeys(self):
        g = (
            TVGBuilder()
            .lifetime(0, 6)
            .edge("a", "b", label="x", present={0, 1}, key="e1")
            .edge("a", "b", label="x", present={2}, key="e2")
            .build()
        )
        counts = count_words(g, "a", 0, {"b"}, WAIT, max_length=2)
        # Three journeys but a single word 'x'.
        assert counts == [0, 1, 0]

    def test_counts_match_language(self):
        from repro.constructions.figure1 import figure1_automaton

        fig1 = figure1_automaton()
        counts = count_words(
            fig1.graph, "v0", 1, {"v2"}, NO_WAIT, max_length=6
        )
        assert counts == [0, 0, 1, 0, 1, 0, 1]  # ab, aabb, aaabbb
