"""Tests for journeys."""

import pytest

from repro.core.edges import Edge
from repro.core.journeys import Hop, Journey
from repro.core.latency import constant_latency
from repro.core.presence import always, at_times
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import InvalidJourneyError


def edge(source, target, label=None, times=None, latency=1, key=""):
    return Edge(
        source=source,
        target=target,
        label=label,
        key=key or f"{source}->{target}",
        presence=always() if times is None else at_times(times),
        latency=constant_latency(latency),
    )


AB = edge("a", "b", label="x", times=[0, 5])
BC = edge("b", "c", label="y", times=[1, 8])


class TestHop:
    def test_arrival(self):
        assert Hop(AB, 0).arrival == 1
        assert Hop(edge("a", "b", latency=4), 3).arrival == 7


class TestJourneyValidation:
    def test_single_hop(self):
        j = Journey([Hop(AB, 0)])
        assert j.source == "a" and j.destination == "b"
        assert j.departure == 0 and j.arrival == 1

    def test_empty_rejected(self):
        with pytest.raises(InvalidJourneyError):
            Journey([])

    def test_absent_edge_rejected(self):
        with pytest.raises(InvalidJourneyError):
            Journey([Hop(AB, 3)])  # AB present only at 0 and 5

    def test_disconnected_hops_rejected(self):
        other = edge("x", "y")
        with pytest.raises(InvalidJourneyError):
            Journey([Hop(AB, 0), Hop(other, 1)])

    def test_time_travel_rejected(self):
        # AB at 5 arrives at 6; BC at 1 would depart before that.
        with pytest.raises(InvalidJourneyError):
            Journey([Hop(AB, 5), Hop(BC, 1)])


class TestJourneyProperties:
    def test_direct_journey(self):
        j = Journey([Hop(AB, 0), Hop(BC, 1)])
        assert j.is_direct and not j.is_indirect
        assert j.pauses == (0,)
        assert j.max_pause == 0
        assert j.total_waiting == 0

    def test_indirect_journey(self):
        j = Journey([Hop(AB, 0), Hop(BC, 8)])
        assert j.is_indirect
        assert j.pauses == (7,)
        assert j.max_pause == 7
        assert j.total_waiting == 7

    def test_feasibility_under_semantics(self):
        direct = Journey([Hop(AB, 0), Hop(BC, 1)])
        indirect = Journey([Hop(AB, 0), Hop(BC, 8)])
        assert direct.feasible_under(NO_WAIT)
        assert direct.feasible_under(WAIT)
        assert not indirect.feasible_under(NO_WAIT)
        assert indirect.feasible_under(WAIT)
        assert indirect.feasible_under(bounded_wait(7))
        assert not indirect.feasible_under(bounded_wait(6))

    def test_word(self):
        j = Journey([Hop(AB, 0), Hop(BC, 1)])
        assert j.word == ("x", "y")
        assert j.word_str == "xy"

    def test_word_skips_unlabeled(self):
        silent = edge("b", "c", label=None, times=[1])
        j = Journey([Hop(AB, 0), Hop(silent, 1)])
        assert j.word_str == "x"

    def test_nodes_and_len(self):
        j = Journey([Hop(AB, 0), Hop(BC, 1)])
        assert j.nodes() == ("a", "b", "c")
        assert len(j) == 2

    def test_duration(self):
        j = Journey([Hop(AB, 5), Hop(BC, 8)])
        assert j.duration == 9 - 5


class TestJourneyComposition:
    def test_extend(self):
        j = Journey([Hop(AB, 0)]).extend(BC, 1)
        assert len(j) == 2
        assert j.word_str == "xy"

    def test_extend_invalid(self):
        with pytest.raises(InvalidJourneyError):
            Journey([Hop(AB, 5)]).extend(BC, 1)

    def test_prefix(self):
        j = Journey([Hop(AB, 0), Hop(BC, 1)])
        assert j.prefix(1) == Journey([Hop(AB, 0)])

    def test_prefix_bounds(self):
        j = Journey([Hop(AB, 0)])
        with pytest.raises(InvalidJourneyError):
            j.prefix(0)
        with pytest.raises(InvalidJourneyError):
            j.prefix(2)

    def test_concatenate(self):
        first = Journey([Hop(AB, 0)])
        second = Journey([Hop(BC, 8)])
        joined = Journey.concatenate(first, second)
        assert joined.word_str == "xy"
        assert joined.pauses == (7,)

    def test_equality_and_hash(self):
        a = Journey([Hop(AB, 0), Hop(BC, 1)])
        b = Journey([Hop(AB, 0), Hop(BC, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != Journey([Hop(AB, 0), Hop(BC, 8)])
