"""Tests for presence functions."""

import pytest

from repro.core.intervals import Interval
from repro.core.presence import (
    always,
    at_times,
    function_presence,
    interval_presence,
    never,
    periodic_presence,
)
from repro.errors import TimeDomainError


class TestAlwaysNever:
    def test_always(self):
        p = always()
        assert p(0) and p(10**9)
        assert p.next_present(5) == 5
        assert p.next_present(5, limit=5) is None
        assert list(p.support(Interval(3, 6)).times()) == [3, 4, 5]

    def test_never(self):
        p = never()
        assert not p(0)
        assert p.next_present(0) is None
        assert not p.support(Interval(0, 100))


class TestIntervalPresence:
    def test_call(self):
        p = interval_presence([(0, 2), (5, 7)])
        assert p(0) and p(1) and p(5)
        assert not p(2) and not p(4) and not p(7)

    def test_next_present(self):
        p = interval_presence([(2, 4), (9, 10)])
        assert p.next_present(0) == 2
        assert p.next_present(4) == 9
        assert p.next_present(4, limit=9) is None
        assert p.next_present(10) is None

    def test_support(self):
        p = interval_presence([(0, 3), (8, 12)])
        assert list(p.support(Interval(2, 10)).times()) == [2, 8, 9]

    def test_at_times(self):
        p = at_times([1, 4, 5])
        assert p(1) and p(4) and p(5)
        assert not p(2)


class TestPeriodicPresence:
    def test_call(self):
        p = periodic_presence([0, 2], 5)
        for t in (0, 2, 5, 7, 10, 102):
            assert p(t), t
        for t in (1, 3, 4, 6, 101):
            assert not p(t), t

    def test_residues_normalized(self):
        p = periodic_presence([7], 5)  # 7 % 5 == 2
        assert p(2) and p(7) and p(12)

    def test_next_present_same_period(self):
        p = periodic_presence([1, 3], 4)
        assert p.next_present(0) == 1
        assert p.next_present(1) == 1
        assert p.next_present(2) == 3
        assert p.next_present(4) == 5

    def test_next_present_wraps(self):
        p = periodic_presence([1], 4)
        assert p.next_present(2) == 5
        assert p.next_present(6) == 9

    def test_next_present_respects_limit(self):
        p = periodic_presence([1], 4)
        assert p.next_present(2, limit=5) is None
        assert p.next_present(2, limit=6) == 5

    def test_empty_pattern(self):
        p = periodic_presence([], 4)
        assert not p(0)
        assert p.next_present(0) is None

    def test_support(self):
        p = periodic_presence([0, 3], 4)
        assert list(p.support(Interval(0, 10)).times()) == [0, 3, 4, 7, 8]

    def test_support_offset_window(self):
        p = periodic_presence([2], 5)
        assert list(p.support(Interval(3, 13)).times()) == [7, 12]

    def test_rejects_bad_period(self):
        with pytest.raises(TimeDomainError):
            periodic_presence([0], 0)


class TestFunctionPresence:
    def test_call(self):
        p = function_presence(lambda t: t % 3 == 0)
        assert p(0) and p(9)
        assert not p(1)

    def test_next_present_requires_limit(self):
        p = function_presence(lambda t: t == 100)
        with pytest.raises(TimeDomainError):
            p.next_present(0)
        assert p.next_present(0, limit=200) == 100
        assert p.next_present(0, limit=50) is None

    def test_support_scans(self):
        p = function_presence(lambda t: t in (2, 5))
        assert list(p.support(Interval(0, 10)).times()) == [2, 5]


class TestCombinators:
    def test_shifted(self):
        p = at_times([3, 6]).shifted(10)
        assert p(13) and p(16)
        assert not p(3)
        assert p.next_present(0) == 13
        assert list(p.support(Interval(0, 20)).times()) == [13, 16]

    def test_shifted_negative(self):
        p = at_times([10]).shifted(-4)
        assert p(6)

    def test_dilated_membership(self):
        p = at_times([1, 2]).dilated(3)
        assert p(3) and p(6)
        assert not p(1) and not p(2) and not p(4) and not p(5)

    def test_dilated_next_present(self):
        p = at_times([1, 4]).dilated(3)
        assert p.next_present(0) == 3
        assert p.next_present(4) == 12
        assert p.next_present(4, limit=12) is None

    def test_dilated_support(self):
        p = at_times([0, 1, 4]).dilated(2)
        assert list(p.support(Interval(0, 9)).times()) == [0, 2, 8]

    def test_dilated_rejects_nonpositive(self):
        with pytest.raises(TimeDomainError):
            always().dilated(0)

    def test_union(self):
        p = at_times([1]) | at_times([3])
        assert p(1) and p(3) and not p(2)
        assert list(p.support(Interval(0, 5)).times()) == [1, 3]

    def test_intersect(self):
        p = periodic_presence([0], 2) & periodic_presence([0], 3)
        assert p(0) and p(6) and not p(2) and not p(3)
        assert list(p.support(Interval(0, 13)).times()) == [0, 6, 12]
