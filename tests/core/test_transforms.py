"""Tests for TVG transforms."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.semantics import NO_WAIT, WAIT
from repro.core.time_domain import Lifetime
from repro.core.transforms import (
    dilate,
    disjoint_union,
    relabel,
    reverse,
    shift,
    subgraph,
)
from repro.core.traversal import reachable_nodes
from repro.errors import ReproError, TimeDomainError


@pytest.fixture()
def base():
    return (
        TVGBuilder(name="base")
        .lifetime(0, 10)
        .edge("a", "b", label="x", present={0, 4}, latency=2, key="ab")
        .edge("b", "c", label="y", present={2}, key="bc")
        .build()
    )


class TestDilate:
    def test_schedule_scaled(self, base):
        big = dilate(base, 3)
        ab = big.edge("ab")
        assert ab.present_at(0) and ab.present_at(12)
        assert not ab.present_at(4)
        assert ab.traverse(0) == 6  # latency 2 scaled by 3

    def test_lifetime_and_period_scaled(self):
        g = TVGBuilder().lifetime(1, 5).periodic(4).edge("a", "b").build()
        big = dilate(g, 2)
        assert big.lifetime == Lifetime(2, 10)
        assert big.period == 8

    def test_direct_journeys_preserved(self, base):
        # a -> b -> c direct at times 0,2 maps to 0,6 after dilation by 3.
        assert reachable_nodes(base, "a", 0, NO_WAIT) == {"a", "b", "c"}
        big = dilate(base, 3)
        assert reachable_nodes(big, "a", 0, NO_WAIT) == {"a", "b", "c"}

    def test_rejects_nonpositive(self, base):
        with pytest.raises(TimeDomainError):
            dilate(base, 0)


class TestShift:
    def test_schedule_translated(self, base):
        late = shift(base, 5)
        assert late.edge("ab").present_at(5)
        assert not late.edge("ab").present_at(0)
        assert late.lifetime == Lifetime(5, 15)

    def test_reachability_translates(self, base):
        late = shift(base, 5)
        assert reachable_nodes(late, "a", 5, NO_WAIT) == {"a", "b", "c"}


class TestRelabel:
    def test_mapping(self, base):
        new = relabel(base, {"x": "p", "y": "q"})
        assert new.alphabet == {"p", "q"}
        assert new.edge("ab").label == "p"

    def test_mapping_must_cover(self, base):
        with pytest.raises(ReproError):
            relabel(base, {"x": "p"})

    def test_callable(self, base):
        new = relabel(base, str.upper)
        assert new.alphabet == {"X", "Y"}

    def test_schedule_untouched(self, base):
        new = relabel(base, {"x": "p", "y": "q"})
        assert new.edge("ab").present_at(4)


class TestSubgraph:
    def test_induced(self, base):
        sub = subgraph(base, ["a", "b"])
        assert set(sub.nodes) == {"a", "b"}
        assert sub.edge_count == 1

    def test_unknown_nodes(self, base):
        with pytest.raises(ReproError):
            subgraph(base, ["a", "zz"])


class TestReverse:
    def test_edges_flipped(self, base):
        rev = reverse(base)
        assert rev.edge("ab").source == "b"
        assert reachable_nodes(rev, "c", 2, NO_WAIT) == {"c", "b"}


class TestDisjointUnion:
    def test_nodes_prefixed(self, base):
        both = disjoint_union(base, base)
        assert both.node_count == 6
        assert both.edge_count == 4
        assert "0:a" in both.nodes and "1:a" in both.nodes

    def test_no_cross_reachability(self, base):
        both = disjoint_union(base, base)
        reached = reachable_nodes(both, "0:a", 0, WAIT, horizon=10)
        assert all(node.startswith("0:") for node in reached)

    def test_period_kept_only_when_equal(self):
        g1 = TVGBuilder().periodic(4).edge("a", "b").build()
        g2 = TVGBuilder().periodic(4).edge("a", "b").build()
        g3 = TVGBuilder().periodic(6).edge("a", "b").build()
        assert disjoint_union(g1, g2).period == 4
        assert disjoint_union(g1, g3).period is None
