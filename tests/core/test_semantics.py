"""Tests for waiting semantics."""

import pytest

from repro.core.semantics import (
    BOUNDED_WAIT,
    NO_WAIT,
    WAIT,
    bounded_wait,
    parse_semantics,
)
from repro.errors import SemanticsError


class TestWaitingSemantics:
    def test_no_wait(self):
        assert NO_WAIT.is_no_wait
        assert not NO_WAIT.unbounded
        assert NO_WAIT.allows_pause(0)
        assert not NO_WAIT.allows_pause(1)

    def test_wait(self):
        assert WAIT.unbounded
        assert not WAIT.is_no_wait
        assert WAIT.allows_pause(0)
        assert WAIT.allows_pause(10**9)

    def test_bounded(self):
        d3 = bounded_wait(3)
        assert not d3.unbounded and not d3.is_no_wait
        assert d3.allows_pause(0) and d3.allows_pause(3)
        assert not d3.allows_pause(4)

    def test_bounded_zero_is_no_wait(self):
        assert bounded_wait(0) == NO_WAIT
        assert bounded_wait(0).is_no_wait

    def test_negative_pause_never_allowed(self):
        for semantics in (NO_WAIT, WAIT, bounded_wait(5)):
            assert not semantics.allows_pause(-1)

    def test_negative_bound_rejected(self):
        with pytest.raises(SemanticsError):
            bounded_wait(-1)

    def test_latest_departure(self):
        assert WAIT.latest_departure(ready=5, horizon=100) == 100
        assert NO_WAIT.latest_departure(ready=5, horizon=100) == 6
        assert bounded_wait(3).latest_departure(ready=5, horizon=100) == 9
        assert bounded_wait(3).latest_departure(ready=98, horizon=100) == 100

    def test_str(self):
        assert str(NO_WAIT) == "nowait"
        assert str(WAIT) == "wait"
        assert str(bounded_wait(4)) == "wait[4]"

    def test_alias(self):
        assert BOUNDED_WAIT(2) == bounded_wait(2)

    def test_equality_and_hashability(self):
        assert bounded_wait(2) == bounded_wait(2)
        assert len({NO_WAIT, WAIT, bounded_wait(1), bounded_wait(1)}) == 3


class TestParseSemantics:
    """The ONE shared semantics grammar (CLI and wire both wrap it)."""

    @pytest.mark.parametrize(
        "semantics", [NO_WAIT, WAIT, bounded_wait(0), bounded_wait(7)]
    )
    def test_str_round_trips(self, semantics):
        assert parse_semantics(str(semantics)) == semantics

    def test_named_forms(self):
        assert parse_semantics("wait") == WAIT
        assert parse_semantics("nowait") == NO_WAIT
        assert parse_semantics("wait[3]") == bounded_wait(3)

    @pytest.mark.parametrize(
        "text",
        ["wait[-1]", "wait[]", "wait[x]", "wait[", "wait]", "maybe", "WAIT", ""],
    )
    def test_malformed_rejected_with_semantics_error(self, text):
        with pytest.raises(SemanticsError):
            parse_semantics(text)

    def test_non_string_rejected(self):
        with pytest.raises(SemanticsError):
            parse_semantics(3)
