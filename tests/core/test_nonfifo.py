"""Edge-case tests: time-varying (non-FIFO) latencies.

The paper allows latency to vary with time, which permits *overtaking*:
departing later can arrive earlier.  These tests pin down that the core
search stays exact in that regime (it examines every departure, not
just the first), and that the documented FIFO assumption of the
simulator bridge is real.
"""

from repro.core.builders import TVGBuilder
from repro.core.latency import function_latency
from repro.core.metrics import fastest_journey
from repro.core.semantics import WAIT
from repro.core.traversal import earliest_arrivals, foremost_journey


def overtaking_graph():
    """One edge whose latency collapses at t=5: dep 0 -> arr 10, dep 5 -> arr 6."""
    return (
        TVGBuilder(name="overtake")
        .lifetime(0, 12)
        .edge(
            "a",
            "b",
            present={0, 5},
            latency=function_latency(lambda t: 10 if t == 0 else 1),
            key="ab",
        )
        .build()
    )


class TestOvertaking:
    def test_foremost_uses_later_departure(self):
        g = overtaking_graph()
        arrivals = earliest_arrivals(g, "a", 0, WAIT)
        assert arrivals["b"] == 6  # NOT 10: the t=5 departure overtakes

    def test_foremost_journey_witness(self):
        g = overtaking_graph()
        journey = foremost_journey(g, "a", "b", 0, WAIT)
        assert journey is not None
        assert journey.hops[0].start == 5
        assert journey.arrival == 6

    def test_fastest_prefers_quick_departure(self):
        g = overtaking_graph()
        journey = fastest_journey(g, "a", "b", 0, 8, WAIT)
        assert journey is not None
        assert journey.duration == 1

    def test_chained_overtaking(self):
        g = (
            TVGBuilder()
            .lifetime(0, 30)
            .edge(
                "a",
                "b",
                present={0, 4},
                latency=function_latency(lambda t: 20 if t == 0 else 2),
                key="ab",
            )
            .edge("b", "c", present={7}, key="bc")
            .build()
        )
        arrivals = earliest_arrivals(g, "a", 0, WAIT)
        # Via dep@4: arrive b at 6, take bc at 7, arrive 8.  The dep@0
        # copy arrives b at 20 — after bc closed; only overtaking works.
        assert arrivals["c"] == 8

    def test_extraction_handles_time_varying_latency(self):
        """The finite-lifetime extractor evaluates latency per date."""
        from repro.automata.enumeration import language_upto
        from repro.automata.language_compute import wait_language_automaton
        from repro.automata.tvg_automaton import TVGAutomaton

        g = (
            TVGBuilder()
            .lifetime(0, 12)
            .edge(
                "a",
                "b",
                label="x",
                present={0, 5},
                latency=function_latency(lambda t: 10 if t == 0 else 1),
                key="ab",
            )
            .edge("b", "c", label="y", present={7}, key="bc")
            .build()
        )
        auto = TVGAutomaton(g, initial="a", accepting="c", start_time=0)
        extracted = language_upto(wait_language_automaton(auto), 2)
        sampled = auto.language(2, WAIT)
        assert extracted == sampled == {"xy"}
