"""Tests for the lazy black-box lowering cache.

The :class:`LazyContactCache` must (a) answer exactly what the predicate
would, (b) grow its scanned windows incrementally — re-calling the
predicate only on never-seen dates, (c) drop exactly the edges whose
schedule a mutation actually changed (and nothing else), and (d)
guarantee at most one predicate call per (edge, date) across arbitrary
repeated analysis queries through one engine.
"""

import pytest

from repro.analysis.classes import classify
from repro.analysis.evolution import reachability_growth, value_of_waiting
from repro.analysis.reachability import reachability_matrix, semantics_gap_matrix
from repro.analysis.spanners import foremost_broadcast_tree
from repro.core.engine import TemporalEngine
from repro.core.index import LazyContactCache
from repro.core.presence import function_presence, periodic_presence
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.traversal import earliest_arrivals, reachable_states
from repro.core.tvg import TimeVaryingGraph


class CountingPredicate:
    """A black-box schedule that records every date it is asked about."""

    def __init__(self, period=3, residue=1):
        self.period = period
        self.residue = residue
        self.calls: list[int] = []

    def __call__(self, t: int) -> bool:
        self.calls.append(t)
        return t % self.period == self.residue

    def max_calls_per_date(self) -> int:
        return max(self.calls.count(t) for t in set(self.calls)) if self.calls else 0


def blackbox_graph(predicate, horizon=12, second=None):
    """Two black-box edges (each with its OWN predicate — the memoization
    guarantee is per (edge, date)) plus one structured edge."""
    g = TimeVaryingGraph(lifetime=Lifetime(0, horizon), name="blackbox")
    g.add_edge("a", "b", presence=function_presence(predicate, "counted"), key="ab")
    g.add_edge("b", "c", presence=periodic_presence([0, 2], 4), key="bc")
    g.add_edge(
        "c",
        "a",
        presence=function_presence(second or CountingPredicate(4, 2), "counted2"),
        key="ca",
    )
    return g


class TestCacheQueries:
    def test_contacts_match_predicate_truth(self):
        predicate = CountingPredicate()
        g = blackbox_graph(predicate)
        cache = LazyContactCache(g)
        edge = g.edge("ab")
        assert cache.contacts(edge, 0, 12).tolist() == [1, 4, 7, 10]
        assert cache.contacts(edge, 3, 8).tolist() == [4, 7]
        assert cache.contacts(edge, 5, 5).tolist() == []

    def test_repeat_query_calls_predicate_once(self):
        predicate = CountingPredicate()
        g = blackbox_graph(predicate)
        cache = LazyContactCache(g)
        edge = g.edge("ab")
        cache.contacts(edge, 0, 12)
        calls = len(predicate.calls)
        for _ in range(5):
            cache.contacts(edge, 0, 12)
            cache.contacts(edge, 2, 9)
        assert len(predicate.calls) == calls  # not one extra call

    def test_window_growth_scans_only_new_dates(self):
        predicate = CountingPredicate()
        g = blackbox_graph(predicate, horizon=40)
        cache = LazyContactCache(g)
        edge = g.edge("ab")
        cache.contacts(edge, 10, 20)
        assert cache.scanned_window(edge) == (10, 20)
        assert sorted(predicate.calls) == list(range(10, 20))
        predicate.calls.clear()
        # Growing right: only [20, 30) is scanned.
        assert cache.contacts(edge, 15, 30).tolist() == [16, 19, 22, 25, 28]
        assert sorted(predicate.calls) == list(range(20, 30))
        predicate.calls.clear()
        # Growing left: only [0, 10) is scanned.
        assert cache.contacts(edge, 0, 25).tolist() == [1, 4, 7, 10, 13, 16, 19, 22]
        assert sorted(predicate.calls) == list(range(0, 10))
        assert cache.scanned_window(edge) == (0, 30)
        assert predicate.max_calls_per_date() == 1

    def test_disjoint_windows_do_not_scan_the_gap(self):
        predicate = CountingPredicate()
        g = blackbox_graph(predicate, horizon=10_000)
        cache = LazyContactCache(g)
        edge = g.edge("ab")
        cache.contacts(edge, 0, 10)
        predicate.calls.clear()
        # A query far away starts a new segment; the gap is untouched.
        assert cache.contacts(edge, 9_000, 9_010).tolist() == [9001, 9004, 9007]
        assert sorted(predicate.calls) == list(range(9_000, 9_010))
        assert cache.scanned_window(edge) == (0, 9_010)  # hull, gap unscanned
        predicate.calls.clear()
        # A bridging query scans exactly the remaining gap, once.
        assert cache.contacts(edge, 5, 9_005).tolist()[:3] == [7, 10, 13]
        assert sorted(predicate.calls) == list(range(10, 9_000))
        assert predicate.max_calls_per_date() == 1

    def test_adjacent_segments_merge(self):
        predicate = CountingPredicate()
        g = blackbox_graph(predicate, horizon=100)
        cache = LazyContactCache(g)
        edge = g.edge("ab")
        cache.contacts(edge, 0, 10)
        cache.contacts(edge, 10, 20)  # adjacent: merges, no re-scan
        assert cache.scanned_window(edge) == (0, 20)
        assert cache.contacts(edge, 0, 20).tolist() == [1, 4, 7, 10, 13, 16, 19]
        assert predicate.max_calls_per_date() == 1

    def test_windows_are_per_edge(self):
        predicate = CountingPredicate()
        g = blackbox_graph(predicate)
        cache = LazyContactCache(g)
        cache.contacts(g.edge("ab"), 0, 6)
        assert cache.scanned_window(g.edge("ab")) == (0, 6)
        assert cache.scanned_window(g.edge("ca")) is None
        assert len(cache) == 1

    def test_unrelated_mutation_retains_segments(self):
        """Regression: one unrelated ``add_edge`` used to flush EVERY
        edge's memoized scans, re-firing every black-box predicate.
        Contacts are a pure function of the presence object, so an edge
        whose presence is untouched must keep its segments."""
        predicate = CountingPredicate()
        g = blackbox_graph(predicate)
        cache = LazyContactCache(g)
        edge = g.edge("ab")
        cache.contacts(edge, 0, 12)
        g.add_edge("a", "c", key="ac")  # structural, but not this edge
        assert cache.contacts(edge, 0, 12).tolist() == [1, 4, 7, 10]
        assert sorted(set(predicate.calls)) == list(range(0, 12))
        assert predicate.max_calls_per_date() == 1  # never asked twice
        assert cache.scanned_window(edge) == (0, 12)

    def test_own_presence_change_still_rescans(self):
        """The retention must be exactly per-edge: swapping THIS edge's
        schedule drops its segments (the new predicate is consulted)
        while the unrelated black-box edge keeps its scans."""
        predicate = CountingPredicate()
        other = CountingPredicate(4, 2)
        g = blackbox_graph(predicate, second=other)
        cache = LazyContactCache(g)
        cache.contacts(g.edge("ab"), 0, 12)
        cache.contacts(g.edge("ca"), 0, 12)
        other.calls.clear()
        swapped = g.set_presence(
            "ab", function_presence(CountingPredicate(3, 2), "swapped")
        )
        assert cache.contacts(swapped, 0, 12).tolist() == [2, 5, 8, 11]
        assert cache.contacts(g.edge("ca"), 0, 12).tolist() == [2, 6, 10]
        assert other.calls == [], "unrelated edge was re-scanned"


class TestRemoveReaddInvalidation:
    """Removing an edge and re-adding a same-keyed edge with a different
    schedule must flush the cache's segments — not just the compiled
    index.  Segments are keyed by edge *key*, so a missed flush would
    silently serve the old predicate's contacts for the new edge."""

    def test_same_key_readd_is_not_served_stale(self):
        first = CountingPredicate(3, 1)  # contacts 1, 4, 7, 10
        g = blackbox_graph(first)
        cache = LazyContactCache(g)
        assert cache.contacts(g.edge("ab"), 0, 12).tolist() == [1, 4, 7, 10]
        g.remove_edge("ab")
        second = CountingPredicate(3, 2)  # contacts 2, 5, 8, 11
        readded = g.add_edge(
            "a", "b", presence=function_presence(second, "recounted"), key="ab"
        )
        assert cache.contacts(readded, 0, 12).tolist() == [2, 5, 8, 11]
        assert sorted(set(second.calls)) == list(range(0, 12)), (
            "the new predicate must actually be consulted"
        )
        assert cache.scanned_window(readded) == (0, 12)

    def test_set_presence_flushes_too(self):
        first = CountingPredicate(3, 1)
        g = blackbox_graph(first)
        cache = LazyContactCache(g)
        assert cache.contacts(g.edge("ab"), 0, 12).tolist() == [1, 4, 7, 10]
        second = CountingPredicate(3, 0)  # contacts 0, 3, 6, 9
        swapped = g.set_presence("ab", function_presence(second, "swapped"))
        assert cache.contacts(swapped, 0, 12).tolist() == [0, 3, 6, 9]
        assert second.calls, "the swapped-in predicate must be consulted"

    def test_engine_answers_track_the_readded_schedule(self):
        """End to end: a query, the remove/re-add, then the same query —
        the engine path must agree with the interpretive oracle on the
        new schedule (a stale segment would leave it on the old one)."""
        first = CountingPredicate(3, 1)
        g = blackbox_graph(first)
        engine = TemporalEngine(g)
        assert earliest_arrivals(g, "a", 0, WAIT, engine=engine) == (
            earliest_arrivals(g, "a", 0, WAIT)
        )
        g.remove_edge("ab")
        g.add_edge(
            "a", "b",
            presence=function_presence(CountingPredicate(5, 4), "recounted"),
            key="ab",
        )
        for semantics in (NO_WAIT, WAIT):
            assert earliest_arrivals(g, "a", 0, semantics, engine=engine) == (
                earliest_arrivals(g, "a", 0, semantics)
            )


class TestEngineIntegration:
    def test_engine_owns_one_cache_across_rebuilds(self):
        predicate = CountingPredicate()
        g = TimeVaryingGraph(name="unbounded")  # unbounded lifetime
        g.add_edge("a", "b", presence=function_presence(predicate, "counted"), key="ab")
        engine = TemporalEngine(g)
        earliest_arrivals(g, "a", 0, WAIT, horizon=6, engine=engine)
        # Widening the horizon rebuilds the index but keeps the cache:
        # only the new dates [6, 20) are scanned.
        seen = set(predicate.calls)
        earliest_arrivals(g, "a", 0, WAIT, horizon=20, engine=engine)
        assert predicate.max_calls_per_date() == 1
        assert set(predicate.calls) - seen == set(range(6, 20))

    @pytest.mark.parametrize("semantics", [NO_WAIT, WAIT, bounded_wait(2)])
    def test_at_most_one_call_per_date_across_analyses(self, semantics):
        """The acceptance bar: repeated analysis queries through one
        engine invoke each black-box predicate at most once per
        (edge, date)."""
        first, second = CountingPredicate(), CountingPredicate(4, 2)
        g = blackbox_graph(first, second=second)
        engine = TemporalEngine(g)
        for _ in range(3):
            reachability_growth(g, 0, 12, semantics, engine=engine)
            reachability_matrix(g, 0, semantics, engine=engine)
            semantics_gap_matrix(g, 0, engine=engine)
            classify(g, 0, 12, engine=engine)
            value_of_waiting(g, 0, 12, engine=engine)
            foremost_broadcast_tree(g, "a", 0, semantics, engine=engine)
            reachable_states(g, [("a", 0)], semantics, engine=engine)
        assert first.calls and second.calls, "black-box edges never consulted"
        assert first.max_calls_per_date() == 1
        assert second.max_calls_per_date() == 1

    def test_cached_results_stay_exact(self):
        predicate = CountingPredicate(period=4, residue=3)
        g = blackbox_graph(predicate)
        engine = TemporalEngine(g)
        for _ in range(2):
            for semantics in (NO_WAIT, WAIT, bounded_wait(1)):
                assert reachable_states(
                    g, [("a", 0)], semantics, engine=engine
                ) == reachable_states(g, [("a", 0)], semantics)
                assert earliest_arrivals(
                    g, "a", 0, semantics, engine=engine
                ) == earliest_arrivals(g, "a", 0, semantics)


class TestSegmentAdjacency:
    """Edge cases of the segment-merge classification: a segment is
    absorbed (not skipped) when it merely *touches* the query — scanned
    ``hi == start`` or ``lo == end`` — and a bridging query across two
    disjoint segments scans exactly the gap between them.  Pins the
    at-most-once-per-(edge, date) contract the sharded sweep's parent
    pre-lowering relies on."""

    def _cache(self, horizon=40):
        predicate = CountingPredicate()
        g = blackbox_graph(predicate, horizon=horizon)
        return predicate, g, LazyContactCache(g), g.edge("ab")

    def test_right_touching_segment_absorbed(self):
        # Existing segment ends exactly where the query starts (hi == start).
        predicate, _g, cache, edge = self._cache()
        cache.contacts(edge, 0, 10)
        predicate.calls.clear()
        assert cache.contacts(edge, 10, 18).tolist() == [10, 13, 16]
        assert sorted(predicate.calls) == list(range(10, 18))
        assert cache.scanned_window(edge) == (0, 18)
        assert len(cache._segments[edge.key]) == 1  # merged, not stacked
        assert predicate.max_calls_per_date() == 1

    def test_left_touching_segment_absorbed(self):
        # Existing segment starts exactly where the query ends (lo == end).
        predicate, _g, cache, edge = self._cache()
        cache.contacts(edge, 10, 20)
        predicate.calls.clear()
        assert cache.contacts(edge, 2, 10).tolist() == [4, 7]
        assert sorted(predicate.calls) == list(range(2, 10))
        assert cache.scanned_window(edge) == (2, 20)
        assert len(cache._segments[edge.key]) == 1
        assert predicate.max_calls_per_date() == 1

    def test_bridging_query_absorbs_both_neighbours(self):
        # Two disjoint segments; the bridge touches both ends exactly
        # (hi == start of the query AND lo == end of it) and must scan
        # only the gap, once.
        predicate, _g, cache, edge = self._cache()
        cache.contacts(edge, 0, 4)
        cache.contacts(edge, 8, 12)
        assert len(cache._segments[edge.key]) == 2
        predicate.calls.clear()
        assert cache.contacts(edge, 4, 8).tolist() == [4, 7]
        assert sorted(predicate.calls) == list(range(4, 8))
        assert len(cache._segments[edge.key]) == 1
        assert cache.scanned_window(edge) == (0, 12)
        # The merged segment answers the whole hull without new calls.
        predicate.calls.clear()
        assert cache.contacts(edge, 0, 12).tolist() == [1, 4, 7, 10]
        assert predicate.calls == []

    def test_bridge_overshooting_both_segments(self):
        # The bridge also extends past both neighbours: only the three
        # uncovered gaps are scanned (left flank, middle, right flank).
        predicate, _g, cache, edge = self._cache()
        cache.contacts(edge, 4, 8)
        cache.contacts(edge, 12, 16)
        predicate.calls.clear()
        assert cache.contacts(edge, 0, 20).tolist() == [1, 4, 7, 10, 13, 16, 19]
        assert sorted(predicate.calls) == (
            list(range(0, 4)) + list(range(8, 12)) + list(range(16, 20))
        )
        assert len(cache._segments[edge.key]) == 1
        assert predicate.max_calls_per_date() == 1
