"""Tests for temporal distance metrics."""

import pytest

from repro.core.builders import TVGBuilder, static_graph
from repro.core.metrics import (
    eccentricity,
    fastest_journey,
    shortest_journey,
    temporal_diameter,
    temporal_distance,
)
from repro.core.semantics import NO_WAIT, WAIT


@pytest.fixture()
def diamond():
    """Two a->d routes: a 2-hop fast path and a 1-hop slow edge."""
    return (
        TVGBuilder(name="diamond")
        .lifetime(0, 20)
        .edge("a", "b", present={0}, latency=1, key="ab")
        .edge("b", "d", present={1}, latency=1, key="bd")
        .edge("a", "d", present={0}, latency=9, key="ad")
        .build()
    )


class TestTemporalDistance:
    def test_self_distance_zero(self, diamond):
        assert temporal_distance(diamond, "a", "a", 0, WAIT) == 0

    def test_foremost_prefers_two_hops(self, diamond):
        assert temporal_distance(diamond, "a", "d", 0, NO_WAIT) == 2

    def test_unreachable_is_none(self, diamond):
        assert temporal_distance(diamond, "b", "a", 0, WAIT) is None

    def test_start_time_shifts_distance(self):
        g = TVGBuilder().lifetime(0, 10).edge("a", "b", present={5}).build()
        assert temporal_distance(g, "a", "b", 0, WAIT) == 6
        assert temporal_distance(g, "a", "b", 5, WAIT) == 1
        assert temporal_distance(g, "a", "b", 0, NO_WAIT) is None


class TestShortestJourney:
    def test_minimum_hops_wins(self, diamond):
        journey = shortest_journey(diamond, "a", "d", 0, WAIT)
        assert journey is not None
        assert len(journey) == 1  # the slow direct edge has fewer hops
        assert journey.hops[0].edge.key == "ad"

    def test_unreachable(self, diamond):
        assert shortest_journey(diamond, "d", "a", 0, WAIT) is None

    def test_static_graph_matches_bfs(self):
        g = static_graph([("a", "b"), ("b", "c"), ("a", "c")])
        journey = shortest_journey(g, "a", "c", 0, NO_WAIT, horizon=10)
        assert journey is not None and len(journey) == 1


class TestFastestJourney:
    def test_later_start_can_be_faster(self):
        # Departing at 0 forces a long wait mid-route; departing at 4 is quick.
        g = (
            TVGBuilder()
            .lifetime(0, 20)
            .edge("a", "b", present={0, 4}, key="ab")
            .edge("b", "c", present={5}, key="bc")
            .build()
        )
        journey = fastest_journey(g, "a", "c", 0, 10, WAIT)
        assert journey is not None
        assert journey.departure == 4
        assert journey.duration == 2

    def test_none_when_never_reachable(self, diamond):
        assert fastest_journey(diamond, "d", "a", 0, 10, WAIT) is None


class TestEccentricityAndDiameter:
    def test_eccentricity(self, diamond):
        assert eccentricity(diamond, "a", 0, NO_WAIT) == 2

    def test_eccentricity_none_when_partial(self, diamond):
        assert eccentricity(diamond, "b", 0, WAIT) is None

    def test_diameter_none_unless_connected(self, diamond):
        assert temporal_diameter(diamond, 0, WAIT) is None

    def test_diameter_on_cycle(self):
        g = static_graph([("a", "b"), ("b", "c"), ("c", "a")])
        # unit latencies: worst pair needs 2 hops.
        assert temporal_diameter(g, 0, NO_WAIT, horizon=10) == 2
