"""Tests for lifetimes and the discrete time domain."""

import pytest

from repro.core.time_domain import INFINITY, Lifetime, require_window
from repro.errors import TimeDomainError


class TestLifetime:
    def test_default_is_unbounded_from_zero(self):
        lt = Lifetime()
        assert lt.start == 0
        assert not lt.bounded
        assert 10**12 in lt

    def test_membership_half_open(self):
        lt = Lifetime(2, 5)
        assert 2 in lt and 4 in lt
        assert 5 not in lt and 1 not in lt

    def test_non_integer_not_member(self):
        assert 2.5 not in Lifetime(0, 10)

    def test_duration(self):
        assert Lifetime(3, 10).duration == 7
        assert Lifetime(0).duration == INFINITY

    def test_times_enumeration(self):
        assert list(Lifetime(1, 4).times()) == [1, 2, 3]

    def test_times_refuses_unbounded(self):
        with pytest.raises(TimeDomainError):
            Lifetime(0).times()

    def test_invalid_bounds(self):
        with pytest.raises(TimeDomainError):
            Lifetime(5, 3)

    def test_non_integer_start_rejected(self):
        with pytest.raises(TimeDomainError):
            Lifetime(1.5, 4)

    def test_non_integer_end_rejected(self):
        with pytest.raises(TimeDomainError):
            Lifetime(0, 4.5)

    def test_clamp_bounded(self):
        assert Lifetime(0, 100).clamp(10) == Lifetime(0, 10)
        assert Lifetime(0, 5).clamp(10) == Lifetime(0, 5)

    def test_clamp_unbounded(self):
        assert Lifetime(0).clamp(7) == Lifetime(0, 7)

    def test_clamp_before_start_rejected(self):
        with pytest.raises(TimeDomainError):
            Lifetime(5).clamp(3)

    def test_require(self):
        Lifetime(0, 10).require(3)
        with pytest.raises(TimeDomainError):
            Lifetime(0, 10).require(10)


class TestRequireWindow:
    """The analysis layer's one shared window validation."""

    def test_valid_windows_pass(self):
        require_window(0, 1)
        require_window(-3, 5)

    def test_empty_window_rejected(self):
        with pytest.raises(TimeDomainError, match=r"empty window \[5, 5\)"):
            require_window(5, 5)

    def test_inverted_window_rejected(self):
        with pytest.raises(TimeDomainError, match=r"empty window \[7, 3\)"):
            require_window(7, 3)

    def test_error_is_catchable_as_repro_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            require_window(0, 0)

    def test_analysis_layer_uses_the_shared_helper(self):
        """evolution and classes raise the one unified message."""
        from repro.analysis.classes import is_temporally_connected_from
        from repro.analysis.evolution import density_curve, reachability_growth
        from repro.core.builders import TVGBuilder

        g = TVGBuilder().lifetime(0, 10).contact("a", "b").build()
        for call in (
            lambda: density_curve(g, 4, 4),
            lambda: reachability_growth(g, 6, 2),
            lambda: is_temporally_connected_from(g, 4, 4),
        ):
            with pytest.raises(TimeDomainError, match="empty window"):
                call()
