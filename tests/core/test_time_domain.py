"""Tests for lifetimes and the discrete time domain."""

import pytest

from repro.core.time_domain import INFINITY, Lifetime
from repro.errors import TimeDomainError


class TestLifetime:
    def test_default_is_unbounded_from_zero(self):
        lt = Lifetime()
        assert lt.start == 0
        assert not lt.bounded
        assert 10**12 in lt

    def test_membership_half_open(self):
        lt = Lifetime(2, 5)
        assert 2 in lt and 4 in lt
        assert 5 not in lt and 1 not in lt

    def test_non_integer_not_member(self):
        assert 2.5 not in Lifetime(0, 10)

    def test_duration(self):
        assert Lifetime(3, 10).duration == 7
        assert Lifetime(0).duration == INFINITY

    def test_times_enumeration(self):
        assert list(Lifetime(1, 4).times()) == [1, 2, 3]

    def test_times_refuses_unbounded(self):
        with pytest.raises(TimeDomainError):
            Lifetime(0).times()

    def test_invalid_bounds(self):
        with pytest.raises(TimeDomainError):
            Lifetime(5, 3)

    def test_non_integer_start_rejected(self):
        with pytest.raises(TimeDomainError):
            Lifetime(1.5, 4)

    def test_non_integer_end_rejected(self):
        with pytest.raises(TimeDomainError):
            Lifetime(0, 4.5)

    def test_clamp_bounded(self):
        assert Lifetime(0, 100).clamp(10) == Lifetime(0, 10)
        assert Lifetime(0, 5).clamp(10) == Lifetime(0, 5)

    def test_clamp_unbounded(self):
        assert Lifetime(0).clamp(7) == Lifetime(0, 7)

    def test_clamp_before_start_rejected(self):
        with pytest.raises(TimeDomainError):
            Lifetime(5).clamp(3)

    def test_require(self):
        Lifetime(0, 10).require(3)
        with pytest.raises(TimeDomainError):
            Lifetime(0, 10).require(10)
