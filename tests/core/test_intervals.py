"""Tests for integer interval sets."""

import pytest

from repro.core.intervals import Interval, IntervalSet
from repro.errors import TimeDomainError


class TestInterval:
    def test_membership(self):
        interval = Interval(2, 5)
        assert 2 in interval
        assert 4 in interval
        assert 5 not in interval
        assert 1 not in interval

    def test_non_integer_not_contained(self):
        assert 2.5 not in Interval(2, 5)
        assert "2" not in Interval(2, 5)

    def test_empty(self):
        assert Interval(3, 3).empty
        assert Interval(4, 3).empty
        assert not Interval(3, 4).empty

    def test_length(self):
        assert Interval(2, 5).length == 3
        assert Interval(5, 2).length == 0

    def test_overlaps_and_touches(self):
        assert Interval(0, 3).overlaps(Interval(2, 5))
        assert not Interval(0, 3).overlaps(Interval(3, 5))
        assert Interval(0, 3).touches(Interval(3, 5))
        assert not Interval(0, 3).touches(Interval(4, 5))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 2).intersect(Interval(3, 8)).empty

    def test_shift(self):
        assert Interval(1, 4).shift(10) == Interval(11, 14)
        assert Interval(1, 4).shift(-1) == Interval(0, 3)

    def test_dilate(self):
        assert Interval(1, 4).dilate(3) == Interval(3, 12)

    def test_dilate_rejects_nonpositive(self):
        with pytest.raises(TimeDomainError):
            Interval(1, 4).dilate(0)

    def test_times(self):
        assert list(Interval(2, 5).times()) == [2, 3, 4]


class TestIntervalSet:
    def test_normalization_merges_overlaps_and_adjacency(self):
        s = IntervalSet([Interval(0, 3), Interval(3, 5), Interval(2, 4), Interval(8, 9)])
        assert list(s) == [Interval(0, 5), Interval(8, 9)]

    def test_empty_intervals_dropped(self):
        s = IntervalSet([Interval(5, 5), Interval(7, 3)])
        assert not s
        assert len(s) == 0

    def test_membership(self):
        s = IntervalSet.from_pairs([(0, 2), (5, 7)])
        assert 0 in s and 1 in s and 5 in s and 6 in s
        assert 2 not in s and 4 not in s and 7 not in s
        assert "1" not in s

    def test_from_times(self):
        s = IntervalSet.from_times([1, 2, 3, 7, 9])
        assert list(s) == [Interval(1, 4), Interval(7, 8), Interval(9, 10)]

    def test_next_time_in(self):
        s = IntervalSet.from_pairs([(2, 4), (8, 10)])
        assert s.next_time_in(0) == 2
        assert s.next_time_in(2) == 2
        assert s.next_time_in(3) == 3
        assert s.next_time_in(4) == 8
        assert s.next_time_in(9) == 9
        assert s.next_time_in(10) is None

    def test_next_time_in_empty(self):
        assert IntervalSet().next_time_in(0) is None

    def test_total_length(self):
        assert IntervalSet.from_pairs([(0, 3), (10, 11)]).total_length() == 4

    def test_times_iteration(self):
        s = IntervalSet.from_pairs([(0, 2), (5, 6)])
        assert list(s.times()) == [0, 1, 5]

    def test_union(self):
        a = IntervalSet.from_pairs([(0, 3)])
        b = IntervalSet.from_pairs([(2, 5), (9, 10)])
        assert list(a.union(b)) == [Interval(0, 5), Interval(9, 10)]

    def test_intersect(self):
        a = IntervalSet.from_pairs([(0, 5), (8, 12)])
        b = IntervalSet.from_pairs([(3, 9)])
        assert list(a.intersect(b)) == [Interval(3, 5), Interval(8, 9)]

    def test_intersect_disjoint(self):
        a = IntervalSet.from_pairs([(0, 2)])
        b = IntervalSet.from_pairs([(5, 7)])
        assert not a.intersect(b)

    def test_complement(self):
        s = IntervalSet.from_pairs([(2, 4), (6, 7)])
        gaps = s.complement(Interval(0, 10))
        assert list(gaps) == [Interval(0, 2), Interval(4, 6), Interval(7, 10)]

    def test_complement_of_empty_is_window(self):
        assert list(IntervalSet().complement(Interval(3, 6))) == [Interval(3, 6)]

    def test_difference(self):
        a = IntervalSet.from_pairs([(0, 10)])
        b = IntervalSet.from_pairs([(3, 5)])
        assert list(a.difference(b)) == [Interval(0, 3), Interval(5, 10)]

    def test_shift(self):
        s = IntervalSet.from_pairs([(1, 3)]).shift(4)
        assert list(s) == [Interval(5, 7)]

    def test_dilate_sparse_maps_dates(self):
        s = IntervalSet.from_times([1, 2, 5]).dilate_sparse(3)
        assert sorted(s.times()) == [3, 6, 15]

    def test_dilate_sparse_rejects_nonpositive(self):
        with pytest.raises(TimeDomainError):
            IntervalSet.from_times([1]).dilate_sparse(-1)

    def test_span(self):
        assert IntervalSet.from_pairs([(2, 4), (8, 9)]).span == Interval(2, 9)
        assert IntervalSet().span is None

    def test_equality_and_hash(self):
        a = IntervalSet.from_pairs([(0, 2), (2, 4)])
        b = IntervalSet.from_pairs([(0, 4)])
        assert a == b
        assert hash(a) == hash(b)
