"""Tests for the TimeVaryingGraph container."""

import pytest

from repro.core.latency import constant_latency
from repro.core.presence import at_times, periodic_presence
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError, TimeDomainError


@pytest.fixture()
def graph():
    g = TimeVaryingGraph(lifetime=Lifetime(0, 10), name="t")
    g.add_edge("a", "b", label="x", presence=at_times([0, 3]), key="ab")
    g.add_edge("b", "c", label="y", presence=at_times([1]), key="bc")
    g.add_edge("a", "c", label="x", presence=at_times([5]), key="ac")
    return g


class TestStructure:
    def test_nodes_from_edges(self, graph):
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.node_count == 3

    def test_add_node_idempotent(self, graph):
        graph.add_node("a")
        assert graph.node_count == 3

    def test_edges(self, graph):
        assert graph.edge_count == 3
        assert graph.edge("ab").target == "b"

    def test_unknown_edge(self, graph):
        with pytest.raises(ReproError):
            graph.edge("zz")

    def test_duplicate_key_rejected(self, graph):
        with pytest.raises(ReproError):
            graph.add_edge("a", "b", key="ab")

    def test_auto_keys_unique(self):
        g = TimeVaryingGraph()
        e1 = g.add_edge("a", "b")
        e2 = g.add_edge("a", "b")
        assert e1.key != e2.key

    def test_out_in_edges(self, graph):
        assert {e.key for e in graph.out_edges("a")} == {"ab", "ac"}
        assert {e.key for e in graph.in_edges("c")} == {"bc", "ac"}

    def test_unknown_node_queries(self, graph):
        with pytest.raises(ReproError):
            graph.out_edges("zz")

    def test_edges_between_parallel(self):
        g = TimeVaryingGraph()
        g.add_edge("a", "b", label="x", key="one")
        g.add_edge("a", "b", label="y", key="two")
        assert {e.key for e in g.edges_between("a", "b")} == {"one", "two"}

    def test_edges_between_unknown_target(self, graph):
        with pytest.raises(ReproError):
            graph.edges_between("a", "zz")

    def test_edges_between_unknown_source(self, graph):
        with pytest.raises(ReproError):
            graph.edges_between("zz", "a")

    def test_remove_edge(self, graph):
        graph.remove_edge("ab")
        assert not graph.has_edge("ab")
        assert {e.key for e in graph.out_edges("a")} == {"ac"}

    def test_remove_edge_keeps_order(self, graph):
        graph.add_edge("a", "d", key="ad")
        graph.remove_edge("ac")
        assert [e.key for e in graph.out_edges("a")] == ["ab", "ad"]

    def test_remove_missing_edge(self, graph):
        with pytest.raises(ReproError):
            graph.remove_edge("zz")

    def test_version_counts_mutations(self, graph):
        before = graph.version
        graph.add_node("fresh")
        assert graph.version == before + 1
        graph.add_edge("fresh", "a", key="fa")
        assert graph.version > before + 1
        at_edge = graph.version
        graph.remove_edge("fa")
        assert graph.version == at_edge + 1
        # read-only queries must not bump the counter
        graph.out_edges("a")
        graph.edges_between("a", "b")
        assert graph.version == at_edge + 1

    def test_alphabet(self, graph):
        assert graph.alphabet == {"x", "y"}

    def test_contact_adds_both_directions(self):
        g = TimeVaryingGraph()
        forward, backward = g.add_contact("u", "v", presence=at_times([2]))
        assert forward.source == "u" and backward.source == "v"
        assert backward.present_at(2)


class TestTimeQueries:
    def test_edges_at(self, graph):
        assert {e.key for e in graph.edges_at(0)} == {"ab"}
        assert {e.key for e in graph.edges_at(1)} == {"bc"}
        assert {e.key for e in graph.edges_at(5)} == {"ac"}

    def test_edges_at_outside_lifetime(self, graph):
        with pytest.raises(TimeDomainError):
            list(graph.edges_at(10))

    def test_out_edges_at(self, graph):
        assert {e.key for e in graph.out_edges_at("a", 3)} == {"ab"}
        assert not set(graph.out_edges_at("a", 1))

    def test_degree_at(self, graph):
        assert graph.degree_at("a", 0) == 1
        assert graph.degree_at("a", 1) == 0


class TestPeriodAndCopy:
    def test_period_validation(self):
        with pytest.raises(TimeDomainError):
            TimeVaryingGraph(period=0)

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add_edge("c", "a", key="new")
        assert not graph.has_edge("new")
        assert clone.edge_count == graph.edge_count + 1

    def test_copy_preserves_metadata(self):
        g = TimeVaryingGraph(lifetime=Lifetime(2, 8), period=3, name="orig")
        clone = g.copy(name="clone")
        assert clone.lifetime == Lifetime(2, 8)
        assert clone.period == 3
        assert clone.name == "clone"

    def test_periodic_graph_round_trip(self):
        g = TimeVaryingGraph(period=4)
        g.add_edge("a", "b", presence=periodic_presence([1], 4), latency=constant_latency(2))
        assert next(g.edges_at(1)).key
        assert list(g.edges_at(5))
