"""Tests for TVG generators."""

import networkx as nx
import pytest

from repro.core.generators import (
    bernoulli_tvg,
    edge_markovian_tvg,
    from_networkx_schedule,
    periodic_random_tvg,
    random_labeled_tvg,
    transit_tvg,
)
from repro.core.intervals import Interval
from repro.core.snapshots import presence_density
from repro.errors import ReproError


class TestBernoulli:
    def test_deterministic_under_seed(self):
        a = bernoulli_tvg(5, horizon=20, density=0.3, seed=1)
        b = bernoulli_tvg(5, horizon=20, density=0.3, seed=1)
        assert [e.key for e in a.edges] == [e.key for e in b.edges]
        window = Interval(0, 20)
        for ea, eb in zip(a.edges, b.edges):
            assert list(ea.presence.support(window).times()) == list(
                eb.presence.support(window).times()
            )

    def test_density_roughly_respected(self):
        g = bernoulli_tvg(8, horizon=50, density=0.4, seed=2)
        measured = presence_density(g, 0, 50)
        assert 0.3 < measured < 0.5

    def test_density_bounds_validated(self):
        with pytest.raises(ReproError):
            bernoulli_tvg(4, horizon=10, density=1.5)

    def test_undirected_symmetry(self):
        g = bernoulli_tvg(4, horizon=10, density=0.5, seed=3)
        for edge in g.edges:
            twins = g.edges_between(edge.target, edge.source)
            assert twins, f"missing reverse of {edge.key}"

    def test_directed_mode(self):
        g = bernoulli_tvg(3, horizon=10, density=1.0, directed=True, seed=0)
        assert g.edge_count == 6


class TestEdgeMarkovian:
    def test_deterministic_under_seed(self):
        a = edge_markovian_tvg(5, horizon=30, birth=0.2, death=0.4, seed=9)
        b = edge_markovian_tvg(5, horizon=30, birth=0.2, death=0.4, seed=9)
        assert presence_density(a, 0, 30) == presence_density(b, 0, 30)

    def test_stationary_density(self):
        g = edge_markovian_tvg(10, horizon=200, birth=0.2, death=0.2, seed=4)
        measured = presence_density(g, 0, 200)
        assert 0.4 < measured < 0.6  # stationary = 0.5

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            edge_markovian_tvg(4, horizon=10, birth=2.0, death=0.1)

    def test_degenerate_never_born(self):
        g = edge_markovian_tvg(4, horizon=10, birth=0.0, death=1.0, seed=5)
        assert g.edge_count == 0


class TestPeriodicRandom:
    def test_period_declared_and_true(self):
        g = periodic_random_tvg(4, period=5, density=0.5, seed=6)
        assert g.period == 5
        for edge in g.edges:
            for t in range(5):
                assert edge.present_at(t) == edge.present_at(t + 5)

    def test_labels_drawn_from_alphabet(self):
        g = periodic_random_tvg(4, period=3, density=0.8, labels="xy", seed=7)
        assert g.alphabet <= {"x", "y"}


class TestRandomLabeled:
    def test_edge_count_exact(self):
        g = random_labeled_tvg(5, edge_count=9, alphabet="ab", period=4, seed=8)
        assert g.edge_count == 9

    def test_no_self_loops(self):
        g = random_labeled_tvg(3, edge_count=20, alphabet="a", period=3, seed=9)
        assert all(e.source != e.target for e in g.edges)

    def test_every_edge_sometimes_present(self):
        g = random_labeled_tvg(4, edge_count=10, alphabet="ab", period=4, seed=10)
        window = Interval(0, 4)
        for edge in g.edges:
            assert edge.presence.support(window)

    def test_needs_two_nodes(self):
        with pytest.raises(ReproError):
            random_labeled_tvg(1, edge_count=1, alphabet="a", period=2)


class TestTransit:
    def test_line_schedule(self):
        g = transit_tvg([(["s0", "s1", "s2"], 0, 4)])
        hop0 = g.edge("line0.hop0")
        hop1 = g.edge("line0.hop1")
        assert hop0.present_at(0) and hop0.present_at(4)
        assert hop1.present_at(1) and hop1.present_at(5)
        assert not hop1.present_at(0)

    def test_period_lcm(self):
        g = transit_tvg([(["a", "b"], 0, 4), (["b", "c"], 1, 6)])
        assert g.period == 12

    def test_validation(self):
        with pytest.raises(ReproError):
            transit_tvg([])
        with pytest.raises(ReproError):
            transit_tvg([(["only"], 0, 4)])


class TestFromNetworkx:
    def test_undirected_lift(self):
        footprint = nx.path_graph(3)
        g = from_networkx_schedule(footprint, {(0, 1): [2], (1, 2): [3]}, horizon=5)
        assert g.edge_count == 4
        assert any(e.present_at(2) for e in g.out_edges(0))

    def test_missing_schedule_means_always(self):
        footprint = nx.path_graph(2)
        g = from_networkx_schedule(footprint, {}, horizon=5)
        assert all(e.present_at(0) and e.present_at(4) for e in g.edges)

    def test_directed_lift(self):
        footprint = nx.DiGraph([(0, 1)])
        g = from_networkx_schedule(footprint, {(0, 1): [1]}, horizon=4)
        assert g.edge_count == 1
