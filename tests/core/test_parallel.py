"""Tests for the process-sharded arrival sweep (:mod:`repro.core.parallel`).

The sharding contract: partitioning the source set into blocks, sweeping
each block (in a worker process or not), and stacking the sub-matrices
must reproduce the serial sweep element for element — with black-box
presences lowered in the *parent* through the engine's LazyContactCache,
so arbitrary predicates never pickle and each fires at most once per
(edge, date).  Tests that actually spawn worker processes carry the
``slow`` marker so the fast gate stays sandbox-friendly.
"""

import pickle

import numpy as np
import pytest

from repro.core import parallel
from repro.core.engine import UNREACHED, TemporalEngine
from repro.core.generators import periodic_random_tvg
from repro.core.latency import function_latency
from repro.core.parallel import (
    MIN_PARALLEL_NODES,
    build_sweep_plan,
    effective_shards,
    partition_sources,
    sharded_arrival_matrix,
    sweep_block,
)
from repro.core.presence import function_presence, periodic_presence
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph

HORIZON = 14
SEMANTICS = [NO_WAIT, WAIT, bounded_wait(2)]


class CountingPredicate:
    """A black-box schedule that records every date it is asked about."""

    def __init__(self, period=3, residue=1):
        self.period = period
        self.residue = residue
        self.calls: list[int] = []

    def __call__(self, t: int) -> bool:
        self.calls.append(t)
        return t % self.period == self.residue

    def max_calls_per_date(self) -> int:
        return max(self.calls.count(t) for t in set(self.calls)) if self.calls else 0


def random_graph(n=12, seed=3):
    return periodic_random_tvg(n, period=6, density=0.12, seed=seed)


def blackbox_ring(n=10, horizon=HORIZON):
    """A ring with one fresh counting predicate per edge plus a lambda
    latency — nothing on it pickles, which is exactly the point."""
    g = TimeVaryingGraph(lifetime=Lifetime(0, horizon), name="blackbox-ring")
    g.add_nodes(range(n))
    predicates = []
    for u in range(n):
        predicate = CountingPredicate(3, u % 3)
        predicates.append(predicate)
        g.add_edge(
            u,
            (u + 1) % n,
            presence=function_presence(predicate, f"p{u}"),
            latency=function_latency(lambda t: 1 + t % 2, "odd-even"),
        )
    g.add_edge(0, n // 2, presence=periodic_presence([0, 2], 4), key="chord")
    return g, predicates


class TestPartition:
    def test_blocks_cover_all_sources_in_order(self):
        for n in (1, 2, 7, 8, 20):
            for shards in (1, 2, 3, 4, 50):
                blocks = partition_sources(n, shards)
                assert [i for block in blocks for i in block] == list(range(n))
                assert all(block for block in blocks)
                assert len(blocks) == min(shards, n) if n else not blocks

    def test_blocks_are_balanced(self):
        sizes = [len(b) for b in partition_sources(10, 4)]
        assert sorted(sizes) == [2, 2, 3, 3]

    def test_effective_shards_policy(self):
        assert effective_shards(100, None) == 1
        assert effective_shards(100, 1) == 1
        assert effective_shards(MIN_PARALLEL_NODES - 1, 4) == 1  # tiny graph
        assert effective_shards(MIN_PARALLEL_NODES, 4) == 4
        assert effective_shards(10, 64) == 10  # clamped to the node count

    def test_more_shards_than_sources_never_yields_empty_blocks(self):
        for n in (1, 2, 5):
            blocks = partition_sources(n, n + 37)
            assert len(blocks) == n
            assert all(len(block) == 1 for block in blocks)
            assert [i for block in blocks for i in block] == list(range(n))

    def test_empty_source_set_partitions_to_nothing(self):
        assert partition_sources(0, 1) == []
        assert partition_sources(0, 8) == []

    def test_single_shard_is_one_covering_block(self):
        for n in (1, 7, 20):
            assert partition_sources(n, 1) == [tuple(range(n))]

    def test_blocks_are_contiguous_and_disjoint(self):
        for n in (5, 9, 16):
            for shards in (2, 3, 4, 7):
                blocks = partition_sources(n, shards)
                seen: set[int] = set()
                for block in blocks:
                    assert block == tuple(range(block[0], block[-1] + 1))
                    assert not seen & set(block)
                    seen |= set(block)
                assert seen == set(range(n))

    def test_empty_source_set_never_reaches_effective_shards(self):
        assert effective_shards(0, 8) == 1
        assert effective_shards(0, None) == 1


class TestSweepPlan:
    def test_plan_is_plain_picklable_data(self):
        g, _predicates = blackbox_ring()
        engine = TemporalEngine(g)
        nodes, plan = build_sweep_plan(engine, 0, WAIT, HORIZON)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert len(nodes) == plan.n

    def test_blackbox_lowering_happens_once_in_the_parent(self):
        g, predicates = blackbox_ring()
        engine = TemporalEngine(g)
        build_sweep_plan(engine, 0, WAIT, HORIZON)
        build_sweep_plan(engine, 0, NO_WAIT, HORIZON)  # second plan: cache hit
        for predicate in predicates:
            assert sorted(set(predicate.calls)) == list(range(0, HORIZON))
            assert predicate.max_calls_per_date() == 1

    def test_plan_arrivals_swallow_callable_latencies(self):
        g, _predicates = blackbox_ring()
        engine = TemporalEngine(g)
        _nodes, plan = build_sweep_plan(engine, 0, WAIT, HORIZON)
        for contacts, arrivals in zip(plan.contacts, plan.arrivals):
            assert len(contacts) == len(arrivals)
            assert all(arr > dep for dep, arr in zip(contacts, arrivals))


class TestBlockSweepEquality:
    @pytest.mark.parametrize("semantics", SEMANTICS)
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_stacked_blocks_equal_serial(self, semantics, shards):
        g = random_graph()
        engine = TemporalEngine(g)
        _nodes, serial = engine.arrival_matrix(0, semantics, horizon=HORIZON)
        nodes, plan = build_sweep_plan(engine, 0, semantics, HORIZON)
        blocks = partition_sources(plan.n, shards)
        stacked = np.vstack([sweep_block(plan, block) for block in blocks])
        assert np.array_equal(stacked, serial)

    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_blackbox_blocks_equal_serial(self, semantics):
        g, predicates = blackbox_ring()
        engine = TemporalEngine(g)
        _nodes, serial = engine.arrival_matrix(0, semantics)
        _same, plan = build_sweep_plan(engine, 0, semantics, HORIZON)
        stacked = np.vstack(
            [sweep_block(plan, block) for block in partition_sources(plan.n, 4)]
        )
        assert np.array_equal(stacked, serial)
        for predicate in predicates:
            assert predicate.max_calls_per_date() == 1

    def test_single_block_is_the_whole_matrix(self):
        g = random_graph()
        engine = TemporalEngine(g)
        _nodes, serial = engine.arrival_matrix(2, WAIT, horizon=HORIZON)
        _same, plan = build_sweep_plan(engine, 2, WAIT, HORIZON)
        assert np.array_equal(sweep_block(plan, range(plan.n)), serial)

    def test_start_at_horizon_leaves_only_the_diagonal(self):
        g = random_graph()
        engine = TemporalEngine(g)
        _nodes, plan = build_sweep_plan(engine, 9, WAIT, 9)
        block = sweep_block(plan, range(plan.n))
        expected = np.full((plan.n, plan.n), UNREACHED, dtype=np.int64)
        np.fill_diagonal(expected, 9)
        assert np.array_equal(block, expected)


class TestEngineFallbacks:
    def test_one_shard_stays_serial(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover — fails the test
            raise AssertionError("sharded path taken for shards=1")

        monkeypatch.setattr(parallel, "sharded_arrival_matrix", boom)
        g = random_graph()
        engine = TemporalEngine(g)
        nodes, matrix = engine.arrival_matrix(0, WAIT, horizon=HORIZON, shards=1)
        assert matrix.shape == (len(nodes), len(nodes))

    def test_tiny_graph_stays_serial(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover — fails the test
            raise AssertionError("sharded path taken for a tiny graph")

        monkeypatch.setattr(parallel, "sharded_arrival_matrix", boom)
        g = random_graph(n=MIN_PARALLEL_NODES - 1)
        engine = TemporalEngine(g)
        nodes, matrix = engine.arrival_matrix(0, WAIT, horizon=HORIZON, shards=8)
        assert matrix.shape == (len(nodes), len(nodes))

    def test_empty_graph_stays_serial_and_answers_0xn(self, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover — fails the test
            raise AssertionError("sharded path taken for an empty source set")

        monkeypatch.setattr(parallel, "sharded_arrival_matrix", boom)
        g = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="empty")
        nodes, matrix = TemporalEngine(g).arrival_matrix(
            0, WAIT, horizon=HORIZON, shards=8
        )
        assert nodes == [] and matrix.shape == (0, 0)

    def test_sharded_call_on_empty_sources_never_opens_a_pool(self, monkeypatch):
        import concurrent.futures

        def boom(*args, **kwargs):  # pragma: no cover — fails the test
            raise AssertionError("a pool was spun up for an empty source set")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", boom)
        g = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="empty")
        nodes, matrix = sharded_arrival_matrix(TemporalEngine(g), 0, WAIT, HORIZON, 4)
        assert nodes == []
        assert matrix.shape == (0, 0) and matrix.dtype == np.int64


@pytest.mark.slow
class TestMultiprocessSharding:
    """End-to-end through real worker processes (hence ``slow``)."""

    @pytest.mark.parametrize("semantics", SEMANTICS)
    def test_engine_shards_equal_serial(self, semantics):
        g = random_graph(n=16, seed=11)
        serial_engine, sharded_engine = TemporalEngine(g), TemporalEngine(g)
        nodes, serial = serial_engine.arrival_matrix(0, semantics, horizon=HORIZON)
        same, sharded = sharded_engine.arrival_matrix(
            0, semantics, horizon=HORIZON, shards=4
        )
        assert nodes == same
        assert np.array_equal(serial, sharded)

    def test_blackbox_graph_through_processes(self):
        g, predicates = blackbox_ring(n=12)
        engine = TemporalEngine(g)
        nodes, sharded = engine.arrival_matrix(0, WAIT, shards=3)
        # The workers never touched the predicates: the parent's call
        # log is complete (every date lowered once) and duplicate-free.
        # (Checked before the serial oracle runs — its own fresh engine
        # legitimately rescans through a second cache.)
        for predicate in predicates:
            assert sorted(set(predicate.calls)) == list(range(0, HORIZON))
            assert predicate.max_calls_per_date() == 1
        _same, serial = TemporalEngine(g).arrival_matrix(0, WAIT)
        assert np.array_equal(serial, sharded)

    def test_derived_views_accept_shards(self):
        g = random_graph(n=12, seed=5)
        engine = TemporalEngine(g)
        nodes, boolean = engine.reachability_matrix(0, WAIT, HORIZON, shards=2)
        _same, masks = engine.reachability_masks(0, WAIT, HORIZON, shards=2)
        _also, serial = TemporalEngine(g).reachability_matrix(0, WAIT, HORIZON)
        assert np.array_equal(boolean, serial)
        for j in range(len(nodes)):
            assert masks[j] == sum(
                1 << i for i in range(len(nodes)) if boolean[i, j]
            )

    def test_direct_sharded_call(self):
        g = random_graph(n=10, seed=9)
        engine = TemporalEngine(g)
        nodes, sharded = sharded_arrival_matrix(
            engine, 0, bounded_wait(1), HORIZON, 4
        )
        _same, serial = TemporalEngine(g).arrival_matrix(
            0, bounded_wait(1), horizon=HORIZON
        )
        assert np.array_equal(serial, sharded)
