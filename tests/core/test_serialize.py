"""Tests for TVG JSON serialization."""

import pytest

from repro.core.builders import TVGBuilder
from repro.core.latency import affine_latency, function_latency, table_latency
from repro.core.presence import function_presence
from repro.core.serialize import (
    decode_latency,
    decode_presence,
    dumps,
    encode_latency,
    encode_presence,
    from_dict,
    load,
    loads,
    sampled,
    save,
    to_dict,
)
from repro.errors import ReproError, TraceFormatError


@pytest.fixture()
def graph():
    return (
        TVGBuilder(name="demo")
        .lifetime(0, 30)
        .periodic(6)
        .edge("a", "b", label="x", present=[(0, 3), (8, 10)], latency=2, key="ab")
        .edge("b", "c", label="y", period=(1, 6), key="bc")
        .edge("c", "a", latency=affine_latency(1, 1), key="ca")
        .build()
    )


class TestRoundTrip:
    def test_dict_round_trip(self, graph):
        again = from_dict(to_dict(graph))
        assert again.name == graph.name
        assert again.lifetime == graph.lifetime
        assert again.period == graph.period
        assert set(again.nodes) == set(graph.nodes)
        assert {e.key for e in again.edges} == {e.key for e in graph.edges}

    def test_schedules_survive(self, graph):
        again = loads(dumps(graph))
        original_ab, again_ab = graph.edge("ab"), again.edge("ab")
        for t in range(0, 12):
            assert original_ab.present_at(t) == again_ab.present_at(t), t
        assert again_ab.latency(0) == 2
        assert again.edge("ca").latency(5) == 6  # affine 1*t + 1

    def test_labels_survive(self, graph):
        again = loads(dumps(graph))
        assert again.edge("ab").label == "x"
        assert again.edge("ca").label is None

    def test_file_round_trip(self, graph, tmp_path):
        path = tmp_path / "graph.json"
        save(graph, path)
        again = load(path)
        assert again.edge_count == graph.edge_count

    def test_unbounded_lifetime(self):
        g = TVGBuilder().edge("a", "b", key="e").build()
        again = loads(dumps(g))
        assert not again.lifetime.bounded


class TestEncoders:
    def test_unknown_presence_kind(self):
        with pytest.raises(TraceFormatError):
            decode_presence({"kind": "astrology"})

    def test_unknown_latency_kind(self):
        with pytest.raises(TraceFormatError):
            decode_latency({"kind": "vibes"})

    def test_black_box_presence_rejected(self):
        with pytest.raises(ReproError):
            encode_presence(function_presence(lambda t: True))

    def test_black_box_latency_rejected(self):
        with pytest.raises(ReproError):
            encode_latency(function_latency(lambda t: 1))

    def test_table_latency_round_trip(self):
        lat = table_latency({0: 3, 7: 2}, default=5)
        again = decode_latency(encode_latency(lat))
        assert again(0) == 3 and again(7) == 2 and again(1) == 5

    def test_wrong_format_rejected(self):
        with pytest.raises(TraceFormatError):
            from_dict({"format": "not-a-tvg"})

    def test_wrong_version_rejected(self):
        with pytest.raises(TraceFormatError):
            from_dict({"format": "repro-tvg", "version": 99})


class TestSampled:
    def test_clockwork_graph_becomes_serializable(self):
        """Figure 1 has black-box schedules; sampling a window makes a
        faithful, serializable finite view."""
        from repro.constructions.figure1 import figure1_graph

        fig1 = figure1_graph()
        finite = sampled(fig1, 1, 40)
        text = dumps(finite)  # must not raise
        again = loads(text)
        for t in range(1, 40):
            for key in ("e0", "e1", "e2", "e3", "e4"):
                assert fig1.edge(key).present_at(t) == again.edge(key).present_at(t)

    def test_sampled_latencies_match(self):
        from repro.constructions.figure1 import figure1_graph

        fig1 = figure1_graph()
        finite = sampled(fig1, 1, 20)
        assert finite.edge("e0").latency(4) == fig1.edge("e0").latency(4)

    def test_empty_window_rejected(self, graph):
        with pytest.raises(ReproError):
            sampled(graph, 5, 5)
