"""Tests for latency functions."""

import pytest

from repro.core.latency import (
    affine_latency,
    constant_latency,
    function_latency,
    table_latency,
)
from repro.errors import TimeDomainError


class TestConstantLatency:
    def test_value(self):
        lat = constant_latency(3)
        assert lat(0) == 3
        assert lat(100) == 3

    def test_default_is_unit(self):
        assert constant_latency()(5) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(TimeDomainError):
            constant_latency(0)
        with pytest.raises(TimeDomainError):
            constant_latency(-2)

    def test_rejects_non_integer(self):
        with pytest.raises(TimeDomainError):
            constant_latency(1.5)


class TestAffineLatency:
    def test_table1_shape(self):
        # Table 1's e0 latency: (p - 1) * t with p = 2.
        lat = affine_latency(1)
        assert lat(1) == 1
        assert lat(8) == 8

    def test_with_intercept(self):
        lat = affine_latency(2, 3)
        assert lat(0) == 3
        assert lat(5) == 13

    def test_positivity_enforced_at_call(self):
        lat = affine_latency(1, 0)  # value 0 at t = 0
        with pytest.raises(TimeDomainError):
            lat(0)
        assert lat(1) == 1


class TestTableLatency:
    def test_lookup(self):
        lat = table_latency({0: 5, 3: 2}, default=7)
        assert lat(0) == 5
        assert lat(3) == 2
        assert lat(9) == 7

    def test_missing_without_default(self):
        lat = table_latency({0: 5})
        with pytest.raises(TimeDomainError):
            lat(1)


class TestFunctionLatency:
    def test_callable(self):
        lat = function_latency(lambda t: t + 1)
        assert lat(0) == 1
        assert lat(9) == 10

    def test_non_integer_result_rejected(self):
        lat = function_latency(lambda t: 1.5)
        with pytest.raises(TimeDomainError):
            lat(0)

    def test_nonpositive_result_rejected(self):
        lat = function_latency(lambda t: -1)
        with pytest.raises(TimeDomainError):
            lat(0)


class TestTransforms:
    def test_shifted(self):
        lat = function_latency(lambda t: t + 1).shifted(10)
        # new(t) = old(t - 10)
        assert lat(10) == 1
        assert lat(14) == 5

    def test_dilated_scales_value_and_time(self):
        lat = function_latency(lambda t: t + 1).dilated(3)
        # new(3t) = 3 * old(t)
        assert lat(0) == 3 * 1
        assert lat(6) == 3 * 3

    def test_dilated_rejects_nonpositive(self):
        with pytest.raises(TimeDomainError):
            constant_latency(1).dilated(0)
