"""Unit tests for the sweep-kernel module itself.

The property suite (``tests/properties/test_property_kernel.py``) proves
the kernels agree; this file pins the *mechanics*: kernel-name
resolution (argument > environment > default), :class:`SweepStats`
accounting, and the bignum kernel's heap hygiene — dedup seeding and
dead-pop skipping on a merge-heavy graph, the churn the old in-engine
sweep paid for on every duplicated frontier entry.
"""

import numpy as np
import pytest

from repro.core.engine import TemporalEngine
from repro.core.latency import constant_latency
from repro.core.parallel import build_sweep_plan
from repro.core.presence import interval_presence
from repro.core.semantics import WAIT, bounded_wait
from repro.core.sweep_kernel import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KERNELS,
    SweepStats,
    resolve_kernel,
    sweep_block,
)
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph

HORIZON = 16


def merge_heavy_graph(n: int = 8) -> TimeVaryingGraph:
    """A complete digraph whose edges are all present on ``[0, 4)``:
    every frontier merge re-discovers every node many times over, so a
    naive heap sweep pops far more entries than it has live states."""
    graph = TimeVaryingGraph(lifetime=Lifetime(0, HORIZON), name="merge-heavy")
    graph.add_nodes(range(n))
    for u in range(n):
        for v in range(n):
            if u != v:
                graph.add_edge(
                    u, v,
                    presence=interval_presence([(0, 4)]),
                    latency=constant_latency(1),
                )
    return graph


class TestResolveKernel:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel() == DEFAULT_KERNEL

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "bitset")
        assert resolve_kernel("bignum") == "bignum"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "bignum")
        assert resolve_kernel() == "bignum"

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown sweep kernel"):
            resolve_kernel("simd")
        monkeypatch.setenv(KERNEL_ENV, "gpu")
        with pytest.raises(ValueError, match="unknown sweep kernel"):
            resolve_kernel()

    def test_kernels_tuple_is_the_contract(self):
        for name in KERNELS:
            assert resolve_kernel(name) == name


class TestSweepStats:
    def _plan(self, semantics=WAIT):
        engine = TemporalEngine(merge_heavy_graph())
        return build_sweep_plan(engine, 0, semantics, HORIZON)[1]

    def test_stats_record_the_kernel(self):
        plan = self._plan()
        for kernel in KERNELS:
            stats = SweepStats()
            sweep_block(plan, range(plan.n), kernel=kernel, stats=stats)
            assert stats.kernel == kernel
            assert stats.pops > 0

    def test_bignum_dedups_duplicate_seed_sources(self):
        """Duplicated sources in a block seed ONE heap entry per
        distinct (node, start) key, so the seed pops stay at ``n``."""
        plan = self._plan()
        sources = tuple(range(plan.n)) * 3
        stats = SweepStats()
        deduped = sweep_block(plan, sources, kernel="bignum", stats=stats)
        plain = sweep_block(plan, tuple(range(plan.n)), kernel="bignum")
        assert np.array_equal(deduped, np.vstack([plain] * 3))
        baseline = SweepStats()
        sweep_block(plan, range(plan.n), kernel="bignum", stats=baseline)
        assert stats.pops == baseline.pops  # no extra heap entries seeded

    def test_bignum_absorbs_merge_churn_without_dead_pops(self):
        """The complete graph floods every (node, date) state with
        re-discoveries.  One heap entry per pending key (merges land in
        the pending mask, never as a second entry) means the flood is
        absorbed as merges — pushes far outnumber pops and no pop ever
        finds its state already consumed."""
        stats = SweepStats()
        plan = self._plan(bounded_wait(2))
        sweep_block(plan, range(plan.n), kernel="bignum", stats=stats)
        assert stats.dead_pops == 0
        assert stats.pushes > 3 * stats.pops  # the churn the merges ate

    def test_bitset_has_no_dead_pops_by_construction(self):
        """The contact-scan kernel visits each date bucket exactly once,
        so there is nothing stale to pop."""
        stats = SweepStats()
        plan = self._plan()
        sweep_block(plan, range(plan.n), kernel="bitset", stats=stats)
        assert stats.dead_pops == 0
        assert stats.pushes > 0

    def test_stats_are_optional(self):
        plan = self._plan()
        result = sweep_block(plan, range(plan.n))
        assert result.shape == (plan.n, plan.n)


class TestEngineKernelThreading:
    def test_engine_env_override(self, monkeypatch):
        """With no explicit kernel the engine obeys REPRO_SWEEP_KERNEL;
        both settings give the same matrix."""
        graph = merge_heavy_graph(5)
        engine = TemporalEngine(graph)
        matrices = {}
        for kernel in KERNELS:
            monkeypatch.setenv(KERNEL_ENV, kernel)
            _nodes, matrices[kernel] = engine.arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(matrices["bitset"], matrices["bignum"])

    def test_engine_rejects_unknown_kernel(self):
        engine = TemporalEngine(merge_heavy_graph(5))
        with pytest.raises(ValueError, match="unknown sweep kernel"):
            engine.arrival_matrix(0, WAIT, horizon=HORIZON, kernel="simd")

    def test_reachability_packed_matches_masks(self):
        """The packed uint8 matrix is the primary form; the bignum mask
        list is a byte-reinterpretation of its columns."""
        engine = TemporalEngine(merge_heavy_graph(6))
        nodes, packed = engine.reachability_packed(0, WAIT, horizon=HORIZON)
        _same, masks = engine.reachability_masks(0, WAIT, horizon=HORIZON)
        _also, matrix = engine.reachability_matrix(0, WAIT, horizon=HORIZON)
        n = len(nodes)
        assert packed.shape == ((n + 7) // 8, n)
        assert packed.dtype == np.uint8
        unpacked = np.unpackbits(packed, axis=0, count=n, bitorder="little")
        assert np.array_equal(unpacked.astype(bool), matrix)
        for j in range(n):
            assert masks[j] == int.from_bytes(packed[:, j].tobytes(), "little")
