"""Run the doctests embedded in library docstrings."""

import doctest

import pytest

import repro.automata.alphabet
import repro.automata.regex
import repro.automata.wqo
import repro.constructions.godel
import repro.core.intervals
import repro.core.presence
import repro.core.render
import repro.core.time_domain

MODULES = [
    repro.automata.alphabet,
    repro.automata.regex,
    repro.automata.wqo,
    repro.constructions.godel,
    repro.core.intervals,
    repro.core.presence,
    repro.core.render,
    repro.core.time_domain,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_some_doctests_exist():
    total = sum(doctest.testmod(m).attempted for m in MODULES)
    assert total >= 10
