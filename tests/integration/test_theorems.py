"""Integration tests: the paper's three theorems, end to end.

Each test crosses at least three subsystems (machines -> constructions
-> automata/acceptor), mirroring exactly the claims of the PODC'12
brief announcement.
"""

import pytest

from repro.analysis.expressivity import nerode_lower_bound
from repro.automata.enumeration import language_upto
from repro.automata.equivalence import equivalent
from repro.automata.language_compute import (
    language_automaton,
    wait_language_automaton,
)
from repro.automata.operations import minimize
from repro.automata.regex import random_regex, regex_to_nfa
from repro.automata.tvg_automaton import TVGAutomaton
from repro.constructions.bounded_wait import (
    compile_bounded_wait,
    expand_for_bounded_wait,
)
from repro.constructions.figure1 import figure1_automaton
from repro.constructions.nowait_universal import clock_after, nowait_automaton_for
from repro.constructions.wait_regular import automaton_to_tvg
from repro.core.generators import periodic_random_tvg
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import ConstructionError
from repro.machines.programs import standard_deciders


class TestTheorem21:
    """L_nowait contains all computable languages."""

    @pytest.mark.parametrize("name", sorted(standard_deciders()))
    def test_construction_realizes_language(self, name):
        decider = standard_deciders()[name]
        auto = nowait_automaton_for(decider)
        bound = 6 if len(decider.alphabet) <= 2 else 5
        assert auto.language(bound, NO_WAIT) == decider.language_upto(bound)

    def test_nonregular_witness(self):
        """The realized no-wait languages exhibit growing Nerode bounds —
        the finite witness that they lie beyond every DFA."""
        decider = standard_deciders()["anbn"]
        auto = nowait_automaton_for(decider)
        shallow = nerode_lower_bound(auto.language(4, NO_WAIT), 4)
        deep = nerode_lower_bound(auto.language(8, NO_WAIT), 8)
        assert deep > shallow


class TestTheorem22:
    """L_wait is exactly the regular languages."""

    def test_every_regular_language_is_a_wait_language(self):
        for seed in range(8):
            reference = regex_to_nfa(random_regex("ab", depth=4, seed=seed))
            try:
                embedded = automaton_to_tvg(reference)
            except ConstructionError:
                continue
            assert equivalent(wait_language_automaton(embedded), reference), seed

    def test_every_periodic_wait_language_is_regular(self):
        """The extractor *is* a regularity certificate: it terminates and
        its output matches direct sampling."""
        for seed in range(6):
            g = periodic_random_tvg(4, period=4, density=0.4, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=list(g.nodes), start_time=0)
            certificate = minimize(wait_language_automaton(auto).to_dfa())
            sampled = auto.language(
                3, WAIT, horizon=40, alphabet="".join(sorted(g.alphabet))
            )
            for word in sampled:
                assert certificate.accepts(word), (seed, word)
            assert language_upto(certificate, 3) == sampled

    def test_figure1_wait_language_is_regular_but_nowait_is_not(self):
        # Depth 5 / horizon 600 samples L_wait exactly (the deepest e4
        # date any length-5 word needs is 432); deeper samples would need
        # horizons past the next prime-power date 2592.
        fig1 = figure1_automaton()
        wait_sample = fig1.language(5, WAIT, horizon=600)
        nowait_sample = fig1.language(6, NO_WAIT)
        wait_bound = nerode_lower_bound(wait_sample, 5)
        nowait_bound = nerode_lower_bound(nowait_sample, 6)
        # The true L_wait has a 6-state minimal DFA, so its sampled bound
        # stays at most 6; a^n b^n keeps needing more residuals with depth.
        assert wait_bound <= 6
        deeper = nerode_lower_bound(fig1.language(8, NO_WAIT), 8)
        assert deeper > nowait_bound


class TestTheorem23:
    """L_wait[d] = L_nowait for every fixed d."""

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_dilation_direction(self, d):
        """Every no-wait language is a wait[d] language (of the dilated graph)."""
        fig1 = figure1_automaton()
        dilated = expand_for_bounded_wait(fig1, d)
        assert dilated.language(4, bounded_wait(d), horizon=40 * (d + 1)) == (
            fig1.language(4, NO_WAIT)
        )

    @pytest.mark.parametrize("d", [1, 2])
    def test_compilation_direction(self, d):
        """Every wait[d] language is a no-wait language (of the compiled graph)."""
        for seed in range(3):
            g = periodic_random_tvg(4, period=3, density=0.5, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=3, start_time=0)
            compiled = compile_bounded_wait(auto, d)
            assert equivalent(
                language_automaton(compiled, NO_WAIT),
                language_automaton(auto, bounded_wait(d)),
            ), (seed, d)

    def test_dilated_universal_construction(self):
        """Composing Theorems 2.1 and 2.3: a^n b^n (computable, non-regular)
        as a wait[d] language — the paper's actual proof route."""
        decider = standard_deciders()["anbn"]
        base = nowait_automaton_for(decider)
        d = 2
        dilated = expand_for_bounded_wait(base, d)
        horizon = clock_after(decider, "bbbb") * (d + 1) + 1
        assert dilated.language(
            4, bounded_wait(d), horizon=horizon
        ) == decider.language_upto(4)


class TestExpressivityHierarchy:
    def test_language_chain_on_figure1(self):
        """L_nowait = L_wait[d] graphwise-monotone chain up to L_wait."""
        fig1 = figure1_automaton()
        nowait = fig1.language(4, NO_WAIT)
        d1 = fig1.language(4, bounded_wait(1), horizon=400)
        d4 = fig1.language(4, bounded_wait(4), horizon=400)
        wait = fig1.language(4, WAIT, horizon=400)
        assert nowait <= d1 <= d4 <= wait
        assert nowait != wait
