"""Integration: every layer of the library over the shared workloads.

For each registered scenario: classify it, run the protocol suite,
verify the operational results against journey theory, build the
foremost spanner, round-trip the graph through serialization, and — for
periodic scenarios — extract the wait language down to a regex string.
One test drives the whole stack the way a downstream user would.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.analysis.classes import classify
from repro.analysis.evolution import value_of_waiting
from repro.analysis.spanners import foremost_broadcast_tree, tree_subgraph
from repro.core.intervals import Interval
from repro.core.semantics import WAIT
from repro.core.serialize import dumps, loads, sampled
from repro.core.traversal import earliest_arrivals
from repro.dynamics.protocols.broadcast import (
    reachability_prediction,
    simulate_broadcast,
)
from repro.dynamics.workloads import all_workloads, make_workload


@pytest.mark.parametrize(
    "workload", all_workloads(seed=3), ids=lambda w: w.name
)
class TestEveryWorkload:
    def test_classification_runs(self, workload):
        report = classify(workload.graph, workload.start, workload.end)
        assert isinstance(report.classes, frozenset)

    def test_broadcast_matches_theory(self, workload):
        for buffering in (False, True):
            outcome = simulate_broadcast(
                workload.graph,
                workload.source,
                buffering,
                start=workload.start,
                end=workload.end,
            )
            predicted = reachability_prediction(
                workload.graph,
                workload.source,
                buffering,
                workload.start,
                workload.end,
            )
            assert set(outcome.informed) == predicted, (workload.name, buffering)

    def test_value_of_waiting_nonnegative(self, workload):
        value = value_of_waiting(workload.graph, workload.start, workload.end)
        assert value.area >= 0
        assert value.final_gap >= -1e-9

    def test_spanner_preserves_foremost(self, workload):
        tree = foremost_broadcast_tree(
            workload.graph, workload.source, workload.start, WAIT,
            horizon=workload.end,
        )
        pruned = tree_subgraph(workload.graph, tree)
        original = earliest_arrivals(
            workload.graph, workload.source, workload.start, WAIT,
            horizon=workload.end,
        )
        again = earliest_arrivals(
            pruned, workload.source, workload.start, WAIT, horizon=workload.end
        )
        assert again == original

    def test_serialization_round_trip(self, workload):
        graph = workload.graph
        try:
            text = dumps(graph)
        except Exception:
            # Black-box schedules: sample the window first.
            graph = sampled(graph, workload.start, workload.end)
            text = dumps(graph)
        again = loads(text)
        window = Interval(workload.start, workload.end)
        for edge in graph.edges:
            twin = again.edge(edge.key)
            assert list(edge.presence.support(window).times()) == list(
                twin.presence.support(window).times()
            ), (workload.name, edge.key)


class TestPeriodicPipelineToRegex:
    def test_night_bus_language_as_regex(self):
        """Timetable -> acceptor -> extraction -> minimal DFA -> regex."""
        from repro.automata.equivalence import equivalent
        from repro.automata.language_compute import wait_language_automaton
        from repro.automata.operations import minimize
        from repro.automata.regex import regex_to_nfa
        from repro.automata.to_regex import automaton_to_regex_string
        from repro.automata.tvg_automaton import TVGAutomaton
        from repro.core.transforms import graph_like

        bus = make_workload("night-bus").graph
        labeled = graph_like(bus)
        labeled.add_nodes(bus.nodes)
        for edge in bus.edges:
            line = "r" if edge.key.startswith("line0") else "g"
            labeled.add_edge_object(edge.relabeled(line))
        acceptor = TVGAutomaton(
            labeled, initial="hub", accepting="hub", start_time=0
        )
        dfa = minimize(wait_language_automaton(acceptor).to_dfa())
        assert not dfa.is_empty()
        text = automaton_to_regex_string(dfa)
        rebuilt = regex_to_nfa(text, alphabet=dfa.alphabet)
        assert equivalent(dfa, rebuilt.to_dfa())
