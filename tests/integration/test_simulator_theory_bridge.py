"""Integration tests: the operational simulator against the declarative
journey theory — the reproduction's grounding of "waiting =
store-carry-forward" in actual protocol executions."""

import pytest

from repro.analysis.connectivity import classify_connectivity
from repro.core.generators import bernoulli_tvg, edge_markovian_tvg
from repro.core.semantics import NO_WAIT, WAIT
from repro.core.traversal import earliest_arrivals
from repro.dynamics.mobility import random_waypoint_tvg
from repro.dynamics.protocols.broadcast import (
    reachability_prediction,
    simulate_broadcast,
)
from repro.dynamics.protocols.gossip import run_gossip
from repro.dynamics.protocols.routing import route_direct, route_epidemic


class TestBroadcastEqualsReachability:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("buffering", [False, True])
    def test_markovian(self, seed, buffering):
        g = edge_markovian_tvg(9, horizon=30, birth=0.07, death=0.4, seed=seed)
        outcome = simulate_broadcast(g, 0, buffering)
        assert set(outcome.informed) == reachability_prediction(
            g, 0, buffering, 0, 30
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_mobility(self, seed):
        g = random_waypoint_tvg(5, 4, 4, 20, seed=seed)
        for buffering in (False, True):
            outcome = simulate_broadcast(g, 0, buffering)
            assert set(outcome.informed) == reachability_prediction(
                g, 0, buffering, 0, 20
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_arrival_times_are_foremost(self, seed):
        """Buffered flooding delivers at exactly the foremost-journey
        arrival dates (constant latencies: first-opportunity = optimal)."""
        g = edge_markovian_tvg(8, horizon=25, birth=0.1, death=0.4, seed=seed)
        outcome = simulate_broadcast(g, 0, buffering=True)
        foremost = earliest_arrivals(g, 0, 0, WAIT, horizon=25)
        for node, time in outcome.arrival_times.items():
            assert foremost[node] == time


class TestRoutingConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_epidemic_equals_foremost(self, seed):
        g = edge_markovian_tvg(7, horizon=25, birth=0.12, death=0.4, seed=seed)
        epidemic = route_epidemic(g, 0, 6)
        direct = route_direct(g, 0, 6, 0, WAIT, horizon=25)
        assert epidemic.delivered == direct.delivered
        if direct.delivered:
            assert epidemic.delay == direct.delay

    @pytest.mark.parametrize("seed", range(4))
    def test_nowait_routing_never_beats_wait(self, seed):
        g = bernoulli_tvg(7, horizon=25, density=0.08, seed=seed)
        hot = route_direct(g, 0, 5, 0, NO_WAIT, horizon=25)
        buffered = route_direct(g, 0, 5, 0, WAIT, horizon=25)
        if hot.delivered:
            assert buffered.delivered
            assert buffered.delay <= hot.delay


class TestPaperRegimeEndToEnd:
    def test_disconnected_every_instant_yet_broadcast_completes(self):
        """The motivating phenomenon, produced and verified end to end:
        snapshots never connected, buffered broadcast still reaches all."""
        found = False
        for seed in range(12):
            g = edge_markovian_tvg(6, horizon=60, birth=0.05, death=0.7, seed=seed)
            report = classify_connectivity(g, 0, 60)
            if not report.paper_regime:
                continue
            found = True
            outcome = simulate_broadcast(g, 0, buffering=True)
            assert outcome.delivery_ratio == 1.0
            gossip = run_gossip(g)
            assert gossip.fully_mixed
            break
        assert found, "no paper-regime instance among the seeds"
