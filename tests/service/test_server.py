"""End-to-end socket tests for the asyncio JSON-lines front end.

Marked ``service``: these open real loopback sockets, which some
sandboxes forbid — deselect with ``-m "not service"`` there.
"""

import asyncio
import json

import pytest

from repro.core.builders import TVGBuilder
from repro.core.semantics import NO_WAIT, WAIT
from repro.dynamics.workloads import generate_service_trace, make_workload
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.replay import replay_service_trace
from repro.service.server import serve_service
from repro.service.service import TVGService

pytestmark = pytest.mark.service


def line_graph():
    return (
        TVGBuilder(name="line")
        .lifetime(0, 10)
        .edge("a", "b", present=[(0, 2)], key="ab")
        .edge("b", "c", present=[(5, 7)], key="bc")
        .build()
    )


def run(coroutine):
    """Run one async test body, skipping where sockets are forbidden."""
    try:
        return asyncio.run(coroutine)
    except (PermissionError, OSError) as exc:  # pragma: no cover — sandbox
        pytest.skip(f"loopback sockets unavailable: {exc}")


async def served(service):
    server = await serve_service(service, port=0)
    port = server.sockets[0].getsockname()[1]
    client = await ServiceClient.connect(port=port)
    return server, client


class TestProtocol:
    def test_queries_match_in_process_answers(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                assert await client.ping() == "pong"
                assert await client.reach("a", "c", 0, 10, "wait") is True
                assert await client.reach("a", "c", 0, 10, "nowait") is False
                assert await client.arrival("a", "c", 0, 10, "wait") == (
                    service.arrival("a", "c", 0, 10, WAIT)
                )
                assert await client.growth(0, 10, "nowait") == (
                    service.growth(0, 10, NO_WAIT)
                )
                assert await client.classify(0, 10) == service.classify(0, 10)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_mutations_over_the_socket(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                key = await client.add_edge(
                    "c", "a",
                    presence={"kind": "periodic", "pattern": [0], "period": 2},
                )
                assert await client.reach("c", "a", 0, 10, "nowait") is True
                await client.set_presence(key, {"kind": "never"})
                assert await client.reach("c", "a", 0, 10, "wait") is False
                assert await client.remove_edge(key) == key
                stats = await client.stats()
                assert stats["mutations_applied"] == 3
                assert stats["graph"]["edges"] == 2
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_errors_surface_and_connection_survives(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                with pytest.raises(ServiceError):
                    await client.request("reach", source="a")  # missing params
                with pytest.raises(ServiceError):
                    await client.remove_edge("nope")
                assert await client.ping() == "pong"  # still alive
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_bad_json_line_gets_an_error_response(self):
        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False and "bad JSON" in response["error"]
                assert response["error"].startswith("ServiceError")
                # The connection survives the bad frame.
                writer.write(b'{"op": "ping", "id": 2}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response == {"id": 2, "ok": True, "result": "pong"}
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()

        run(body())

    def test_client_surfaces_transport_error_frames(self):
        """An oversized request through ServiceClient must raise the
        server's structured message, not an id-mismatch complaint (the
        error frame carries no id — the frame was never parsed)."""

        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0, limit=1024)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port)
            try:
                with pytest.raises(ServiceError, match="frame exceeds"):
                    await client.request("ping", padding="x" * 8192)
                assert await client.ping() == "pong"  # connection realigned
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_unknown_op_gets_a_structured_error(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                with pytest.raises(ServiceError, match="unknown operation"):
                    await client.request("frobnicate")
                assert await client.ping() == "pong"  # still usable
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    @pytest.mark.parametrize("terminated", [True, False])
    def test_oversized_line_gets_an_error_and_the_connection_survives(
        self, terminated
    ):
        """A frame longer than the stream limit — whether its newline is
        already buffered or still inbound — must produce one structured
        error and leave the connection aligned for the next request."""

        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0, limit=1024)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                giant = b'{"op": "ping", "padding": "' + b"x" * 8192 + b'"}'
                if terminated:
                    writer.write(giant + b"\n")
                    await writer.drain()
                else:
                    writer.write(giant[:4096])
                    await writer.drain()
                    await asyncio.sleep(0.05)  # limit overruns mid-frame
                    writer.write(giant[4096:] + b"\n")
                    await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert "ServiceError" in response["error"]
                assert "limit" in response["error"]
                writer.write(b'{"op": "ping", "id": 9}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response == {"id": 9, "ok": True, "result": "pong"}
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()

        run(body())

    def test_one_client_shared_by_concurrent_coroutines(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                answers = await asyncio.gather(
                    client.reach("a", "c", 0, 10, "wait"),
                    client.ping(),
                    client.arrival("a", "b", 0, 10, "nowait"),
                    client.reach("a", "c", 0, 10, "nowait"),
                )
                assert answers == [True, "pong", 1, False]
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_concurrent_clients_share_one_service(self):
        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0)
            port = server.sockets[0].getsockname()[1]
            clients = [await ServiceClient.connect(port=port) for _ in range(4)]
            try:
                answers = await asyncio.gather(
                    *(c.reach("a", "c", 0, 10, "wait") for c in clients)
                )
                assert answers == [True] * 4
                # One sweep served all four: the rest were cache hits.
                assert service.cache.stats()["hits"] >= 3
            finally:
                for c in clients:
                    await c.close()
                server.close()
                await server.wait_closed()

        run(body())


class TestTraceReplayOverSocket:
    def test_socket_replay_matches_in_process_replay(self):
        """The same trace through the socket and through the dispatcher
        must produce the same answer stream (the socket adds transport,
        not semantics)."""

        async def body():
            workload = make_workload("flaky-backbone")
            trace = generate_service_trace(workload, operations=30, seed=5)
            expected = replay_service_trace(
                TVGService(make_workload("flaky-backbone").graph), trace
            )
            service = TVGService(workload.graph)
            server, client = await served(service)
            try:
                for op, want in zip(trace, expected):
                    params = {k: v for k, v in op.items() if k != "op"}
                    got = await client.request(op["op"], **params)
                    assert want["ok"], want
                    assert got == want["result"]
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())
