"""End-to-end socket tests for the asyncio JSON-lines front end.

Marked ``service``: these open real loopback sockets, which some
sandboxes forbid — deselect with ``-m "not service"`` there.
"""

import asyncio
import json

import pytest

from repro.core.builders import TVGBuilder
from repro.core.semantics import NO_WAIT, WAIT
from repro.dynamics.workloads import generate_service_trace, make_workload
from repro.errors import RateLimitError, ServiceError
from repro.service.client import ServiceClient
from repro.service.limits import GATE_RETRY_AFTER, AdmissionGate, RateLimiter
from repro.service.replay import replay_service_trace
from repro.service.server import (
    REQUIRED_PARAMS,
    ServiceFrontend,
    handle_request,
    recover_request_id,
    serve_service,
)
from repro.service.service import TVGService

pytestmark = pytest.mark.service


def line_graph():
    return (
        TVGBuilder(name="line")
        .lifetime(0, 10)
        .edge("a", "b", present=[(0, 2)], key="ab")
        .edge("b", "c", present=[(5, 7)], key="bc")
        .build()
    )


def run(coroutine):
    """Run one async test body, skipping where sockets are forbidden."""
    try:
        return asyncio.run(coroutine)
    except (PermissionError, OSError) as exc:  # pragma: no cover — sandbox
        pytest.skip(f"loopback sockets unavailable: {exc}")


async def served(service):
    server = await serve_service(service, port=0)
    port = server.sockets[0].getsockname()[1]
    client = await ServiceClient.connect(port=port)
    return server, client


class TestProtocol:
    def test_queries_match_in_process_answers(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                assert await client.ping() == "pong"
                assert await client.reach("a", "c", 0, 10, "wait") is True
                assert await client.reach("a", "c", 0, 10, "nowait") is False
                assert await client.arrival("a", "c", 0, 10, "wait") == (
                    service.arrival("a", "c", 0, 10, WAIT)
                )
                assert await client.growth(0, 10, "nowait") == (
                    service.growth(0, 10, NO_WAIT)
                )
                assert await client.classify(0, 10) == service.classify(0, 10)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_mutations_over_the_socket(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                key = await client.add_edge(
                    "c", "a",
                    presence={"kind": "periodic", "pattern": [0], "period": 2},
                )
                assert await client.reach("c", "a", 0, 10, "nowait") is True
                await client.set_presence(key, {"kind": "never"})
                assert await client.reach("c", "a", 0, 10, "wait") is False
                assert await client.remove_edge(key) == key
                stats = await client.stats()
                assert stats["mutations_applied"] == 3
                assert stats["graph"]["edges"] == 2
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_errors_surface_and_connection_survives(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                with pytest.raises(ServiceError):
                    await client.request("reach", source="a")  # missing params
                with pytest.raises(ServiceError):
                    await client.remove_edge("nope")
                assert await client.ping() == "pong"  # still alive
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_bad_json_line_gets_an_error_response(self):
        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False and "bad JSON" in response["error"]
                assert response["error"].startswith("ServiceError")
                # The connection survives the bad frame.
                writer.write(b'{"op": "ping", "id": 2}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response == {"id": 2, "ok": True, "result": "pong"}
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()

        run(body())

    def test_client_surfaces_transport_error_frames(self):
        """An oversized request through ServiceClient must raise the
        server's structured message, not an id-mismatch complaint (the
        error frame carries no id — the frame was never parsed)."""

        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0, limit=1024)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port)
            try:
                with pytest.raises(ServiceError, match="frame exceeds"):
                    await client.request("ping", padding="x" * 8192)
                assert await client.ping() == "pong"  # connection realigned
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_unknown_op_gets_a_structured_error(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                with pytest.raises(ServiceError, match="unknown operation"):
                    await client.request("frobnicate")
                assert await client.ping() == "pong"  # still usable
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    @pytest.mark.parametrize("terminated", [True, False])
    def test_oversized_line_gets_an_error_and_the_connection_survives(
        self, terminated
    ):
        """A frame longer than the stream limit — whether its newline is
        already buffered or still inbound — must produce one structured
        error and leave the connection aligned for the next request."""

        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0, limit=1024)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                giant = b'{"op": "ping", "padding": "' + b"x" * 8192 + b'"}'
                if terminated:
                    writer.write(giant + b"\n")
                    await writer.drain()
                else:
                    writer.write(giant[:4096])
                    await writer.drain()
                    await asyncio.sleep(0.05)  # limit overruns mid-frame
                    writer.write(giant[4096:] + b"\n")
                    await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert "ServiceError" in response["error"]
                assert "limit" in response["error"]
                writer.write(b'{"op": "ping", "id": 9}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response == {"id": 9, "ok": True, "result": "pong"}
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()

        run(body())

    def test_one_client_shared_by_concurrent_coroutines(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                answers = await asyncio.gather(
                    client.reach("a", "c", 0, 10, "wait"),
                    client.ping(),
                    client.arrival("a", "b", 0, 10, "nowait"),
                    client.reach("a", "c", 0, 10, "nowait"),
                )
                assert answers == [True, "pong", 1, False]
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_concurrent_clients_share_one_service(self):
        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0)
            port = server.sockets[0].getsockname()[1]
            clients = [await ServiceClient.connect(port=port) for _ in range(4)]
            try:
                answers = await asyncio.gather(
                    *(c.reach("a", "c", 0, 10, "wait") for c in clients)
                )
                assert answers == [True] * 4
                # One sweep served all four: the rest were cache hits.
                assert service.cache.stats()["hits"] >= 3
            finally:
                for c in clients:
                    await c.close()
                server.close()
                await server.wait_closed()

        run(body())


#: A complete, valid parameter set per op — the validation tests strip
#: fields from these one at a time.
_VALID_PARAMS = {
    "reach": {"source": "a", "target": "c", "start": 0, "horizon": 10},
    "arrival": {"source": "a", "target": "c", "start": 0, "horizon": 10},
    "growth": {"start": 0, "end": 10},
    "classify": {"start": 0, "end": 10},
    "add_edge": {"source": "a", "target": "c"},
    "remove_edge": {"key": "ab"},
    "set_presence": {"key": "ab", "presence": {"kind": "always"}},
    "set_workers": {"workers": []},
    "submit": {"request": {"op": "classify", "start": 0, "end": 10}},
    "status": {"task": "t1"},
    "result": {"task": "t1"},
    "cancel": {"task": "t1"},
    "stats": {},
    "ping": {},
}


class TestParamValidation:
    """Malformed requests must come back as structured errors naming the
    missing field — never a raw ``KeyError`` leaking a dispatch detail.
    These drive the dispatcher in-process: validation happens before any
    socket is involved."""

    def test_the_fixture_table_covers_every_op(self):
        assert sorted(_VALID_PARAMS) == sorted(REQUIRED_PARAMS)

    @pytest.mark.parametrize(
        "op,missing",
        [
            (op, field)
            for op, fields in REQUIRED_PARAMS.items()
            for field in fields
        ],
    )
    def test_each_missing_field_is_named(self, op, missing):
        service = TVGService(line_graph())
        params = {k: v for k, v in _VALID_PARAMS[op].items() if k != missing}
        response = handle_request(service, {"op": op, "id": 7, **params})
        assert response["id"] == 7
        assert response["ok"] is False
        assert response["error"].startswith("ServiceError")
        assert missing in response["error"]
        assert "KeyError" not in response["error"]
        service.close()

    @pytest.mark.parametrize("op", sorted(REQUIRED_PARAMS))
    def test_complete_params_pass_validation(self, op):
        service = TVGService(line_graph())
        response = handle_request(service, {"op": op, "id": 1, **_VALID_PARAMS[op]})
        # Ops referencing entities that don't exist may still fail —
        # but never on a missing *field*.
        if not response["ok"]:
            assert "missing required field" not in response["error"]
            assert "KeyError" not in response["error"]
        service.close()

    def test_all_missing_fields_reported_at_once(self):
        service = TVGService(line_graph())
        response = handle_request(service, {"op": "reach", "source": "a"})
        assert "target, start, horizon" in response["error"]
        service.close()

    def test_submit_validates_the_nested_request(self):
        service = TVGService(line_graph())
        try:
            response = handle_request(
                service, {"op": "submit", "id": 1, "request": "growth"}
            )
            assert "'request' object" in response["error"]
            response = handle_request(
                service,
                {"op": "submit", "id": 2, "request": {"op": "add_edge"}},
            )
            assert "cannot run in the background" in response["error"]
            response = handle_request(
                service,
                {"op": "submit", "id": 3, "request": {"op": "growth", "start": 0}},
            )
            assert "missing required field(s): end" in response["error"]
        finally:
            service.close()


class TestBackgroundOps:
    def test_submit_poll_result_matches_sync_answer(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                sync = await client.growth(0, 10, "wait")
                submitted = await client.request(
                    "submit",
                    request={"op": "growth", "start": 0, "end": 10,
                             "semantics": "wait"},
                )
                task = submitted["task"]
                assert submitted["version"] == service.graph.version
                status = await client.request("status", task=task)
                while status["state"] in ("queued", "running"):
                    await asyncio.sleep(0.01)
                    status = await client.request("status", task=task)
                assert status["state"] == "done"
                assert status["stale"] is False
                result = await client.request("result", task=task)
                assert [(t, r) for t, r in result] == sync
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_mutation_after_submit_marks_the_task_stale(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                submitted = await client.request(
                    "submit", request={"op": "classify", "start": 0, "end": 10}
                )
                task = submitted["task"]
                baseline = await client.classify(0, 10)
                await client.add_edge(
                    "c", "a",
                    presence={"kind": "periodic", "pattern": [0], "period": 2},
                )
                status = await client.request("status", task=task)
                while status["state"] in ("queued", "running"):
                    await asyncio.sleep(0.01)
                    status = await client.request("status", task=task)
                assert status["stale"] is True
                # The answer is the submit-time snapshot's, not the
                # mutated graph's.
                assert await client.request("result", task=task) == baseline
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_cancel_over_the_socket(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                submitted = await client.request(
                    "submit", request={"op": "growth", "start": 0, "end": 10}
                )
                cancelled = await client.request(
                    "cancel", task=submitted["task"]
                )
                assert cancelled["state"] in ("cancelled", "done")
                if cancelled["state"] == "cancelled":
                    with pytest.raises(ServiceError, match="cancelled"):
                        await client.request("result", task=submitted["task"])
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())


class TestIdCorrelation:
    def test_pipelined_requests_echo_ids_in_order(self):
        """A client that writes many frames before reading — good and
        bad interleaved — must get every response with the right id, in
        request order (the loop is strictly sequential per connection)."""

        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                frames = [
                    {"op": "ping", "id": 11},
                    {"op": "reach", "id": 12},  # missing params -> error
                    {"op": "ping", "id": 13},
                    {"op": "frobnicate", "id": 14},  # unknown -> error
                    {"op": "ping", "id": 15},
                ]
                writer.write(
                    b"".join(json.dumps(f).encode() + b"\n" for f in frames)
                )
                await writer.drain()
                responses = [
                    json.loads(await reader.readline()) for _ in frames
                ]
                assert [r["id"] for r in responses] == [11, 12, 13, 14, 15]
                assert [r["ok"] for r in responses] == [
                    True, False, True, False, True,
                ]
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_oversized_frame_error_echoes_the_recovered_id(self):
        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0, limit=1024)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                giant = (
                    b'{"op": "ping", "id": 77, "padding": "'
                    + b"x" * 8192 + b'"}\n'
                )
                writer.write(giant)
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert "frame exceeds" in response["error"]
                assert response["id"] == 77
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_recover_request_id_forms(self):
        assert recover_request_id(b'{"op": "ping", "id": 42, "x') == 42
        assert recover_request_id(b'{"id": -3}') == -3
        assert recover_request_id(b'{"id": "req-1", ') == "req-1"
        assert recover_request_id(b'{"op": "ping"') is None
        assert recover_request_id(b"") is None


class TestAdmissionControl:
    def test_rate_limited_requests_get_retry_after_frames(self):
        async def body():
            service = TVGService(line_graph())
            limiter = RateLimiter(3, window=30.0)
            server = await serve_service(service, port=0, limiter=limiter)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                for request_id in range(1, 6):
                    writer.write(
                        json.dumps({"op": "ping", "id": request_id}).encode()
                        + b"\n"
                    )
                await writer.drain()
                responses = [
                    json.loads(await reader.readline()) for _ in range(5)
                ]
                assert [r["ok"] for r in responses] == [
                    True, True, True, False, False,
                ]
                for rejection in responses[3:]:
                    assert rejection["error"].startswith("RateLimitError")
                    assert rejection["retry_after"] > 0
                # Ids echo on rejections exactly like successes.
                assert [r["id"] for r in responses] == [1, 2, 3, 4, 5]
                assert limiter.rejected == 2
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_client_raises_rate_limit_error_with_the_hint(self):
        async def body():
            service = TVGService(line_graph())
            limiter = RateLimiter(1, window=30.0)
            server = await serve_service(service, port=0, limiter=limiter)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port)
            try:
                assert await client.ping() == "pong"
                with pytest.raises(RateLimitError) as exc_info:
                    await client.ping()
                assert exc_info.value.retry_after > 0
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_rate_limit_windows_are_per_client(self):
        async def body():
            service = TVGService(line_graph())
            limiter = RateLimiter(1, window=30.0)
            server = await serve_service(service, port=0, limiter=limiter)
            port = server.sockets[0].getsockname()[1]
            first = await ServiceClient.connect(port=port)
            second = await ServiceClient.connect(port=port)
            try:
                assert await first.ping() == "pong"
                assert await second.ping() == "pong"  # separate window
                with pytest.raises(RateLimitError):
                    await first.ping()
            finally:
                await first.close()
                await second.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_gate_rejection_carries_the_fixed_hint(self):
        """The in-flight gate is hard to saturate through the strictly
        sequential event loop, so drive the frontend's respond callable
        directly with the gate pre-filled."""

        async def body():
            service = TVGService(line_graph())
            gate = AdmissionGate(1)
            frontend = ServiceFrontend(service, gate=gate)
            respond = frontend.respond_for(("127.0.0.1", 1))
            assert gate.try_acquire()  # someone else is mid-dispatch
            try:
                rejection = await respond({"op": "ping", "id": 5})
                assert rejection["ok"] is False
                assert rejection["error"].startswith("RateLimitError")
                assert rejection["id"] == 5
                assert rejection["retry_after"] == GATE_RETRY_AFTER
            finally:
                gate.release()
            accepted = await respond({"op": "ping", "id": 6})
            assert accepted == {"id": 6, "ok": True, "result": "pong"}
            assert gate.inflight == 0
            service.close()

        run(body())


class TestClientTimeout:
    def test_hung_server_times_out_cleanly(self):
        """A server that accepts but never responds must not hang the
        client forever: the request fails with a clean ServiceError and
        the (now unsynchronizable) connection is closed."""

        async def body():
            async def black_hole(reader, writer):
                await reader.read(-1)  # consume everything, answer nothing

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port, timeout=0.2)
            try:
                with pytest.raises(ServiceError, match="timed out after"):
                    await client.ping()
                # The connection is broken by contract: later requests
                # fail fast instead of desynchronizing the stream.
                with pytest.raises(ServiceError, match="timed out"):
                    await client.ping()
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_per_request_timeout_overrides_the_default(self):
        async def body():
            async def black_hole(reader, writer):
                await reader.read(-1)

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port)  # no default
            try:
                with pytest.raises(ServiceError, match="timed out after"):
                    await client.request("ping", timeout=0.2)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())

    def test_timeout_does_not_fire_on_a_responsive_server(self):
        async def body():
            service = TVGService(line_graph())
            server = await serve_service(service, port=0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port, timeout=30.0)
            try:
                assert await client.ping() == "pong"
                assert await client.reach("a", "c", 0, 10, "wait") is True
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())


class TestStatsDocument:
    def test_stats_aggregates_service_and_frontend_state(self):
        async def body():
            service = TVGService(line_graph())
            limiter = RateLimiter(100, window=1.0, margin=10)
            gate = AdmissionGate(8)
            server = await serve_service(
                service, port=0, limiter=limiter, gate=gate
            )
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port)
            try:
                await client.reach("a", "c", 0, 10, "wait")
                await client.reach("a", "c", 0, 10, "wait")  # cache hit
                await client.add_edge(
                    "c", "d",
                    presence={"kind": "periodic", "pattern": [0], "period": 2},
                )
                submitted = await client.request(
                    "submit", request={"op": "classify", "start": 0, "end": 10}
                )
                stats = await client.stats()
                # Service-side counters.
                assert stats["queries_served"] == 2
                assert stats["mutations_applied"] == 1
                assert stats["cache"]["hits"] == 1
                assert stats["tasks"]["submitted"] == 1
                assert "sweeps" in stats
                # Frontend aggregation.
                frontend = stats["frontend"]
                assert frontend["rate_limit"]["effective_limit"] == 90
                assert frontend["rate_limit"]["admitted"] >= 5
                assert frontend["admission"]["peak"] >= 1
                latency = frontend["latency"]
                assert set(latency) >= {"reach", "add_edge", "submit"}
                for block in latency.values():
                    assert block["count"] >= 1
                    assert block["p50"] <= block["p95"] <= block["p99"]
                # The whole document round-trips as JSON.
                assert json.loads(json.dumps(stats)) == stats
                assert await client.request(
                    "status", task=submitted["task"]
                )
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())

    def test_stats_without_limits_reports_null_sections(self):
        async def body():
            service = TVGService(line_graph())
            server, client = await served(service)
            try:
                stats = await client.stats()
                assert stats["frontend"]["rate_limit"] is None
                assert stats["frontend"]["admission"] is None
            finally:
                await client.close()
                server.close()
                await server.wait_closed()
                service.close()

        run(body())


class TestTraceReplayOverSocket:
    def test_socket_replay_matches_in_process_replay(self):
        """The same trace through the socket and through the dispatcher
        must produce the same answer stream (the socket adds transport,
        not semantics)."""

        async def body():
            workload = make_workload("flaky-backbone")
            trace = generate_service_trace(workload, operations=30, seed=5)
            expected = replay_service_trace(
                TVGService(make_workload("flaky-backbone").graph), trace
            )
            service = TVGService(workload.graph)
            server, client = await served(service)
            try:
                for op, want in zip(trace, expected):
                    params = {k: v for k, v in op.items() if k != "op"}
                    got = await client.request(op["op"], **params)
                    assert want["ok"], want
                    assert got == want["result"]
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body())
