"""Unit tests for the admission-control primitives in service.limits.

Everything here is deterministic: the rate limiter takes an injectable
clock, the gate and latency recorder are pure counters.  The socket-level
behaviour (rejection frames, id echo, connection survival) is covered in
``test_server.py``; these tests pin the arithmetic.
"""

import pytest

from repro.service.limits import (
    AdmissionGate,
    LatencyRecorder,
    RateLimiter,
    percentile,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRateLimiter:
    def test_admits_up_to_limit_then_rejects(self):
        clock = FakeClock()
        limiter = RateLimiter(3, window=1.0, clock=clock)
        assert [limiter.admit("c") for _ in range(3)] == [None, None, None]
        assert limiter.admit("c") is not None
        assert limiter.admitted == 3
        assert limiter.rejected == 1

    def test_window_slides(self):
        clock = FakeClock()
        limiter = RateLimiter(2, window=1.0, clock=clock)
        assert limiter.admit("c") is None
        clock.advance(0.6)
        assert limiter.admit("c") is None
        assert limiter.admit("c") is not None
        clock.advance(0.5)  # first stamp (t=0) now outside the window
        assert limiter.admit("c") is None

    def test_retry_after_is_time_until_oldest_stamp_expires(self):
        clock = FakeClock()
        limiter = RateLimiter(2, window=1.0, clock=clock)
        limiter.admit("c")
        clock.advance(0.25)
        limiter.admit("c")
        clock.advance(0.25)
        # Oldest stamp is at t=0; it leaves the window at t=1.0; now=0.5.
        assert limiter.admit("c") == pytest.approx(0.5)

    def test_rejections_do_not_extend_the_window(self):
        clock = FakeClock()
        limiter = RateLimiter(1, window=1.0, clock=clock)
        limiter.admit("c")
        for _ in range(50):  # a hammering client gains nothing...
            clock.advance(0.01)
            assert limiter.admit("c") is not None
        clock.advance(0.6)  # ...and recovers exactly when the window slides
        assert limiter.admit("c") is None

    def test_margin_lowers_the_effective_limit(self):
        clock = FakeClock()
        limiter = RateLimiter(10, window=1.0, margin=3, clock=clock)
        assert limiter.effective_limit == 7
        outcomes = [limiter.admit("c") for _ in range(10)]
        assert outcomes[:7] == [None] * 7
        assert all(hint is not None for hint in outcomes[7:])

    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = RateLimiter(1, window=1.0, clock=clock)
        assert limiter.admit("a") is None
        assert limiter.admit("b") is None
        assert limiter.admit("a") is not None
        assert limiter.tracked_clients == 2

    def test_forget_drops_window_state(self):
        clock = FakeClock()
        limiter = RateLimiter(1, window=1.0, clock=clock)
        limiter.admit("c")
        assert limiter.admit("c") is not None
        limiter.forget("c")
        assert limiter.tracked_clients == 0
        assert limiter.admit("c") is None

    def test_stats_shape(self):
        limiter = RateLimiter(5, window=2.0, margin=1, clock=FakeClock())
        limiter.admit("c")
        stats = limiter.stats()
        assert stats["limit"] == 5
        assert stats["window_seconds"] == 2.0
        assert stats["margin"] == 1
        assert stats["effective_limit"] == 4
        assert stats["admitted"] == 1
        assert stats["rejected"] == 0
        assert stats["tracked_clients"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"limit": 0},
            {"limit": -1},
            {"limit": 5, "window": 0},
            {"limit": 5, "margin": -1},
            {"limit": 5, "margin": 5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RateLimiter(**kwargs)


class TestAdmissionGate:
    def test_acquire_release_cycle(self):
        gate = AdmissionGate(2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()
        assert gate.inflight == 2

    def test_peak_tracks_highest_concurrency(self):
        gate = AdmissionGate(4)
        for _ in range(3):
            gate.try_acquire()
        gate.release()
        gate.release()
        assert gate.peak == 3
        assert gate.inflight == 1

    def test_unmatched_release_is_an_error(self):
        gate = AdmissionGate(1)
        with pytest.raises(ValueError, match="matching try_acquire"):
            gate.release()

    def test_stats_counters(self):
        gate = AdmissionGate(1)
        gate.try_acquire()
        gate.try_acquire()
        stats = gate.stats()
        assert stats == {
            "max_inflight": 1, "inflight": 1, "peak": 1,
            "admitted": 1, "rejected": 1,
        }

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            AdmissionGate(0)


class TestPercentile:
    def test_nearest_rank_convention(self):
        samples = sorted(float(v) for v in range(1, 101))
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.00) == 100.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_never_interpolates_above_the_maximum(self):
        assert percentile([1.0, 100.0], 0.99) == 100.0

    def test_empty_and_bad_q_raise(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencyRecorder:
    def test_percentiles_per_op(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record("reach", value / 1000)
        block = recorder.percentiles("reach")
        assert block["count"] == 100
        assert block["p50"] == pytest.approx(0.050)
        assert block["p95"] == pytest.approx(0.095)
        assert block["p99"] == pytest.approx(0.099)

    def test_unrecorded_op_is_none(self):
        assert LatencyRecorder().percentiles("ping") is None

    def test_reservoir_is_bounded_but_count_is_monotone(self):
        recorder = LatencyRecorder(max_samples=8)
        for _ in range(100):
            recorder.record("ping", 0.001)
        block = recorder.percentiles("ping")
        assert block["count"] == 100
        assert len(recorder._samples["ping"]) == 8

    def test_stats_covers_every_recorded_op(self):
        recorder = LatencyRecorder()
        recorder.record("reach", 0.001)
        recorder.record("stats", 0.002)
        assert sorted(recorder.stats()) == ["reach", "stats"]

    def test_rejects_nonpositive_reservoir(self):
        with pytest.raises(ValueError):
            LatencyRecorder(max_samples=0)
