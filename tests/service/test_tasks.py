"""Unit tests for the bounded background-task table.

The table is exercised directly with plain callables here — Event-gated
computes make the concurrency deterministic (a task "runs" only while
the test holds its gate open).  Service-level snapshot semantics
(version stamping, staleness, answer equality with the sync path) are
covered in ``test_service.py`` and the property suite.
"""

import threading

import pytest

from repro.errors import ServiceError
from repro.service.tasks import DEFAULT_MAX_TASKS, TaskTable


@pytest.fixture
def table():
    table = TaskTable(max_tasks=4)
    yield table
    table.shutdown(wait=True)


def test_lifecycle_submit_poll_result(table):
    task = table.submit("growth", version=3, compute=lambda: [[0, 0.5]])
    assert table.wait(task.task_id, timeout=5)
    status = table.status(task.task_id)
    assert status == {
        "task": task.task_id, "op": "growth", "state": "done", "version": 3,
    }
    assert table.result(task.task_id) == [[0, 0.5]]


def test_result_before_completion_is_a_structured_error(table):
    gate = threading.Event()
    task = table.submit("reach", version=1, compute=gate.wait)
    try:
        with pytest.raises(ServiceError, match="still (queued|running)"):
            table.result(task.task_id)
    finally:
        gate.set()


def test_failed_compute_records_the_error(table):
    def explode():
        raise ValueError("no such node")

    task = table.submit("reach", version=1, compute=explode)
    assert table.wait(task.task_id, timeout=5)
    status = table.status(task.task_id)
    assert status["state"] == "error"
    assert status["error"] == "ValueError: no such node"
    with pytest.raises(ServiceError, match="failed: ValueError: no such node"):
        table.result(task.task_id)


def test_cancel_queued_task_never_starts():
    # One worker pinned by a gated task => the second submit stays queued.
    table = TaskTable(max_tasks=4, workers=1)
    gate = threading.Event()
    ran = []
    try:
        blocker = table.submit("reach", version=1, compute=gate.wait)
        queued = table.submit(
            "reach", version=1, compute=lambda: ran.append(True)
        )
        status = table.cancel(queued.task_id)
        assert status["state"] == "cancelled"
        gate.set()
        assert table.wait(blocker.task_id, timeout=5)
        table.shutdown(wait=True)
        assert ran == []
        with pytest.raises(ServiceError, match="was cancelled"):
            table.result(queued.task_id)
    finally:
        gate.set()
        table.shutdown(wait=True)


def test_cancel_running_task_discards_its_value(table):
    gate = threading.Event()
    task = table.submit("reach", version=1, compute=lambda: gate.wait() or 42)
    # Wait for it to actually start so cancel hits the running state.
    for _ in range(500):
        if table.status(task.task_id)["state"] == "running":
            break
        threading.Event().wait(0.005)
    assert table.cancel(task.task_id)["state"] == "cancelled"
    gate.set()
    assert table.wait(task.task_id, timeout=5)
    assert table.status(task.task_id)["state"] == "cancelled"
    with pytest.raises(ServiceError, match="was cancelled"):
        table.result(task.task_id)
    assert task.value is None


def test_cancel_finished_task_is_a_noop(table):
    task = table.submit("ping", version=1, compute=lambda: "pong")
    assert table.wait(task.task_id, timeout=5)
    assert table.cancel(task.task_id)["state"] == "done"
    assert table.result(task.task_id) == "pong"


def test_unknown_task_ids_error(table):
    with pytest.raises(ServiceError, match="unknown task 'nope'"):
        table.status("nope")
    with pytest.raises(ServiceError, match="unknown task"):
        table.result("nope")
    with pytest.raises(ServiceError, match="unknown task"):
        table.cancel("nope")
    with pytest.raises(ServiceError, match="unknown task"):
        table.wait("nope")


def test_eviction_under_churn_drops_oldest_finished():
    table = TaskTable(max_tasks=3)
    try:
        first = table.submit("ping", version=1, compute=lambda: 1)
        assert table.wait(first.task_id, timeout=5)
        for _ in range(2):
            done = table.submit("ping", version=1, compute=lambda: 1)
            assert table.wait(done.task_id, timeout=5)
        assert len(table) == 3
        # Table full of finished tasks: the next submit evicts the oldest.
        table.submit("ping", version=1, compute=lambda: 1)
        assert table.evicted == 1
        with pytest.raises(ServiceError, match="evicted"):
            table.status(first.task_id)
    finally:
        table.shutdown(wait=True)


def test_backpressure_when_full_of_unfinished_tasks():
    table = TaskTable(max_tasks=2, workers=1)
    gate = threading.Event()
    try:
        table.submit("reach", version=1, compute=gate.wait)
        table.submit("reach", version=1, compute=gate.wait)
        with pytest.raises(ServiceError, match="task table full"):
            table.submit("reach", version=1, compute=lambda: 1)
        assert table.submitted == 2
    finally:
        gate.set()
        table.shutdown(wait=True)


def test_shutdown_cancels_queued_tasks():
    table = TaskTable(max_tasks=4, workers=1)
    gate = threading.Event()
    blocker = table.submit("reach", version=1, compute=gate.wait)
    queued = table.submit("reach", version=1, compute=lambda: 1)
    gate.set()
    table.shutdown(wait=True)
    assert table.status(queued.task_id)["state"] in ("cancelled", "done")
    assert table.status(blocker.task_id)["state"] == "done"
    table.shutdown(wait=True)  # idempotent


def test_stats_counters():
    table = TaskTable(max_tasks=4)
    try:
        done = table.submit("ping", version=1, compute=lambda: 1)
        assert table.wait(done.task_id, timeout=5)

        def explode():
            raise KeyError("x")

        failed = table.submit("ping", version=1, compute=explode)
        assert table.wait(failed.task_id, timeout=5)
        stats = table.stats()
        assert stats["max_tasks"] == 4
        assert stats["live"] == 2
        assert stats["submitted"] == 2
        assert stats["completed"] == 1
        assert stats["failed"] == 1
        assert stats["states"] == {"done": 1, "error": 1}
    finally:
        table.shutdown(wait=True)


def test_default_bound_and_bad_parameters():
    assert TaskTable().max_tasks == DEFAULT_MAX_TASKS
    with pytest.raises(ValueError):
        TaskTable(max_tasks=0)
    with pytest.raises(ValueError):
        TaskTable(workers=0)
