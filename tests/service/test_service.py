"""Unit tests for TVGService and the synchronous request dispatcher."""

import pytest

from repro.analysis.classes import classify
from repro.analysis.evolution import reachability_growth
from repro.core.builders import TVGBuilder
from repro.core.presence import never, periodic_presence
from repro.core.semantics import NO_WAIT, WAIT
from repro.core.traversal import earliest_arrivals
from repro.errors import ServiceError
from repro.service.server import handle_request
from repro.service.service import TVGService


@pytest.fixture()
def line_service():
    """a -> b -> c with staggered presence; a->c needs waiting."""
    graph = (
        TVGBuilder(name="line")
        .lifetime(0, 10)
        .edge("a", "b", present=[(0, 2)], key="ab")
        .edge("b", "c", present=[(5, 7)], key="bc")
        .build()
    )
    return TVGService(graph)


class TestQueries:
    def test_reach_depends_on_semantics(self, line_service):
        assert line_service.reach("a", "c", 0, 10, WAIT)
        assert not line_service.reach("a", "c", 0, 10, NO_WAIT)

    def test_arrival_matches_interpretive(self, line_service):
        graph = line_service.graph
        for semantics in (NO_WAIT, WAIT):
            oracle = earliest_arrivals(graph, "a", 0, semantics, horizon=10)
            for node in graph.nodes:
                assert line_service.arrival("a", node, 0, 10, semantics) == (
                    oracle.get(node)
                )

    def test_growth_matches_interpretive(self, line_service):
        assert line_service.growth(0, 10, WAIT) == reachability_growth(
            line_service.graph, 0, 10, WAIT
        )

    def test_classify_matches_interpretive(self, line_service):
        report = classify(line_service.graph, 0, 10)
        assert line_service.classify(0, 10) == {
            "classes": sorted(report.classes),
            "interval_connectivity": report.interval_connectivity,
        }

    def test_unknown_node_raises_service_error(self, line_service):
        with pytest.raises(ServiceError):
            line_service.arrival("a", "zz", 0, 10, WAIT)


class TestCachingAcrossMutations:
    def test_repeat_queries_hit_without_recompute(self, line_service):
        first = line_service.growth(0, 10, WAIT)
        misses = line_service.cache.misses
        for _ in range(3):
            assert line_service.growth(0, 10, WAIT) == first
        assert line_service.cache.misses == misses
        assert line_service.cache.hits >= 3

    def test_point_queries_share_one_sweep(self, line_service):
        line_service.arrival("a", "c", 0, 10, WAIT)
        misses = line_service.cache.misses
        # Different pairs, same (version, window, semantics): all hits.
        line_service.arrival("a", "b", 0, 10, WAIT)
        line_service.reach("b", "c", 0, 10, WAIT)
        assert line_service.cache.misses == misses

    def test_growth_shares_the_point_queries_sweep(self, line_service):
        """growth and reach/arrival on the same (window, semantics)
        must run ONE arrival sweep between them, not one each."""
        calls = 0
        original = line_service.engine.arrival_matrix

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return original(*args, **kwargs)

        line_service.engine.arrival_matrix = counting
        line_service.growth(0, 10, WAIT)
        line_service.reach("a", "c", 0, 10, WAIT)
        line_service.arrival("b", "c", 0, 10, WAIT)
        assert calls == 1

    def test_mutation_invalidates_and_answers_change(self, line_service):
        assert not line_service.reach("a", "c", 0, 10, NO_WAIT)
        line_service.set_presence("bc", periodic_presence([1], 2))
        assert line_service.reach("a", "c", 0, 10, NO_WAIT)
        line_service.set_presence("bc", never())
        assert not line_service.reach("a", "c", 0, 10, WAIT)

    def test_mutation_purges_stale_entries_but_retains_matrix_seeds(
        self, line_service
    ):
        line_service.growth(0, 10, WAIT)
        assert len(line_service.cache) > 0
        line_service.add_edge("c", "a", key="ca")
        # Derived entries (growth curves) are purged; the stale
        # arrival_matrix entry survives as incremental seed material.
        assert line_service.cache.purged > 0
        assert line_service.cache.retained > 0
        for _version, query in line_service.cache._entries:
            assert query[0] == "arrival_matrix"

    def test_off_mode_mutation_purges_everything(self):
        graph = (
            TVGBuilder(name="line")
            .lifetime(0, 10)
            .edge("a", "b", present=[(0, 2)], key="ab")
            .edge("b", "c", present=[(5, 7)], key="bc")
            .build()
        )
        service = TVGService(graph, incremental="off")
        service.growth(0, 10, WAIT)
        assert len(service.cache) > 0
        service.add_edge("c", "a", key="ca")
        assert len(service.cache) == 0
        assert service.cache.purged > 0

    def test_add_then_remove_roundtrip(self, line_service):
        version = line_service.graph.version
        key = line_service.add_edge("c", "a")
        assert line_service.reach("c", "a", 0, 10, WAIT)
        assert line_service.remove_edge(key) == key
        assert not line_service.reach("c", "a", 0, 10, WAIT)
        assert line_service.graph.version > version
        assert line_service.mutations_applied == 2

    def test_retained_seed_evicted_by_lru_churn_falls_back_to_full_sweep(
        self,
    ):
        """A ``retain`` predicate only spares a seed from *staleness*
        purges — plain LRU pressure from unrelated puts can still evict
        it.  The incremental path must then fall back to a full sweep
        (never a KeyError, never a stale answer) with coherent counters.
        """
        def build():
            return (
                TVGBuilder(name="line")
                .lifetime(0, 10)
                .edge("a", "b", present=[(0, 2)], key="ab")
                .edge("b", "c", present=[(5, 7)], key="bc")
                .build()
            )

        service = TVGService(build(), cache_size=2, incremental="force")
        service.arrival("a", "c", 0, 10, WAIT)  # seeds the v0 matrix
        assert service.full_sweeps == 1
        service.add_edge("c", "a", key="ca")  # seed retained across purge
        assert service.cache.retained == 1
        # Unrelated windows churn the 2-slot cache; the second put must
        # LRU-evict the retained seed (nothing refreshed it since).
        service.arrival("a", "c", 0, 8, WAIT)
        service.arrival("a", "c", 0, 9, WAIT)
        assert service.cache.evictions >= 1
        assert service.cache.ancestor(
            ("arrival_matrix", 0, 10, str(WAIT)), service.graph.version
        ) is None
        sweeps_before = service.full_sweeps
        answer = service.arrival("a", "c", 0, 10, WAIT)
        assert service.full_sweeps == sweeps_before + 1
        assert service.incremental_sweeps == 0  # no ghost seed was patched
        shadow = build()
        shadow.add_edge("c", "a", key="ca")
        oracle = earliest_arrivals(shadow, "a", 0, WAIT, horizon=10)
        assert answer == oracle.get("c")

    def test_surviving_seed_is_patched_not_reswept(self):
        """The control for the eviction case above: without LRU churn
        the same query patches the retained seed incrementally."""
        graph = (
            TVGBuilder(name="line")
            .lifetime(0, 10)
            .edge("a", "b", present=[(0, 2)], key="ab")
            .edge("b", "c", present=[(5, 7)], key="bc")
            .build()
        )
        service = TVGService(graph, cache_size=2, incremental="force")
        service.arrival("a", "c", 0, 10, WAIT)
        service.add_edge("c", "a", key="ca")
        service.arrival("a", "c", 0, 10, WAIT)
        assert service.incremental_sweeps == 1
        assert service.full_sweeps == 1

    def test_stats_shape(self, line_service):
        line_service.growth(0, 10, WAIT)
        line_service.add_edge("c", "a", key="ca")
        stats = line_service.stats()
        assert stats["graph"]["edges"] == 3
        assert stats["queries_served"] == 1
        assert stats["mutations_applied"] == 1
        assert set(stats["cache"]) >= {"entries", "hits", "misses", "purged"}


class TestDispatcher:
    def test_query_roundtrip_with_id(self, line_service):
        response = handle_request(
            line_service,
            {"op": "arrival", "id": 9, "source": "a", "target": "c",
             "start": 0, "horizon": 10, "semantics": "wait"},
        )
        assert response == {"id": 9, "ok": True, "result": 6}

    def test_semantics_defaults_to_wait(self, line_service):
        response = handle_request(
            line_service,
            {"op": "reach", "source": "a", "target": "c", "start": 0, "horizon": 10},
        )
        assert response["result"] is True

    def test_mutations_through_the_wire(self, line_service):
        added = handle_request(
            line_service,
            {"op": "add_edge", "source": "c", "target": "a", "key": "ca",
             "presence": {"kind": "periodic", "pattern": [0], "period": 2},
             "latency": {"kind": "constant", "value": 2}},
        )
        assert added == {"ok": True, "result": "ca"}
        assert line_service.reach("c", "a", 0, 10, NO_WAIT)
        swapped = handle_request(
            line_service,
            {"op": "set_presence", "key": "ca", "presence": {"kind": "never"}},
        )
        assert swapped["ok"]
        assert not line_service.reach("c", "a", 0, 10, WAIT)
        removed = handle_request(line_service, {"op": "remove_edge", "key": "ca"})
        assert removed["ok"]
        assert not line_service.graph.has_edge("ca")

    @pytest.mark.parametrize(
        "request_dict",
        [
            {"op": "unknown-op"},
            {"no-op-field": True},
            {"op": "reach", "source": "a"},  # missing params
            {"op": "reach", "source": "a", "target": "c", "start": 0,
             "horizon": 10, "semantics": "perhaps"},
            {"op": "reach", "source": "a", "target": "c", "start": 0,
             "horizon": 10, "semantics": 5},  # non-string semantics
            {"op": "growth", "start": 0, "end": 10, "semantics": None},
            {"op": "remove_edge", "key": "nope"},
            {"op": "add_edge", "source": "a", "target": "c",
             "presence": {"kind": "quantum"}},
            {"op": "growth", "start": 9, "end": 2},  # bad window
        ],
    )
    def test_bad_requests_become_error_responses(self, line_service, request_dict):
        response = handle_request(line_service, request_dict)
        assert response["ok"] is False
        assert response["error"]

    def test_one_bad_request_does_not_poison_the_service(self, line_service):
        handle_request(line_service, {"op": "reach", "source": "a"})
        good = handle_request(
            line_service,
            {"op": "reach", "source": "a", "target": "c", "start": 0, "horizon": 10},
        )
        assert good["ok"] is True

    def test_ping_and_stats(self, line_service):
        assert handle_request(line_service, {"op": "ping"})["result"] == "pong"
        stats = handle_request(line_service, {"op": "stats"})["result"]
        assert stats["graph"]["nodes"] == 3


@pytest.mark.slow
class TestShardsKnob:
    """TVGService(shards=) opts cache-miss sweeps into the sharded
    path; every answer stays identical (slow: spawns workers)."""

    def _graph(self):
        from repro.core.generators import periodic_random_tvg

        return periodic_random_tvg(10, period=4, density=0.25, seed=4)

    def test_sharded_service_answers_match_serial(self):
        serial = TVGService(self._graph(), window=(0, 12))
        sharded = TVGService(self._graph(), window=(0, 12), shards=2)
        nodes = list(serial.graph.nodes)
        for semantics in (NO_WAIT, WAIT):
            for target in nodes[1:4]:
                assert sharded.arrival(nodes[0], target, 0, 12, semantics) == (
                    serial.arrival(nodes[0], target, 0, 12, semantics)
                )
            assert sharded.growth(0, 12, semantics) == serial.growth(0, 12, semantics)
        assert sharded.classify(0, 12) == serial.classify(0, 12)

    def test_mutation_invalidates_sharded_cache_too(self):
        service = TVGService(self._graph(), window=(0, 12), shards=2)
        nodes = list(service.graph.nodes)
        service.growth(0, 12, WAIT)  # populate the cache
        version_before = service.graph.version
        service.add_edge(nodes[0], nodes[1], presence=periodic_presence([0], 2))
        assert service.graph.version != version_before  # key space moved on
        after = service.growth(0, 12, WAIT)
        # Fresh, not stale: the post-mutation answer must match a fresh
        # interpretive computation on the mutated graph.
        assert after == reachability_growth(service.graph, 0, 12, WAIT)
