"""Round-trip tests for the wire specs."""

import json

import pytest

from repro.core.latency import constant_latency, function_latency
from repro.core.parallel import SweepPlan
from repro.core.presence import (
    always,
    at_times,
    function_presence,
    interval_presence,
    never,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import ServiceError
from repro.service.wire import (
    latency_from_spec,
    latency_to_spec,
    matrix_from_spec,
    matrix_to_spec,
    parse_semantics,
    plan_from_spec,
    plan_to_spec,
    presence_from_spec,
    presence_to_spec,
)


class TestPresenceSpecs:
    @pytest.mark.parametrize(
        "presence",
        [
            always(),
            never(),
            periodic_presence([0, 2], 4),
            interval_presence([(0, 3), (7, 9)]),
            at_times([1, 4, 5]),
        ],
    )
    def test_round_trip_preserves_the_schedule(self, presence):
        spec = presence_to_spec(presence)
        json.dumps(spec)  # must be JSON-able
        rebuilt = presence_from_spec(spec)
        for t in range(0, 16):
            assert rebuilt(t) == presence(t)

    def test_none_means_always(self):
        assert presence_from_spec(None)(123)

    def test_blackbox_presence_has_no_wire_form(self):
        with pytest.raises(ServiceError):
            presence_to_spec(function_presence(lambda t: True, "opaque"))

    def test_combined_presence_has_no_wire_form(self):
        with pytest.raises(ServiceError):
            presence_to_spec(always().shifted(2))

    @pytest.mark.parametrize(
        "spec",
        [
            {"kind": "quantum"},
            {"pattern": [0]},
            "periodic",
            {"kind": "periodic", "pattern": [0]},  # missing period
            {"kind": "periodic", "pattern": [0], "period": 0},
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ServiceError):
            presence_from_spec(spec)


class TestLatencySpecs:
    def test_round_trip(self):
        spec = latency_to_spec(constant_latency(3))
        json.dumps(spec)
        assert latency_from_spec(spec)(7) == 3

    def test_none_means_unit(self):
        assert latency_from_spec(None)(0) == 1

    def test_varying_latency_has_no_wire_form(self):
        with pytest.raises(ServiceError):
            latency_to_spec(function_latency(lambda t: t + 1))

    @pytest.mark.parametrize(
        "spec", [{"kind": "affine"}, {"value": 2}, {"kind": "constant", "value": 0}]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ServiceError):
            latency_from_spec(spec)


class TestSemanticsStrings:
    @pytest.mark.parametrize(
        "semantics", [WAIT, NO_WAIT, bounded_wait(0), bounded_wait(3)]
    )
    def test_str_round_trips(self, semantics):
        assert parse_semantics(str(semantics)) == semantics

    @pytest.mark.parametrize(
        "text", ["perhaps", "wait[x]", "wait[", "WAIT", "wait[-1]", "wait[]"]
    )
    def test_unknown_strings_rejected(self, text):
        with pytest.raises(ServiceError):
            parse_semantics(text)


def _plan():
    """A small but fully-populated plan (two nodes, one scheduled edge)."""
    return SweepPlan(
        n=2,
        out_edges=((0,), ()),
        target_idx=(1,),
        contacts=((0, 2, 5),),
        arrivals=((1, 3, 7),),
        start_time=0,
        horizon=8,
        max_wait=2,
    )


class TestSweepPlanSpecs:
    def test_round_trip_through_json(self):
        plan = _plan()
        spec = plan_to_spec(plan)
        assert plan_from_spec(json.loads(json.dumps(spec))) == plan

    def test_packed_not_listed(self):
        """Contacts cross as one base64 blob, not per-element JSON."""
        spec = plan_to_spec(_plan())
        assert isinstance(spec["contacts"], str)
        assert isinstance(spec["out_edges"], str)

    @pytest.mark.parametrize(
        "corruption",
        [
            {"kind": "presence"},                         # wrong kind
            {"n": -1},                                    # negative node count
            {"n": 5},                                     # offsets no longer cover n
            {"max_wait": -2},                             # negative waiting bound
            {"max_wait": "x"},                            # non-numeric waiting bound
            {"targets": "!!not-base64!!"},                # undecodable payload
            {"targets": "AAAA"},                          # not whole int64s
            {"contacts": None},                           # missing payload
            {"out_offsets": None},                        # missing offsets
        ],
    )
    def test_malformed_specs_rejected(self, corruption):
        spec = {**plan_to_spec(_plan()), **corruption}
        with pytest.raises(ServiceError):
            plan_from_spec(spec)

    def test_truncated_payload_rejected(self):
        spec = plan_to_spec(_plan())
        # Keep valid base64 (a multiple of 4 chars) but drop half the
        # packed values, so the offsets no longer cover the payload.
        spec["arrivals"] = spec["arrivals"][: len(spec["arrivals"]) // 8 * 4]
        with pytest.raises(ServiceError):
            plan_from_spec(spec)

    def test_out_of_range_adjacency_rejected(self):
        import base64

        import numpy as np

        spec = plan_to_spec(_plan())
        spec["targets"] = base64.b64encode(
            np.asarray([9], dtype="<i8").tobytes()
        ).decode()
        with pytest.raises(ServiceError):
            plan_from_spec(spec)


class TestMatrixSpecs:
    def test_round_trip_through_json(self):
        import numpy as np

        matrix = np.arange(12, dtype=np.int64).reshape(3, 4) - 5
        spec = json.loads(json.dumps(matrix_to_spec(matrix)))
        assert np.array_equal(matrix_from_spec(spec), matrix)

    def test_empty_matrix_round_trips(self):
        import numpy as np

        matrix = np.zeros((0, 7), dtype=np.int64)
        assert matrix_from_spec(matrix_to_spec(matrix)).shape == (0, 7)

    @pytest.mark.parametrize(
        "corruption",
        [
            {"kind": "sweep_plan"},
            {"rows": 99},            # data no longer matches rows*cols
            {"rows": -1},
            {"data": "AAAA"},
            {"data": None},
        ],
    )
    def test_malformed_specs_rejected(self, corruption):
        import numpy as np

        spec = {**matrix_to_spec(np.zeros((2, 2), dtype=np.int64)), **corruption}
        with pytest.raises(ServiceError):
            matrix_from_spec(spec)
