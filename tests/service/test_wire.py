"""Round-trip tests for the wire specs."""

import json

import pytest

from repro.core.latency import constant_latency, function_latency
from repro.core.presence import (
    always,
    at_times,
    function_presence,
    interval_presence,
    never,
    periodic_presence,
)
from repro.core.semantics import NO_WAIT, WAIT, bounded_wait
from repro.errors import ServiceError
from repro.service.wire import (
    latency_from_spec,
    latency_to_spec,
    parse_semantics,
    presence_from_spec,
    presence_to_spec,
)


class TestPresenceSpecs:
    @pytest.mark.parametrize(
        "presence",
        [
            always(),
            never(),
            periodic_presence([0, 2], 4),
            interval_presence([(0, 3), (7, 9)]),
            at_times([1, 4, 5]),
        ],
    )
    def test_round_trip_preserves_the_schedule(self, presence):
        spec = presence_to_spec(presence)
        json.dumps(spec)  # must be JSON-able
        rebuilt = presence_from_spec(spec)
        for t in range(0, 16):
            assert rebuilt(t) == presence(t)

    def test_none_means_always(self):
        assert presence_from_spec(None)(123)

    def test_blackbox_presence_has_no_wire_form(self):
        with pytest.raises(ServiceError):
            presence_to_spec(function_presence(lambda t: True, "opaque"))

    def test_combined_presence_has_no_wire_form(self):
        with pytest.raises(ServiceError):
            presence_to_spec(always().shifted(2))

    @pytest.mark.parametrize(
        "spec",
        [
            {"kind": "quantum"},
            {"pattern": [0]},
            "periodic",
            {"kind": "periodic", "pattern": [0]},  # missing period
            {"kind": "periodic", "pattern": [0], "period": 0},
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ServiceError):
            presence_from_spec(spec)


class TestLatencySpecs:
    def test_round_trip(self):
        spec = latency_to_spec(constant_latency(3))
        json.dumps(spec)
        assert latency_from_spec(spec)(7) == 3

    def test_none_means_unit(self):
        assert latency_from_spec(None)(0) == 1

    def test_varying_latency_has_no_wire_form(self):
        with pytest.raises(ServiceError):
            latency_to_spec(function_latency(lambda t: t + 1))

    @pytest.mark.parametrize(
        "spec", [{"kind": "affine"}, {"value": 2}, {"kind": "constant", "value": 0}]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ServiceError):
            latency_from_spec(spec)


class TestSemanticsStrings:
    @pytest.mark.parametrize(
        "semantics", [WAIT, NO_WAIT, bounded_wait(0), bounded_wait(3)]
    )
    def test_str_round_trips(self, semantics):
        assert parse_semantics(str(semantics)) == semantics

    @pytest.mark.parametrize(
        "text", ["perhaps", "wait[x]", "wait[", "WAIT", "wait[-1]", "wait[]"]
    )
    def test_unknown_strings_rejected(self, text):
        with pytest.raises(ServiceError):
            parse_semantics(text)
