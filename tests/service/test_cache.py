"""Unit tests for the versioned LRU query cache."""

import pytest

from repro.service.cache import MISS, QueryCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get(0, "q") is MISS
        cache.put(0, "q", 42)
        assert cache.get(0, "q") == 42
        assert (cache.hits, cache.misses) == (1, 1)

    def test_none_is_a_cacheable_value(self):
        cache = QueryCache()
        cache.put(0, "unreachable-pair", None)
        assert cache.get(0, "unreachable-pair") is None
        assert cache.hits == 1

    def test_versions_partition_the_keyspace(self):
        cache = QueryCache()
        cache.put(0, "q", "old")
        cache.put(1, "q", "new")
        assert cache.get(0, "q") == "old"
        assert cache.get(1, "q") == "new"

    def test_put_overwrites(self):
        cache = QueryCache()
        cache.put(0, "q", 1)
        cache.put(0, "q", 2)
        assert cache.get(0, "q") == 2
        assert len(cache) == 1

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)


class TestLRU:
    def test_capacity_evicts_least_recently_used(self):
        cache = QueryCache(max_entries=2)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        assert cache.get(0, "a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put(0, "c", 3)
        assert cache.get(0, "b") is MISS
        assert cache.get(0, "a") == 1
        assert cache.get(0, "c") == 3
        assert cache.evictions == 1

    def test_len_never_exceeds_capacity(self):
        cache = QueryCache(max_entries=3)
        for i in range(10):
            cache.put(0, f"q{i}", i)
            assert len(cache) <= 3


class TestPurgeStale:
    def test_purges_exactly_the_stale_entries(self):
        cache = QueryCache()
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.put(1, "c", 3)
        assert cache.purge_stale(1) == 2
        assert cache.get(1, "c") == 3
        assert cache.get(0, "a") is MISS
        assert cache.purged == 2

    def test_purge_with_nothing_stale_is_a_noop(self):
        cache = QueryCache()
        cache.put(5, "a", 1)
        assert cache.purge_stale(5) == 0
        assert cache.get(5, "a") == 1


class TestRetention:
    def test_retain_predicate_keeps_matching_stale_entries(self):
        cache = QueryCache()
        cache.put(0, ("arrival_matrix", 0, 10), "matrix")
        cache.put(0, ("growth", 0, 10), "curve")
        cache.put(1, ("growth", 0, 10), "fresh")
        purged = cache.purge_stale(
            1, retain=lambda q: q[0] == "arrival_matrix"
        )
        assert purged == 1  # only the growth entry
        assert (0, ("arrival_matrix", 0, 10)) in cache
        assert (0, ("growth", 0, 10)) not in cache
        assert (1, ("growth", 0, 10)) in cache
        assert cache.purged == 1 and cache.retained == 1

    def test_retained_entries_survive_repeated_purges(self):
        cache = QueryCache()
        cache.put(0, ("arrival_matrix",), "m")
        for version in (1, 2, 3):
            cache.purge_stale(version, retain=lambda q: True)
        assert (0, ("arrival_matrix",)) in cache
        assert cache.retained == 3 and cache.purged == 0

    def test_ancestor_finds_the_newest_older_entry(self):
        cache = QueryCache()
        cache.put(1, "q", "v1")
        cache.put(3, "q", "v3")
        cache.put(5, "q", "v5")
        cache.put(3, "other", "x")
        assert cache.ancestor("q", 6) == (5, "v5")
        assert cache.ancestor("q", 5) == (3, "v3")
        assert cache.ancestor("q", 1) is None
        assert cache.ancestor("missing", 9) is None

    def test_ancestor_moves_no_hit_or_miss_counters(self):
        cache = QueryCache()
        cache.put(1, "q", "v1")
        cache.ancestor("q", 2)
        cache.ancestor("missing", 2)
        assert cache.hits == 0 and cache.misses == 0

    def test_ancestor_refreshes_recency(self):
        cache = QueryCache(max_entries=2)
        cache.put(1, "old", "seed")
        cache.put(2, "other", "x")
        assert cache.ancestor("old", 9) == (1, "seed")  # now most recent
        cache.put(2, "third", "y")  # evicts 'other', not the seed
        assert (1, "old") in cache
        assert (2, "other") not in cache


class TestAncestorIndex:
    """The per-query version index behind :meth:`ancestor` must track
    every way an entry can leave the cache — a stale index entry would
    make ``ancestor`` KeyError on a ghost, a missed removal would leak."""

    def test_eviction_removes_the_version_from_the_index(self):
        cache = QueryCache(max_entries=2)
        cache.put(1, "q", "v1")
        cache.put(3, "q", "v3")
        cache.put(5, "q", "v5")  # LRU-evicts (1, "q")
        assert cache.ancestor("q", 2) is None
        assert cache.ancestor("q", 4) == (3, "v3")

    def test_purge_removes_versions_from_the_index(self):
        cache = QueryCache()
        cache.put(1, "q", "v1")
        cache.put(2, "q", "v2")
        cache.purge_stale(2)
        assert cache.ancestor("q", 9) == (2, "v2")
        cache.purge_stale(3)
        assert cache.ancestor("q", 9) is None

    def test_retained_entries_stay_findable(self):
        cache = QueryCache()
        cache.put(1, ("arrival_matrix",), "seed")
        cache.purge_stale(4, retain=lambda q: True)
        assert cache.ancestor(("arrival_matrix",), 9) == (1, "seed")

    def test_overwrite_does_not_duplicate_the_version(self):
        cache = QueryCache(max_entries=2)
        cache.put(1, "q", "first")
        cache.put(1, "q", "second")
        assert cache.ancestor("q", 2) == (1, "second")
        cache.purge_stale(9)  # drops (1, "q") exactly once
        assert cache.ancestor("q", 2) is None

    def test_index_stays_consistent_under_churn(self):
        """Every surviving entry findable, every dead one not — after a
        mixed workload of puts, evictions, and purges."""
        cache = QueryCache(max_entries=8)
        for version in range(20):
            cache.put(version, f"q{version % 3}", version)
            if version % 7 == 6:
                cache.purge_stale(version, retain=lambda q: q == "q0")
        for query in ("q0", "q1", "q2"):
            found = cache.ancestor(query, 99)
            if found is None:
                continue
            version, value = found
            assert (version, query) in cache and value == version
        # The brute answer (scan of live entries) agrees with the index.
        for query in ("q0", "q1", "q2"):
            live = [v for (v, q) in cache._entries if q == query and v < 99]
            expected = max(live) if live else None
            found = cache.ancestor(query, 99)
            assert (found[0] if found else None) == expected


class TestObservabilitySeparation:
    """Purges, retentions, and LRU evictions must be separately visible
    — an operator watching ``stats()`` can tell write-churn invalidation
    from capacity pressure."""

    def test_purge_does_not_count_as_eviction(self):
        cache = QueryCache()
        cache.put(0, "a", 1)
        cache.purge_stale(1)
        assert cache.purged == 1 and cache.evictions == 0

    def test_eviction_does_not_count_as_purge(self):
        cache = QueryCache(max_entries=1)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        assert cache.evictions == 1 and cache.purged == 0

    def test_stats_exposes_all_three_counters(self):
        cache = QueryCache(max_entries=1)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)               # evicts a
        cache.purge_stale(1, retain=None)  # purges b
        cache.put(1, "c", 3)
        cache.purge_stale(2, retain=lambda q: True)  # retains c
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["purged"] == 1
        assert stats["retained"] == 1


class TestContains:
    def test_membership_takes_the_same_pair_as_get_and_put(self):
        cache = QueryCache()
        cache.put(3, ("arrival_matrix", 0), "m")
        assert (3, ("arrival_matrix", 0)) in cache
        assert (2, ("arrival_matrix", 0)) not in cache
        assert (3, ("growth", 0)) not in cache

    def test_membership_moves_no_counters_and_no_recency(self):
        cache = QueryCache(max_entries=2)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        assert (0, "a") in cache  # must NOT refresh 'a'
        assert cache.hits == 0 and cache.misses == 0
        cache.put(0, "c", 3)  # evicts 'a' (still LRU)
        assert (0, "a") not in cache

    def test_malformed_membership_key_is_a_type_error(self):
        cache = QueryCache()
        with pytest.raises(TypeError):
            "bare-query" in cache
        with pytest.raises(TypeError):
            (1, "q", "extra") in cache


class TestStats:
    def test_stats_snapshot(self):
        cache = QueryCache(max_entries=4)
        cache.get(0, "q")
        cache.put(0, "q", 1)
        cache.get(0, "q")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 4
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_hit_rate_without_traffic(self):
        assert QueryCache().hit_rate == 0.0
