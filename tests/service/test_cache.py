"""Unit tests for the versioned LRU query cache."""

import pytest

from repro.service.cache import MISS, QueryCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get(0, "q") is MISS
        cache.put(0, "q", 42)
        assert cache.get(0, "q") == 42
        assert (cache.hits, cache.misses) == (1, 1)

    def test_none_is_a_cacheable_value(self):
        cache = QueryCache()
        cache.put(0, "unreachable-pair", None)
        assert cache.get(0, "unreachable-pair") is None
        assert cache.hits == 1

    def test_versions_partition_the_keyspace(self):
        cache = QueryCache()
        cache.put(0, "q", "old")
        cache.put(1, "q", "new")
        assert cache.get(0, "q") == "old"
        assert cache.get(1, "q") == "new"

    def test_put_overwrites(self):
        cache = QueryCache()
        cache.put(0, "q", 1)
        cache.put(0, "q", 2)
        assert cache.get(0, "q") == 2
        assert len(cache) == 1

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)


class TestLRU:
    def test_capacity_evicts_least_recently_used(self):
        cache = QueryCache(max_entries=2)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        assert cache.get(0, "a") == 1  # refresh 'a'; 'b' is now LRU
        cache.put(0, "c", 3)
        assert cache.get(0, "b") is MISS
        assert cache.get(0, "a") == 1
        assert cache.get(0, "c") == 3
        assert cache.evictions == 1

    def test_len_never_exceeds_capacity(self):
        cache = QueryCache(max_entries=3)
        for i in range(10):
            cache.put(0, f"q{i}", i)
            assert len(cache) <= 3


class TestPurgeStale:
    def test_purges_exactly_the_stale_entries(self):
        cache = QueryCache()
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.put(1, "c", 3)
        assert cache.purge_stale(1) == 2
        assert cache.get(1, "c") == 3
        assert cache.get(0, "a") is MISS
        assert cache.purged == 2

    def test_purge_with_nothing_stale_is_a_noop(self):
        cache = QueryCache()
        cache.put(5, "a", 1)
        assert cache.purge_stale(5) == 0
        assert cache.get(5, "a") == 1


class TestStats:
    def test_stats_snapshot(self):
        cache = QueryCache(max_entries=4)
        cache.get(0, "q")
        cache.put(0, "q", 1)
        cache.get(0, "q")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 4
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_hit_rate_without_traffic(self):
        assert QueryCache().hit_rate == 0.0
