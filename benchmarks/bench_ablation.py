"""E10 (ablation) — the design choices DESIGN.md calls out, measured.

Three ablations:

* **extraction vs enumeration** — computing L_wait as an automaton vs
  sampling it word by word, across word depths.  The extractor's cost is
  flat in depth (it builds |V|·P states once); sampling grows with the
  word tree.
* **configuration dominance pruning** — deep Figure-1 wait sampling with
  the minimal-time-per-node pruning (the shipped acceptor) against the
  theoretical unpruned state count, showing why the optimization exists.
* **broadcast tree vs flood** — transmissions needed by the pruned
  foremost spanner against the full flood on the same workloads.
"""

import time

from conftest import emit

from repro import WAIT, figure1_automaton
from repro.analysis.spanners import foremost_broadcast_tree, spanner_savings
from repro.automata.enumeration import language_upto
from repro.automata.language_compute import wait_language_automaton
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.generators import periodic_random_tvg
from repro.dynamics.protocols.broadcast import simulate_broadcast
from repro.dynamics.workloads import make_workload


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1e3


def test_extraction_vs_enumeration(benchmark):
    g = periodic_random_tvg(4, period=4, density=0.5, labels="ab", seed=3)
    auto = TVGAutomaton(g, initial=0, accepting=list(g.nodes), start_time=0)

    def sweep():
        rows = []
        nfa, build_ms = _timed(lambda: wait_language_automaton(auto))
        for depth in (3, 5, 7):
            sampled, sample_ms = _timed(
                lambda d=depth: auto.language(d, WAIT, horizon=8 * (d + 1))
            )
            extracted, read_ms = _timed(lambda d=depth: language_upto(nfa, d))
            assert extracted == sampled, depth
            rows.append(
                [depth, f"{build_ms + read_ms:.1f} ms", f"{sample_ms:.1f} ms", len(sampled)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E10a  Ablation: extraction+read vs direct sampling of L_wait",
        ["depth", "extract+enumerate", "config-set sampling", "|sample|"],
        rows,
    )


def test_dominance_pruning_effect(benchmark):
    """Config counts with pruning (measured) vs without (counted)."""
    fig1 = figure1_automaton()

    def sweep():
        rows = []
        for depth in (3, 4, 5):
            horizon = 600
            configs = fig1.initial_configurations(WAIT, horizon)
            unpruned_estimate = 0
            for word_len in range(depth):
                # Without dominance, every present departure spawns a
                # distinct config; count them one step ahead.
                next_unpruned = 0
                for node, ready in configs:
                    for edge in fig1.graph.out_edges(node):
                        from repro.core.intervals import Interval

                        next_unpruned += edge.presence.support(
                            Interval(ready, horizon)
                        ).total_length()
                unpruned_estimate = max(unpruned_estimate, next_unpruned)
                # Advance pruned configs by one arbitrary symbol ('a').
                configs = fig1.step_configurations(configs, "a", WAIT, horizon)
                if not configs:
                    break
            rows.append([depth, len(configs) if configs else 0, unpruned_estimate])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E10b  Ablation: configuration counts with dominance pruning vs without",
        ["word length", "pruned configs (<= |V|)", "unpruned successor count"],
        rows,
    )
    for _depth, pruned, unpruned in rows:
        assert pruned <= 3
        assert unpruned >= pruned


def test_tree_vs_flood(benchmark):
    def sweep():
        rows = []
        for name in ("sparse-dtn", "campus-walkers", "flaky-backbone"):
            workload = make_workload(name, seed=1)
            outcome = simulate_broadcast(
                workload.graph, workload.source, buffering=True,
                start=workload.start, end=workload.end,
            )
            tree = foremost_broadcast_tree(
                workload.graph, workload.source, workload.start, WAIT,
                horizon=workload.end,
            )
            kept, total, dropped = spanner_savings(workload.graph, tree)
            rows.append(
                [
                    name,
                    outcome.transmissions,
                    kept,
                    total,
                    f"{dropped:.0%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E10c  Ablation: flood transmissions vs foremost-tree contacts",
        ["workload", "flood transmissions", "tree edges", "graph edges", "edges dropped"],
        rows,
    )
    for _name, flood_tx, tree_edges, _total, _dropped in rows:
        assert tree_edges <= flood_tx or flood_tx == 0
