"""E8 — the headline expressivity gap, as one table.

For a family of graphs spanning the paper's spectrum — Figure 1, the
Theorem 2.1 clockwork for a^n b^n, a strict regular embedding, and a
plain periodic TVG — report:

* the sampled no-wait and wait languages,
* the fraction of wait words that *require* buffering,
* Myhill–Nerode lower bounds for both samples,
* a regularity certificate (exact minimal DFA) where extraction applies.

Shape to reproduce: every wait column is certified/bounded regular;
the no-wait column of the clockwork graphs outgrows any fixed bound.
"""

from conftest import emit

from repro import NO_WAIT, WAIT, figure1_automaton, nowait_automaton_for, regex_to_tvg
from repro.analysis.expressivity import (
    language_gap,
    nerode_lower_bound,
    regularity_certificate,
)
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.generators import periodic_random_tvg
from repro.machines.programs import standard_deciders


def build_cases():
    fig1 = figure1_automaton()
    clockwork = nowait_automaton_for(standard_deciders()["anbn"])
    strict = regex_to_tvg("(ab)*", strict=True)
    periodic = TVGAutomaton(
        periodic_random_tvg(4, period=3, density=0.5, labels="ab", seed=5),
        initial=0,
        accepting=[2, 3],
        start_time=0,
    )
    return [
        ("figure1", fig1, 5, 600),
        ("thm2.1(anbn)", clockwork, 5, 6000),
        ("strict (ab)*", strict, 5, 40),
        ("periodic rnd", periodic, 4, 40),
    ]


def test_expressivity_gap(benchmark):
    def run_all():
        rows = []
        for name, auto, depth, horizon in build_cases():
            report = language_gap(auto, max_length=depth, horizon=horizon)
            rows.append(
                [
                    name,
                    len(report.nowait_sample),
                    len(report.wait_sample),
                    f"{report.gap_ratio:.2f}",
                    report.nowait_nerode,
                    report.wait_nerode,
                ]
            )
        return rows

    rows = benchmark(run_all)
    emit(
        "E8  The expressivity gap across graph families",
        ["graph", "|L_nowait|", "|L_wait|", "wait-only frac", "nowait MN>=", "wait MN>="],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # No-wait is always a subset, so the counts are ordered.
    for row in rows:
        assert row[1] <= row[2]
    # The clockwork graphs show a real gap; the strict embedding loses
    # everything but the empty word without buffering.
    assert float(by_name["figure1"][3]) > 0
    assert by_name["strict (ab)*"][1] == 1  # only '' survives no-wait
    assert float(by_name["strict (ab)*"][3]) > 0.5


def test_regularity_certificates(benchmark):
    """Exact certificates where extraction applies (periodic graphs)."""

    def run_all():
        rows = []
        for seed in range(3):
            g = periodic_random_tvg(4, period=3, density=0.5, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=3, start_time=0)
            wait_cert = regularity_certificate(auto, WAIT)
            nowait_cert = regularity_certificate(auto, NO_WAIT)
            rows.append([seed, wait_cert.state_count, nowait_cert.state_count])
        return rows

    rows = benchmark(run_all)
    emit(
        "E8b  Regularity certificates for periodic TVGs (minimal DFA sizes)",
        ["seed", "L_wait DFA", "L_nowait DFA"],
        rows,
    )
    assert rows


def test_nowait_nerode_growth(benchmark):
    """The non-regularity shadow: Figure 1's no-wait bound grows with depth."""
    fig1 = figure1_automaton()

    def run_all():
        return [
            [depth, nerode_lower_bound(fig1.language(depth, NO_WAIT), depth)]
            for depth in (4, 6, 8, 10)
        ]

    rows = benchmark(run_all)
    emit(
        "E8c  Myhill-Nerode lower bound growth for L_nowait(Figure 1)",
        ["depth", "lower bound"],
        rows,
    )
    bounds = [bound for _depth, bound in rows]
    assert bounds == sorted(bounds) and bounds[-1] > bounds[0]
