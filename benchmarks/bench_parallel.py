"""E11 — the process-sharded all-pairs arrival sweep.

Times ``TemporalEngine.arrival_matrix`` on a ~400-node periodic TVG
serially and sharded across 4 worker processes
(:mod:`repro.core.parallel`), under both WAIT and NO_WAIT.  Two claims
are checked:

* **exactness** — the sharded matrix equals the serial one element for
  element (asserted unconditionally, every run);
* **speedup** — with 4 shards on a host with >= 4 CPUs the sweep is at
  least 2x faster.  The speedup *gate* only applies where it can
  physically hold: on fewer cores the numbers are still measured and
  recorded, but the assertion is skipped (sandboxes often pin 1 CPU).

Sharding wins twice: blocks run concurrently, and each block's bitmask
is as wide as the *block*, so mask merges are a few machine words
instead of an n-bit bignum — which is why the per-block sweeps in total
cost less than one serial pass even before parallelism.  Emits
``BENCH_parallel.json`` next to this file so CI can track both effects.

Run standalone (``python benchmarks/bench_parallel.py``) or through
pytest (``pytest benchmarks/bench_parallel.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

RESULT_FILE = Path(__file__).parent / "BENCH_parallel.json"

NODES = 400
PERIOD = 8
DENSITY = 0.008
SEED = 7
HORIZON = 32
SHARDS = 4
REQUIRED_SPEEDUP = 2.0
REQUIRED_CPUS = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_benchmark() -> dict:
    import numpy as np

    from bench_common import gate_info, host_cpus, kernel_variant
    from repro.core.engine import TemporalEngine
    from repro.core.generators import periodic_random_tvg
    from repro.core.semantics import NO_WAIT, WAIT

    graph = periodic_random_tvg(
        NODES, period=PERIOD, density=DENSITY, labels="ab", seed=SEED
    )
    engine = TemporalEngine(graph)
    # Compile outside the timed sections: both paths share the index
    # (the sharded one also lowers its plan from it).
    _, compile_seconds = _timed(lambda: engine.index_for(0, HORIZON))

    results = {
        "graph": {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "period": PERIOD,
            "density": DENSITY,
            "horizon": HORIZON,
            "seed": SEED,
        },
        "compile_seconds": compile_seconds,
        "shards": SHARDS,
        "cpus": host_cpus(),
        "kernel": kernel_variant(),
        "gate": gate_info(REQUIRED_SPEEDUP, REQUIRED_CPUS),
        "cases": {},
    }

    for label, semantics in (("wait", WAIT), ("nowait", NO_WAIT)):
        (_nodes, serial), serial_seconds = _timed(
            lambda s=semantics: engine.arrival_matrix(0, s, horizon=HORIZON)
        )
        (_same, sharded), sharded_seconds = _timed(
            lambda s=semantics: engine.arrival_matrix(
                0, s, horizon=HORIZON, shards=SHARDS
            )
        )
        assert np.array_equal(serial, sharded), (
            f"sharded sweep diverged from serial under {label}"
        )
        results["cases"][f"arrival_matrix_{label}"] = {
            "serial_seconds": serial_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup": serial_seconds / sharded_seconds,
        }
    return results


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\n## E11  Sharded arrival sweep -> {RESULT_FILE.name}")
    for case, row in results["cases"].items():
        print(
            f"{case:28s} serial {row['serial_seconds'] * 1e3:9.1f} ms"
            f"   sharded({results['shards']}) {row['sharded_seconds'] * 1e3:8.1f} ms"
            f"   speedup {row['speedup']:6.2f}x"
        )


def _gate_applies() -> bool:
    return (os.cpu_count() or 1) >= REQUIRED_CPUS


def test_parallel_speedup():
    """The acceptance gate: identical matrices always; >= 2x at 4
    workers wherever 4 CPUs exist to run them."""
    results = run_benchmark()
    emit(results)
    if not _gate_applies():
        import pytest

        pytest.skip(
            f"speedup gate needs >= {REQUIRED_CPUS} CPUs "
            f"(host has {os.cpu_count()}); exactness was still asserted"
        )
    for case, row in results["cases"].items():
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{case}: speedup {row['speedup']:.2f}x below the "
            f"{REQUIRED_SPEEDUP}x floor at {SHARDS} workers"
        )


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    results = run_benchmark()
    emit(results)
    if _gate_applies():
        for case, row in results["cases"].items():
            assert row["speedup"] >= REQUIRED_SPEEDUP, (
                f"{case}: {row['speedup']:.2f}x < {REQUIRED_SPEEDUP}x"
            )
    else:
        print(
            f"(speedup gate skipped: host has {os.cpu_count()} CPUs, "
            f"needs >= {REQUIRED_CPUS}; exactness asserted)"
        )
