"""E7 — substrate scalability.

Measures how the three engines scale in their natural parameters:

* journey reachability in node count (wait semantics, fixed density);
* wait-language extraction in the declared period (states = |V| * P);
* Figure-1 acceptance in word length (the prime clockwork's cost is the
  arithmetic on huge dates, not the search).

These are the ablation numbers behind DESIGN.md's choices: temporal-state
search is polynomial in (nodes x dates), extraction linear in |V| * P.
"""

import time

from conftest import emit

from repro import NO_WAIT, WAIT, figure1_automaton
from repro.automata.language_compute import wait_language_automaton
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.generators import edge_markovian_tvg, periodic_random_tvg
from repro.core.traversal import reachable_nodes


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_reachability_scaling(benchmark):
    sizes = (8, 16, 32, 64)

    def sweep():
        rows = []
        for n in sizes:
            g = edge_markovian_tvg(
                n, horizon=40, birth=0.02, death=0.5, seed=1
            )
            reached, seconds = timed(
                lambda g=g: reachable_nodes(g, 0, 0, WAIT, horizon=40)
            )
            rows.append([n, g.edge_count, len(reached), f"{seconds * 1e3:.1f} ms"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E7a  Wait-reachability scaling in node count (T=40)",
        ["nodes", "edges", "reached", "time"],
        rows,
    )
    assert len(rows) == len(sizes)


def test_extraction_scaling(benchmark):
    periods = (2, 4, 8, 16)

    def sweep():
        rows = []
        for period in periods:
            g = periodic_random_tvg(
                5, period=period, density=0.3, labels="ab", seed=2
            )
            auto = TVGAutomaton(g, initial=0, accepting=4, start_time=0)
            nfa, seconds = timed(lambda a=auto: wait_language_automaton(a))
            rows.append([period, nfa.size, f"{seconds * 1e3:.1f} ms"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E7b  Wait-language extraction scaling in the period (|V|=5)",
        ["period", "NFA states", "time"],
        rows,
    )
    for (period, states, _t) in rows:
        assert states <= 5 * period


def test_figure1_acceptance_scaling(benchmark):
    fig1 = figure1_automaton()
    lengths = (8, 16, 32, 64)

    def sweep():
        rows = []
        for n in lengths:
            word = "a" * (n // 2) + "b" * (n // 2)
            verdict, seconds = timed(lambda w=word: fig1.accepts(w, NO_WAIT))
            rows.append([n, verdict, f"{seconds * 1e3:.2f} ms"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E7c  Figure-1 no-wait acceptance vs word length (clock = p^n q^n)",
        ["|word|", "accepted", "time"],
        rows,
    )
    assert all(verdict for _n, verdict, _t in rows)
