"""E13 — the bitset sweep kernel vs the bignum oracle, single core.

Times :func:`repro.core.sweep_kernel.sweep_block` under both kernels on
the same 400-node periodic TVG ``bench_cluster.py`` uses (so the
numbers compare directly with the wire and sharding benchmarks), under
WAIT and NO_WAIT, full source set, one process, one core.  Two claims
are checked:

* **exactness** — the bitset matrix equals the bignum matrix element
  for element, both semantics (asserted unconditionally, every run);
* **speedup** — the bitset kernel is at least 5x faster than the bignum
  kernel on the WAIT case.  Unlike the sharding/cluster gates this one
  needs no extra cores — it is a single-core algorithmic claim, so it
  applies on every host, 1-CPU sandboxes included.

The plan is lowered once outside the timed sections (both kernels
consume the identical :class:`~repro.core.parallel.SweepPlan`), so the
timings isolate the kernels themselves.  Emits ``BENCH_sweep.json``
next to this file.

Run standalone (``python benchmarks/bench_sweep_kernel.py``) or through
pytest (``pytest benchmarks/bench_sweep_kernel.py``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULT_FILE = Path(__file__).parent / "BENCH_sweep.json"

# The BENCH_cluster graph, verbatim, for cross-benchmark comparability.
NODES = 400
PERIOD = 8
DENSITY = 0.008
SEED = 7
HORIZON = 32
REQUIRED_SPEEDUP = 5.0
REQUIRED_CPUS = 1  # single-core claim: the gate always applies
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS):
    import time

    best_seconds = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return result, best_seconds


def run_benchmark() -> dict:
    import numpy as np

    from bench_common import gate_info, host_cpus
    from repro.core.engine import TemporalEngine
    from repro.core.generators import periodic_random_tvg
    from repro.core.parallel import build_sweep_plan
    from repro.core.semantics import NO_WAIT, WAIT
    from repro.core.sweep_kernel import sweep_block

    graph = periodic_random_tvg(
        NODES, period=PERIOD, density=DENSITY, labels="ab", seed=SEED
    )
    engine = TemporalEngine(graph)

    results = {
        "graph": {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "period": PERIOD,
            "density": DENSITY,
            "horizon": HORIZON,
            "seed": SEED,
        },
        "cpus": host_cpus(),
        "kernel": "bitset-vs-bignum",  # this benchmark pins both explicitly
        "repeats": REPEATS,
        "gate": gate_info(REQUIRED_SPEEDUP, REQUIRED_CPUS),
        "cases": {},
    }

    for label, semantics in (("wait", WAIT), ("nowait", NO_WAIT)):
        _nodes, plan = build_sweep_plan(engine, 0, semantics, HORIZON)
        sources = tuple(range(plan.n))
        bignum, bignum_seconds = _best_of(
            lambda: sweep_block(plan, sources, kernel="bignum")
        )
        bitset, bitset_seconds = _best_of(
            lambda: sweep_block(plan, sources, kernel="bitset")
        )
        assert np.array_equal(bitset, bignum), (
            f"bitset kernel diverged from the bignum oracle under {label}"
        )
        results["cases"][f"sweep_block_{label}"] = {
            "bignum_seconds": bignum_seconds,
            "bitset_seconds": bitset_seconds,
            "speedup": bignum_seconds / bitset_seconds,
        }
    return results


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\n## E13  Sweep kernel (bitset vs bignum) -> {RESULT_FILE.name}")
    for case, row in results["cases"].items():
        print(
            f"{case:24s} bignum {row['bignum_seconds'] * 1e3:9.1f} ms"
            f"   bitset {row['bitset_seconds'] * 1e3:8.1f} ms"
            f"   speedup {row['speedup']:6.2f}x"
        )


def _check_speedup(results: dict) -> None:
    # Only the WAIT case carries the 5x floor (the acceptance claim);
    # NO_WAIT is recorded for tracking but has far fewer mask merges to
    # amortize, so it gates at nothing here.
    row = results["cases"]["sweep_block_wait"]
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"sweep_block_wait: bitset speedup {row['speedup']:.2f}x below "
        f"the {REQUIRED_SPEEDUP}x floor over the bignum kernel"
    )


def test_kernel_speedup():
    """The acceptance gate: identical matrices always; >= 5x on WAIT on
    every host (single-core claim, no CPU prerequisite)."""
    results = run_benchmark()
    emit(results)
    _check_speedup(results)


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    results = run_benchmark()
    emit(results)
    _check_speedup(results)
