"""E11 — the query service: cache-hit latency and mutation correctness.

Two claims gate this suite:

* **throughput** — on a 120-node periodic TVG, a query answered from
  the service's versioned cache is at least 50x faster than the cold
  recompute that populated it (for both the growth curve and point
  reachability, whose sweep is shared across pairs);
* **correctness under churn** — replaying a mixed trace with >= 100
  interleaved mutations, every query answer equals a fresh
  interpretive-path computation on a shadow copy of the graph that
  mirrors the mutations independently (the benchmark-scale version of
  the stateful property harness).

Emits ``BENCH_service.json`` next to this file so CI can track the
cache speedups over time.

Run standalone (``python benchmarks/bench_service.py``) or through
pytest (``pytest benchmarks/bench_service.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

RESULT_FILE = Path(__file__).parent / "BENCH_service.json"

NODES = 120
PERIOD = 8
DENSITY = 0.03
SEED = 13
HORIZON = 24
REQUIRED_SPEEDUP = 50.0

CHURN_OPERATIONS = 300
CHURN_MUTATION_EVERY = 3  # 100 mutations in 300 operations
CHURN_SEED = 5


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_throughput() -> dict:
    from repro.core.generators import periodic_random_tvg
    from repro.core.semantics import WAIT
    from repro.service.service import TVGService

    graph = periodic_random_tvg(
        NODES, period=PERIOD, density=DENSITY, labels="ab", seed=SEED
    )
    cases = {}

    # Growth curve: the first call computes the sweep, repeats are hits.
    # Each case gets a fresh service so its cold timing really is cold.
    service = TVGService(graph, window=(0, HORIZON))
    first, cold = _timed(lambda: service.growth(0, HORIZON, WAIT))
    repeats = 100
    begun = time.perf_counter()
    for _ in range(repeats):
        assert service.growth(0, HORIZON, WAIT) == first
    hit = (time.perf_counter() - begun) / repeats
    cases["growth"] = {
        "cold_seconds": cold,
        "hit_seconds": hit,
        "speedup": cold / hit,
    }

    # Point reachability: one cold sweep serves every later pair lookup.
    service = TVGService(graph, window=(0, HORIZON))
    nodes = list(graph.nodes)
    _, cold = _timed(lambda: service.reach(nodes[0], nodes[1], 0, HORIZON, WAIT))
    begun = time.perf_counter()
    lookups = 0
    for source in nodes[:20]:
        for target in nodes[-5:]:
            service.reach(source, target, 0, HORIZON, WAIT)
            lookups += 1
    hit = (time.perf_counter() - begun) / lookups
    cases["reach"] = {
        "cold_seconds": cold,
        "hit_seconds": hit,
        "speedup": cold / hit,
    }

    # The families share the sweep: after one growth query, the first
    # reach on the same (window, semantics) is already warm.
    service = TVGService(graph, window=(0, HORIZON))
    service.growth(0, HORIZON, WAIT)
    _, shared = _timed(lambda: service.reach(nodes[0], nodes[1], 0, HORIZON, WAIT))
    assert shared < cases["reach"]["cold_seconds"] / REQUIRED_SPEEDUP, (
        "a reach after growth must reuse the growth query's sweep"
    )

    return {
        "shared_sweep_reach_seconds": shared,
        "graph": {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "period": PERIOD,
            "density": DENSITY,
            "horizon": HORIZON,
            "seed": SEED,
        },
        "required_speedup": REQUIRED_SPEEDUP,
        "cases": cases,
        "cache": service.cache.stats(),
    }


def run_churn() -> dict:
    """Replay a mutation-heavy trace, checking every answer against the
    interpretive oracle on an independently mutated shadow graph."""
    from repro.analysis.classes import classify
    from repro.analysis.evolution import reachability_growth
    from repro.core.traversal import earliest_arrivals
    from repro.dynamics.workloads import generate_service_trace, make_workload
    from repro.service.server import handle_request
    from repro.service.service import TVGService
    from repro.service.wire import (
        latency_from_spec,
        parse_semantics,
        presence_from_spec,
    )

    workload = make_workload("flaky-backbone")
    shadow = make_workload("flaky-backbone").graph
    service = TVGService(workload.graph)
    trace = generate_service_trace(
        workload,
        operations=CHURN_OPERATIONS,
        mutation_every=CHURN_MUTATION_EVERY,
        seed=CHURN_SEED,
    )

    mutations = checked = 0
    begun = time.perf_counter()
    for op in trace:
        response = handle_request(service, dict(op))
        assert response["ok"], f"replay failed on {op}: {response}"
        kind = op["op"]
        if kind == "add_edge":
            shadow.add_edge(
                op["source"], op["target"], key=op["key"],
                presence=presence_from_spec(op.get("presence")),
                latency=latency_from_spec(op.get("latency")),
            )
            mutations += 1
        elif kind == "remove_edge":
            shadow.remove_edge(op["key"])
            mutations += 1
        elif kind == "set_presence":
            shadow.set_presence(op["key"], presence_from_spec(op["presence"]))
            mutations += 1
        elif kind in ("reach", "arrival"):
            semantics = parse_semantics(op["semantics"])
            expected = earliest_arrivals(
                shadow, op["source"], op["start"], semantics,
                horizon=op["horizon"],
            ).get(op["target"])
            want = expected is not None if kind == "reach" else expected
            assert response["result"] == want, f"divergence on {op}"
            checked += 1
        elif kind == "growth":
            semantics = parse_semantics(op["semantics"])
            expected = reachability_growth(
                shadow, op["start"], op["end"], semantics
            )
            assert response["result"] == [[t, r] for t, r in expected]
            checked += 1
        else:  # classify
            report = classify(shadow, op["start"], op["end"])
            assert response["result"] == {
                "classes": sorted(report.classes),
                "interval_connectivity": report.interval_connectivity,
            }
            checked += 1
    elapsed = time.perf_counter() - begun

    assert mutations >= 100, f"churn too light: {mutations} mutations"
    return {
        "operations": len(trace),
        "mutations": mutations,
        "queries_checked": checked,
        "elapsed_seconds": elapsed,
        "ops_per_second": len(trace) / elapsed,
        "final_version": service.graph.version,
        "cache": service.cache.stats(),
    }


def run_benchmark() -> dict:
    results = run_throughput()
    results["churn"] = run_churn()
    return results


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\n## E11  Query service cache + churn -> {RESULT_FILE.name}")
    for case, row in results["cases"].items():
        print(
            f"{case:8s} cold {row['cold_seconds'] * 1e3:8.2f} ms"
            f"   hit {row['hit_seconds'] * 1e6:8.1f} us"
            f"   speedup {row['speedup']:9.0f}x"
        )
    churn = results["churn"]
    print(
        f"churn    {churn['operations']} ops ({churn['mutations']} mutations, "
        f"{churn['queries_checked']} answers checked) at "
        f"{churn['ops_per_second']:.0f} ops/s — all equal to the oracle"
    )


def test_service_cache_speedup():
    """The acceptance gate: >= 50x cache-hit speedup, correctness
    preserved across >= 100 interleaved mutations."""
    results = run_benchmark()
    emit(results)
    for case, row in results["cases"].items():
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{case}: cache-hit speedup {row['speedup']:.1f}x below the "
            f"{REQUIRED_SPEEDUP}x floor"
        )
    assert results["churn"]["mutations"] >= 100


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    test_service_cache_speedup()
