"""E9 — compiled engine vs interpretive oracle.

Times ``reachability_matrix`` and ``earliest_arrivals`` on a 200-node
periodic-presence TVG (the bench_scaling regime) through both paths and
asserts the compiled contact-sequence engine is at least 5x faster while
producing bit-identical results.  Emits ``BENCH_engine.json`` next to
this file so CI can track the speedups over time.

Run standalone (``python benchmarks/bench_engine.py``) or through pytest
(``pytest benchmarks/bench_engine.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

RESULT_FILE = Path(__file__).parent / "BENCH_engine.json"

NODES = 200
PERIOD = 8
DENSITY = 0.02
SEED = 7
HORIZON = 24
REQUIRED_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_benchmark() -> dict:
    from repro.analysis.reachability import reachability_matrix
    from repro.core.engine import TemporalEngine
    from repro.core.generators import periodic_random_tvg
    from repro.core.semantics import NO_WAIT, WAIT
    from repro.core.traversal import earliest_arrivals

    graph = periodic_random_tvg(
        NODES, period=PERIOD, density=DENSITY, labels="ab", seed=SEED
    )
    engine = TemporalEngine(graph)
    # Compile outside the timed sections: the index is built once and
    # amortized over every query, exactly how callers use it.
    _, compile_seconds = _timed(lambda: engine.index_for(0, HORIZON))

    results = {
        "graph": {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "period": PERIOD,
            "density": DENSITY,
            "horizon": HORIZON,
            "seed": SEED,
        },
        "compile_seconds": compile_seconds,
        "required_speedup": REQUIRED_SPEEDUP,
        "cases": {},
    }

    for label, semantics in (("nowait", NO_WAIT), ("wait", WAIT)):
        (_n1, oracle), interp = _timed(
            lambda s=semantics: reachability_matrix(graph, 0, s, HORIZON)
        )
        (_n2, fast), compiled = _timed(
            lambda s=semantics: reachability_matrix(graph, 0, s, HORIZON, engine=engine)
        )
        assert np.array_equal(oracle, fast), f"matrix mismatch under {label}"
        results["cases"][f"reachability_matrix_{label}"] = {
            "interpretive_seconds": interp,
            "compiled_seconds": compiled,
            "speedup": interp / compiled,
        }

    oracle, interp = _timed(lambda: earliest_arrivals(graph, 0, 0, WAIT, HORIZON))
    fast, compiled = _timed(
        lambda: earliest_arrivals(graph, 0, 0, WAIT, HORIZON, engine=engine)
    )
    assert oracle == fast, "earliest_arrivals mismatch"
    results["cases"]["earliest_arrivals_wait"] = {
        "interpretive_seconds": interp,
        "compiled_seconds": compiled,
        "speedup": interp / compiled,
    }
    return results


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\n## E9  Compiled engine vs interpretive oracle -> {RESULT_FILE.name}")
    for case, row in results["cases"].items():
        print(
            f"{case:32s} interpretive {row['interpretive_seconds'] * 1e3:9.1f} ms"
            f"   compiled {row['compiled_seconds'] * 1e3:8.1f} ms"
            f"   speedup {row['speedup']:7.1f}x"
        )


def test_engine_speedup():
    """The acceptance gate: >= 5x on both operations, identical results."""
    results = run_benchmark()
    emit(results)
    for case, row in results["cases"].items():
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{case}: speedup {row['speedup']:.1f}x below the "
            f"{REQUIRED_SPEEDUP}x floor"
        )


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    test_engine_speedup()
