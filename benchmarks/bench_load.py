"""E12 — traffic-grade load: >= 100 concurrent clients, every answer
oracle-checked, tail latency and fairness gated.

Two phases drive one shared service over real loopback sockets:

* **load** — 108 concurrent asyncio clients each replay a zipf-skewed
  query trace (:func:`~repro.dynamics.workloads.generate_load_trace`:
  a hot head of endpoints, a long cold tail) in rounds, with mutation
  churn applied between rounds and mirrored onto an independent shadow
  graph.  Every single answer must equal a fresh interpretive-path
  computation on the shadow; per-request latencies gate p99, and
  per-client wall times gate cross-client fairness (the event loop must
  not starve anyone).
* **chaos** — a rate-limited, admission-gated server takes hostile
  traffic: request hammering past the limiter, background submits
  (results must equal the synchronous answers), cancels, oversized
  frames, bad JSON, unknown ops, and missing-field requests — every one
  must come back as a structured frame on a *surviving* connection, and
  each client's final ping must succeed (over-limit traffic is refused,
  never dropped).

Emits ``BENCH_load.json`` next to this file.

Run standalone (``python benchmarks/bench_load.py``) or through pytest
(``pytest benchmarks/bench_load.py`` — marked ``slow`` and ``service``,
so the fast tier-1 gate and socketless sandboxes skip it).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.service]

RESULT_FILE = Path(__file__).parent / "BENCH_load.json"

WORKLOAD = "flaky-backbone"
N_CLIENTS = 108
ROUNDS = 3
OPS_PER_ROUND = 4
MUTATIONS_PER_ROUND = 4
ZIPF_SKEW = 1.1

#: Gate: p99 request latency over every load-phase request.  The tail
#: is head-of-line queueing: right after a mutation barrier the round's
#: first queries recompute cold sweeps serially while 107 other clients
#: wait, so p99 sees the whole backlog (that is the phenomenon the
#: background-task op family exists to dodge).  The budget bounds it
#: without assuming a quiet host.
P99_LIMIT_SECONDS = 8.0
#: Gate: slowest client's wall time over fastest client's.  The loop
#: serializes dispatch, so honest scheduling keeps clients comparable.
FAIRNESS_LIMIT = 10.0

CHAOS_CLIENTS = 16
HAMMER_REQUESTS = 30


def _build_service():
    from repro.dynamics.workloads import make_workload
    from repro.service.service import TVGService

    workload = make_workload(WORKLOAD)
    shadow = make_workload(WORKLOAD).graph
    service = TVGService(workload.graph, cache_size=256, max_tasks=32)
    return workload, shadow, service


# -- phase 1: concurrent load, every answer oracle-checked ----------------------


async def run_load_phase() -> dict:
    from repro.analysis.classes import classify
    from repro.analysis.evolution import reachability_growth
    from repro.core.traversal import earliest_arrivals
    from repro.dynamics.workloads import generate_load_trace
    from repro.service.client import ServiceClient
    from repro.service.limits import percentile
    from repro.service.server import serve_service
    from repro.service.wire import parse_semantics, presence_from_spec

    workload, shadow, service = _build_service()
    server = await serve_service(service, port=0)
    port = server.sockets[0].getsockname()[1]
    clients = [
        await ServiceClient.connect(port=port, timeout=60.0)
        for _ in range(N_CLIENTS)
    ]

    operations = ROUNDS * OPS_PER_ROUND
    traces = [
        generate_load_trace(
            workload, operations=operations, seed=index, skew=ZIPF_SKEW
        )
        for index in range(N_CLIENTS)
    ]
    mutations = generate_load_trace(
        workload,
        operations=ROUNDS * MUTATIONS_PER_ROUND,
        seed=7777,
        mutation_every=1,
    )
    assert all(op["op"] == "add_edge" for op in mutations)

    # The shadow is fixed within a round, so oracle sweeps memoize per
    # round (cleared at each mutation barrier).
    oracle_cache: dict = {}

    def oracle(op: dict):
        kind = op["op"]
        if kind in ("reach", "arrival"):
            key = ("sweep", op["source"], op["start"], op["semantics"])
            if key not in oracle_cache:
                oracle_cache[key] = earliest_arrivals(
                    shadow, op["source"], op["start"],
                    parse_semantics(op["semantics"]), horizon=op["horizon"],
                )
            arrival = oracle_cache[key].get(op["target"])
            return arrival is not None if kind == "reach" else arrival
        if kind == "growth":
            key = ("growth", op["start"], op["end"], op["semantics"])
            if key not in oracle_cache:
                curve = reachability_growth(
                    shadow, op["start"], op["end"],
                    parse_semantics(op["semantics"]),
                )
                oracle_cache[key] = [[t, r] for t, r in curve]
            return oracle_cache[key]
        key = ("classify", op["start"], op["end"])
        if key not in oracle_cache:
            report = classify(shadow, op["start"], op["end"])
            oracle_cache[key] = {
                "classes": sorted(report.classes),
                "interval_connectivity": report.interval_connectivity,
            }
        return oracle_cache[key]

    latencies: list[float] = []
    client_elapsed = [0.0] * N_CLIENTS
    checked = 0

    async def run_slice(index: int, ops: list[dict]) -> None:
        nonlocal checked
        client = clients[index]
        begun = time.perf_counter()
        for op in ops:
            params = {k: v for k, v in op.items() if k != "op"}
            sent = time.perf_counter()
            got = await client.request(op["op"], **params)
            latencies.append(time.perf_counter() - sent)
            expected = oracle(op)
            assert got == expected, (
                f"client {index} diverged from the oracle on {op}: "
                f"{got!r} != {expected!r}"
            )
            checked += 1
        client_elapsed[index] += time.perf_counter() - begun

    begun = time.perf_counter()
    mutations_applied = 0
    for round_index in range(ROUNDS):
        # Mutation barrier: churn goes through the wire serially (one
        # designated connection), mirrored onto the shadow, before the
        # round's concurrent reads fan out.
        window = slice(
            round_index * MUTATIONS_PER_ROUND,
            (round_index + 1) * MUTATIONS_PER_ROUND,
        )
        for op in mutations[window]:
            params = {k: v for k, v in op.items() if k != "op"}
            sent = time.perf_counter()
            await clients[0].request("add_edge", **params)
            latencies.append(time.perf_counter() - sent)
            shadow.add_edge(
                op["source"], op["target"], key=op["key"],
                presence=presence_from_spec(op["presence"]),
            )
            mutations_applied += 1
        oracle_cache.clear()
        window = slice(
            round_index * OPS_PER_ROUND, (round_index + 1) * OPS_PER_ROUND
        )
        await asyncio.gather(
            *(
                run_slice(index, traces[index][window])
                for index in range(N_CLIENTS)
            )
        )
    elapsed = time.perf_counter() - begun

    stats = await clients[0].stats()
    for client in clients:
        await client.close()
    server.close()
    await server.wait_closed()
    service.close()

    ordered = sorted(latencies)
    p99 = percentile(ordered, 0.99)
    fairness = max(client_elapsed) / min(client_elapsed)
    return {
        "clients": N_CLIENTS,
        "rounds": ROUNDS,
        "requests": len(latencies),
        "answers_checked": checked,
        "mutations_applied": mutations_applied,
        "elapsed_seconds": elapsed,
        "requests_per_second": len(latencies) / elapsed,
        "latency_seconds": {
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": p99,
            "max": ordered[-1],
        },
        "client_wall_seconds": {
            "fastest": min(client_elapsed),
            "slowest": max(client_elapsed),
            "fairness_ratio": fairness,
        },
        "cache": stats["cache"],
        "server_latency": stats["frontend"]["latency"],
        "gates": {
            "p99_seconds": {
                "limit": P99_LIMIT_SECONDS,
                "actual": p99,
                "pass": p99 <= P99_LIMIT_SECONDS,
            },
            "fairness_ratio": {
                "limit": FAIRNESS_LIMIT,
                "actual": fairness,
                "pass": fairness <= FAIRNESS_LIMIT,
            },
            "oracle_equality": {
                "checked": checked,
                "pass": True,  # any divergence asserted above
            },
        },
    }


# -- phase 2: hostile traffic against the hardened front end --------------------


async def run_chaos_phase() -> dict:
    from repro.errors import RateLimitError, ServiceError
    from repro.service.client import ServiceClient
    from repro.service.limits import AdmissionGate, RateLimiter
    from repro.service.server import serve_service

    workload, _shadow, service = _build_service()
    # Effective 20 requests/second per client: tight enough that the
    # hammer loop below must trip it, loose enough that polite traffic
    # (which honours every retry_after hint) always gets through.
    limiter = RateLimiter(24, window=1.0, margin=4)
    gate = AdmissionGate(64)
    server = await serve_service(
        service, port=0, limit=2048, limiter=limiter, gate=gate
    )
    port = server.sockets[0].getsockname()[1]
    start, end = workload.window

    async def polite(client, op, **params):
        """Request with back-off: honour every retry_after hint."""
        for _ in range(200):
            try:
                return await client.request(op, **params)
            except RateLimitError as exc:
                await asyncio.sleep(max(exc.retry_after or 0.01, 0.01))
        raise AssertionError(f"rate limiter never admitted {op!r}")

    counters = {
        "rate_limited": 0,
        "background_verified": 0,
        "cancelled": 0,
        "structured_errors": 0,
        "final_pings_ok": 0,
    }

    async def chaos_client(index: int) -> None:
        client = await ServiceClient.connect(port=port, timeout=60.0)
        try:
            sync_answer = await polite(
                client, "growth", start=start, end=end, semantics="wait"
            )

            # Background submit: the snapshot answer must equal the
            # synchronous one (no mutations are in flight here).
            submitted = await polite(
                client, "submit",
                request={"op": "growth", "start": start, "end": end,
                         "semantics": "wait"},
            )
            status = await polite(client, "status", task=submitted["task"])
            while status["state"] in ("queued", "running"):
                await asyncio.sleep(0.01)
                status = await polite(client, "status", task=submitted["task"])
            assert status["state"] == "done", status
            result = await polite(client, "result", task=submitted["task"])
            assert result == sync_answer
            counters["background_verified"] += 1

            # Cancel path: terminal state, structured result either way.
            if index % 2 == 0:
                extra = await polite(
                    client, "submit",
                    request={"op": "classify", "start": start, "end": end},
                )
                cancelled = await polite(client, "cancel", task=extra["task"])
                assert cancelled["state"] in ("cancelled", "done")
                counters["cancelled"] += 1

            # Hammer: fire without back-off; rejections must be
            # structured frames with hints, never dropped connections.
            for _ in range(HAMMER_REQUESTS):
                try:
                    await client.request("ping")
                except RateLimitError as exc:
                    assert exc.retry_after is not None
                    assert exc.retry_after >= 0
                    counters["rate_limited"] += 1

            # Malformed traffic: every failure is a structured error on
            # a connection that keeps working.
            try:
                await polite(client, "ping", padding="x" * 4096)
            except ServiceError as exc:
                assert "frame exceeds" in str(exc)
                counters["structured_errors"] += 1
            try:
                await polite(client, "frobnicate")
            except ServiceError as exc:
                assert "unknown operation" in str(exc)
                counters["structured_errors"] += 1
            try:
                await polite(client, "reach", source="a")
            except ServiceError as exc:
                assert "missing required field" in str(exc)
                counters["structured_errors"] += 1

            # The proof the server never dropped us: a final answered
            # ping on the same connection, for every client.
            assert await polite(client, "ping") == "pong"
            counters["final_pings_ok"] += 1
        finally:
            await client.close()

    begun = time.perf_counter()
    await asyncio.gather(*(chaos_client(i) for i in range(CHAOS_CLIENTS)))
    elapsed = time.perf_counter() - begun

    audit_client = await ServiceClient.connect(port=port, timeout=60.0)
    stats = await polite(audit_client, "stats")
    await audit_client.close()
    server.close()
    await server.wait_closed()
    service.close()

    assert counters["final_pings_ok"] == CHAOS_CLIENTS
    assert counters["background_verified"] == CHAOS_CLIENTS
    assert counters["structured_errors"] == CHAOS_CLIENTS * 3
    assert stats["tasks"]["submitted"] >= CHAOS_CLIENTS
    assert stats["frontend"]["rate_limit"]["rejected"] >= counters["rate_limited"]
    return {
        "clients": CHAOS_CLIENTS,
        "elapsed_seconds": elapsed,
        "counters": counters,
        "rate_limit": stats["frontend"]["rate_limit"],
        "admission": stats["frontend"]["admission"],
        "tasks": stats["tasks"],
        "gates": {
            "no_dropped_connections": {
                "final_pings_ok": counters["final_pings_ok"],
                "pass": counters["final_pings_ok"] == CHAOS_CLIENTS,
            },
            "background_answers_match_sync": {
                "verified": counters["background_verified"],
                "pass": counters["background_verified"] == CHAOS_CLIENTS,
            },
            "rate_limiter_exercised": {
                "rejections": counters["rate_limited"],
                "pass": counters["rate_limited"] > 0,
            },
        },
    }


def run_benchmark() -> dict:
    async def both():
        load = await run_load_phase()
        chaos = await run_chaos_phase()
        return {"load": load, "chaos": chaos}

    return asyncio.run(both())


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    load, chaos = results["load"], results["chaos"]
    lat = load["latency_seconds"]
    print(f"\n## E12  Concurrent load + chaos -> {RESULT_FILE.name}")
    print(
        f"load     {load['clients']} clients, {load['requests']} requests "
        f"({load['answers_checked']} oracle-checked, "
        f"{load['mutations_applied']} mutations) at "
        f"{load['requests_per_second']:.0f} req/s"
    )
    print(
        f"latency  p50 {lat['p50'] * 1e3:7.2f} ms   p95 {lat['p95'] * 1e3:7.2f} ms"
        f"   p99 {lat['p99'] * 1e3:7.2f} ms"
        f"   fairness {load['client_wall_seconds']['fairness_ratio']:.2f}x"
    )
    print(
        f"chaos    {chaos['clients']} clients: "
        f"{chaos['counters']['rate_limited']} rate-limited, "
        f"{chaos['counters']['background_verified']} background answers "
        f"verified, {chaos['counters']['structured_errors']} structured "
        f"errors, {chaos['counters']['final_pings_ok']} final pings ok"
    )


def test_load_gates():
    """The acceptance gates: oracle equality on every concurrent answer,
    bounded p99 tail latency, cross-client fairness, and no dropped
    connections under hostile traffic."""
    try:
        results = run_benchmark()
    except (PermissionError, OSError) as exc:  # pragma: no cover — sandbox
        pytest.skip(f"loopback sockets unavailable: {exc}")
    emit(results)
    load = results["load"]
    assert load["clients"] >= 100
    p99 = load["gates"]["p99_seconds"]
    assert p99["pass"], (
        f"p99 latency {p99['actual']:.3f}s above the {p99['limit']}s gate"
    )
    fairness = load["gates"]["fairness_ratio"]
    assert fairness["pass"], (
        f"client fairness ratio {fairness['actual']:.2f}x above the "
        f"{fairness['limit']}x gate"
    )
    assert load["answers_checked"] == N_CLIENTS * ROUNDS * OPS_PER_ROUND
    for gate in results["chaos"]["gates"].values():
        assert gate["pass"], gate


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    test_load_gates()
