"""Shared helpers for the benchmark harness.

Every benchmark prints the rows it reproduces (run with ``-s`` to see
them inline; they are also appended to ``benchmarks/results.txt`` so a
plain ``pytest benchmarks/ --benchmark-only`` leaves a record) and
asserts the *shape* of the paper's claim it regenerates.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.statistics import format_table

RESULTS_FILE = Path(__file__).parent / "results.txt"


def pytest_collect_file(file_path, parent):
    """Collect every ``bench_*.py`` suite on a directory scan.

    Pytest's default ``test_*.py`` pattern skips the bench files, so
    ``pytest benchmarks/`` would silently run nothing; this hook puts
    all BENCH suites — including ``bench_service.py`` — under the same
    collection gating without widening the pattern repo-wide.
    """
    if file_path.name.startswith("bench_") and file_path.suffix == ".py":
        if parent.session.isinitpath(file_path):
            # Named explicitly on the command line: pytest's default
            # collection already picks it up; avoid a double run.
            return None
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def emit(title: str, headers, rows) -> str:
    """Print and persist one benchmark table; returns the rendering."""
    table = format_table(headers, rows)
    block = f"\n## {title}\n{table}\n"
    print(block, flush=True)
    with open(RESULTS_FILE, "a", encoding="utf-8") as handle:
        handle.write(block)
    return table


def pytest_sessionstart(session):
    # Start each benchmark session with a fresh results file.
    if RESULTS_FILE.exists():
        RESULTS_FILE.unlink()
