"""E5 — Theorem 2.3: L_wait[d] = L_nowait.

Both constructive directions, on Figure 1 and on random periodic TVGs:

* dilation: L_wait[d](dilate(G, d+1)) == L_nowait(G) for d in {1,2,4,8};
* necessity: on the *undilated* Figure 1 graph, wait[1] already exceeds
  no-wait (the dilation, not the bound, is what defeats the budget);
* compilation: L_nowait(compile(G, d)) == L_wait[d](G) as automata.
"""

from conftest import emit

from repro import (
    NO_WAIT,
    bounded_wait,
    compile_bounded_wait,
    expand_for_bounded_wait,
    figure1_automaton,
)
from repro.automata.equivalence import equivalent
from repro.automata.language_compute import language_automaton
from repro.automata.tvg_automaton import TVGAutomaton
from repro.core.generators import periodic_random_tvg

BOUNDS = (1, 2, 4, 8)
DEPTH = 5


def test_dilation_collapse(benchmark):
    fig1 = figure1_automaton()
    reference = fig1.language(DEPTH, NO_WAIT)

    def run_all():
        rows = []
        for d in BOUNDS:
            dilated = expand_for_bounded_wait(fig1, d)
            horizon = 250 * (d + 1)
            language = dilated.language(DEPTH, bounded_wait(d), horizon=horizon)
            rows.append([d, d + 1, len(language), language == reference])
        return rows

    rows = benchmark(run_all)
    assert all(row[-1] for row in rows)
    emit(
        "E5a  Theorem 2.3: L_wait[d](dilate(Fig1, d+1)) == L_nowait(Fig1)",
        ["d", "dilation", "|sample|", "equals L_nowait"],
        rows,
    )


def test_dilation_is_necessary(benchmark):
    fig1 = figure1_automaton()
    nowait = fig1.language(4, NO_WAIT)
    bounded = benchmark(
        lambda: fig1.language(4, bounded_wait(1), horizon=300)
    )
    gained = bounded - nowait
    assert gained  # without dilation, even wait[1] gains words
    emit(
        "E5b  Undilated Figure 1: wait[1] already exceeds no-wait",
        ["quantity", "value"],
        [
            ["|L_nowait| (len<=4)", len(nowait)],
            ["|L_wait[1]| (len<=4)", len(bounded)],
            ["words gained by d=1", sorted(gained, key=lambda w: (len(w), w))],
        ],
    )


def test_compilation_direction(benchmark):
    def run_all():
        rows = []
        for seed in range(4):
            g = periodic_random_tvg(4, period=3, density=0.5, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=3, start_time=0)
            for d in (1, 2):
                compiled = compile_bounded_wait(auto, d)
                ok = equivalent(
                    language_automaton(compiled, NO_WAIT),
                    language_automaton(auto, bounded_wait(d)),
                )
                rows.append([seed, d, compiled.graph.node_count, ok])
        return rows

    rows = benchmark(run_all)
    assert rows and all(row[-1] for row in rows)
    emit(
        "E5c  Converse: L_nowait(compile(G, d)) == L_wait[d](G), exactly",
        ["seed", "d", "compiled |V|", "equivalent"],
        rows,
    )
