"""E9 (extension) — placing TVG languages on the Chomsky ladder.

The paper's three theorems are statements about where TVG languages sit
in the classical hierarchy.  This benchmark makes the placement
operational: for each showcase graph/semantics pair it runs three
instruments —

* regular side: exact extraction certificate (periodic/finite graphs) or
  the pumping refutation ladder (does any small-DFA hypothesis survive?);
* context-free side: CYK equality against the stock grammar;
* routing cost of the same hierarchy in the network world: direct-wait
  vs spray-and-wait vs PRoPHET vs epidemic on a common scenario.
"""

from conftest import emit

from repro import NO_WAIT, WAIT, figure1_automaton
from repro.automata.grammars import cfg_anbn
from repro.automata.pumping import refuted_state_bound
from repro.core.generators import edge_markovian_tvg
from repro.dynamics.protocols.prophet import route_prophet
from repro.dynamics.protocols.routing import route_direct, route_epidemic
from repro.dynamics.protocols.spray_and_wait import spray_and_wait


def test_chomsky_placement(benchmark):
    fig1 = figure1_automaton()

    def run():
        nowait = fig1.language(8, NO_WAIT)
        wait = fig1.language(6, WAIT, horizon=2600)
        cfg_match = nowait == cfg_anbn().language_upto(8)
        nowait_refuted = refuted_state_bound(
            lambda w: w in nowait, "ab", max_pumping_length=3, word_depth=8
        )
        wait_refuted = refuted_state_bound(
            lambda w: w in wait, "ab", max_pumping_length=3, word_depth=6
        )
        return cfg_match, nowait_refuted, wait_refuted

    cfg_match, nowait_refuted, wait_refuted = benchmark(run)
    rows = [
        ["L_nowait(Fig1) == CFG(anbn) sample", cfg_match],
        ["L_nowait: DFAs refuted up to states", nowait_refuted],
        ["L_wait:   DFAs refuted up to states", wait_refuted],
    ]
    emit(
        "E9  Chomsky placement of Figure 1's two languages",
        ["instrument", "value"],
        rows,
    )
    assert cfg_match
    # The no-wait language refutes small DFAs; the wait language (true
    # minimal DFA: 6 states) cannot refute pumping length 3 forever —
    # but at these sampled depths both sides behave as expected:
    assert nowait_refuted >= 2


def test_routing_hierarchy(benchmark):
    """Waiting-enabled protocols ranked by copies vs delay."""

    def run():
        rows = []
        for seed in (1, 2, 3):
            g = edge_markovian_tvg(10, horizon=50, birth=0.1, death=0.4, seed=seed)
            direct = route_direct(g, 0, 9, 0, WAIT, horizon=50)
            spray = spray_and_wait(g, 0, 9, copies=4)
            prophet = route_prophet(g, 0, 9)
            epidemic = route_epidemic(g, 0, 9)
            rows.append(
                [
                    seed,
                    _cell(direct.delivered, direct.delay),
                    _cell(spray.delivered, spray.delay),
                    _cell(prophet.delivered, prophet.delay),
                    _cell(epidemic.delivered, epidemic.delay),
                    epidemic.transmissions,
                ]
            )
        return rows

    rows = benchmark(run)
    emit(
        "E9b  Waiting-enabled routing family (delay; '-' = undelivered)",
        ["seed", "direct(wait)", "spray&wait(4)", "prophet", "epidemic", "epidemic tx"],
        rows,
    )
    # Epidemic is the delay-optimal waiting protocol: whenever it
    # delivers, no other protocol in the family beat its delay.
    for row in rows:
        delays = [_parse(cell) for cell in row[1:5]]
        epidemic_delay = delays[3]
        if epidemic_delay is not None:
            for other in delays[:3]:
                if other is not None:
                    assert other >= epidemic_delay


def _cell(delivered, delay):
    return delay if delivered else "-"


def _parse(cell):
    return None if cell == "-" else int(cell)


def test_learnability_contrast(benchmark):
    """E9c: Theorem 2.2 as learnability.

    RPNI learns the wait language of Figure 1 exactly from a bounded
    sample (it is regular, so a finite target exists); machines learned
    from deepening no-wait samples keep growing (no finite target).
    """
    from repro.automata.learning import learn_from_language_sample
    from repro.automata.operations import minimize

    fig1 = figure1_automaton()

    def run():
        wait_sample = fig1.language(6, WAIT, horizon=2600)
        wait_size = len(
            minimize(learn_from_language_sample(wait_sample, "ab", 6)).states
        )
        nowait_sizes = []
        for depth in (4, 6, 8):
            sample = fig1.language(depth, NO_WAIT)
            nowait_sizes.append(
                len(minimize(learn_from_language_sample(sample, "ab", depth)).states)
            )
        return wait_size, nowait_sizes

    wait_size, nowait_sizes = benchmark(run)
    rows = [
        ["L_wait, learned DFA size (depth 6)", wait_size],
        ["L_nowait, learned sizes (depths 4/6/8)", "/".join(map(str, nowait_sizes))],
    ]
    emit("E9c  Learnability: a finite target exists only under waiting",
         ["instrument", "value"], rows)
    assert nowait_sizes[-1] > nowait_sizes[0]
    assert wait_size <= 7
