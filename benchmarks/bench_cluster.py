"""E12 — the distributed arrival sweep over the wire.

Times ``TemporalEngine.arrival_matrix`` on a ~400-node periodic TVG
serially and distributed across 2 **real worker processes** (spawned
via ``python -m repro worker``, talked to over loopback TCP by the
:class:`~repro.service.cluster.ClusterExecutor`), under both WAIT and
NO_WAIT.  Three claims are checked:

* **exactness** — the distributed matrix equals the serial one element
  for element (asserted unconditionally, every run);
* **fault-tolerant exactness** — with one dead worker address in the
  fleet the failed blocks are re-swept locally and the matrix is STILL
  identical (also asserted unconditionally — the fallback is the
  product, not a best-effort);
* **speedup** — with 2 workers on a host with >= 2 usable cores the
  sweep is at least 1.2x faster than serial despite paying JSON + TCP
  for the plan and the sub-matrices.  The speedup *gate* only applies
  where it can physically hold: below 2 cores the numbers are still
  measured and recorded, but the assertion self-skips (sandboxes often
  pin 1 CPU);
* **sticky plans** — repeated sweeps of one ``(version, window,
  semantics, kernel)`` ship the full plan to each worker at most once
  (fingerprint-only jobs after), cutting bytes-on-wire by at least 5x
  against per-job plan shipping.  Asserted unconditionally — it is a
  protocol property, not a host-speed property.

Emits ``BENCH_cluster.json`` next to this file so CI can track the
wire overhead, the recovery counters, and the sticky-plan byte counts.

Run standalone (``python benchmarks/bench_cluster.py``) or through
pytest (``pytest benchmarks/bench_cluster.py``).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path

RESULT_FILE = Path(__file__).parent / "BENCH_cluster.json"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

NODES = 400
PERIOD = 8
DENSITY = 0.008
SEED = 7
HORIZON = 32
WORKERS = 2
REQUIRED_SPEEDUP = 1.2
REQUIRED_CPUS = 2
REPEAT_SWEEPS = 5
REQUIRED_WIRE_REDUCTION = 5.0

_PORT_PATTERN = re.compile(r"worker listening on \('[^']+', (\d+)\)")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def spawn_workers(count: int) -> list[tuple[subprocess.Popen, str]]:
    """``count`` real ``repro worker`` processes on free loopback ports."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    workers: list[tuple[subprocess.Popen, str]] = []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--port", "0"],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
            )
            line = proc.stdout.readline()
            match = _PORT_PATTERN.search(line)
            if not match:
                raise RuntimeError(f"worker did not report a port: {line!r}")
            workers.append((proc, f"127.0.0.1:{int(match.group(1))}"))
    except Exception:
        stop_workers(workers)
        raise
    return workers


def stop_workers(workers) -> None:
    for proc, _address in workers:
        proc.terminate()
    for proc, _address in workers:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover — stuck worker
            proc.kill()
            proc.wait()


def run_benchmark() -> dict:
    import numpy as np

    from bench_common import gate_info, host_cpus, kernel_variant
    from repro.core.engine import TemporalEngine
    from repro.core.generators import periodic_random_tvg
    from repro.core.semantics import NO_WAIT, WAIT
    from repro.service.cluster import ClusterExecutor

    graph = periodic_random_tvg(
        NODES, period=PERIOD, density=DENSITY, labels="ab", seed=SEED
    )
    engine = TemporalEngine(graph)
    # Compile outside the timed sections: both paths share the index
    # (the distributed one also lowers its plan from it).
    _, compile_seconds = _timed(lambda: engine.index_for(0, HORIZON))

    results = {
        "graph": {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "period": PERIOD,
            "density": DENSITY,
            "horizon": HORIZON,
            "seed": SEED,
        },
        "compile_seconds": compile_seconds,
        "workers": WORKERS,
        "cpus": host_cpus(),
        "kernel": kernel_variant(),
        "gate": gate_info(REQUIRED_SPEEDUP, REQUIRED_CPUS),
        "cases": {},
    }

    workers = spawn_workers(WORKERS)
    try:
        cluster = ClusterExecutor([address for _proc, address in workers])
        for label, semantics in (("wait", WAIT), ("nowait", NO_WAIT)):
            (_nodes, serial), serial_seconds = _timed(
                lambda s=semantics: engine.arrival_matrix(0, s, horizon=HORIZON)
            )
            (_same, distributed), cluster_seconds = _timed(
                lambda s=semantics: engine.arrival_matrix(
                    0, s, horizon=HORIZON, cluster=cluster
                )
            )
            assert np.array_equal(serial, distributed), (
                f"distributed sweep diverged from serial under {label}"
            )
            results["cases"][f"arrival_matrix_{label}"] = {
                "serial_seconds": serial_seconds,
                "cluster_seconds": cluster_seconds,
                "speedup": serial_seconds / cluster_seconds,
            }
        assert cluster.jobs_recovered == 0, (
            "healthy workers should not have needed local re-runs"
        )

        # Fault tolerance: one live worker plus one dead address — the
        # dead worker's blocks fall back locally, the answer must not
        # change by a single element.
        faulty_fleet = ClusterExecutor([workers[0][1], "127.0.0.1:1"], timeout=5.0)
        (_also, recovered), recovered_seconds = _timed(
            lambda: engine.arrival_matrix(0, WAIT, horizon=HORIZON, cluster=faulty_fleet)
        )
        _ignored, serial_wait = engine.arrival_matrix(0, WAIT, horizon=HORIZON)
        assert np.array_equal(recovered, serial_wait), (
            "the dead-worker fallback changed the answer"
        )
        assert faulty_fleet.jobs_recovered >= 1, (
            "the dead worker's block was never re-run locally"
        )
        results["cases"]["arrival_matrix_wait_one_dead_worker"] = {
            "cluster_seconds": recovered_seconds,
            "jobs_shipped": faulty_fleet.jobs_shipped,
            "jobs_recovered": faulty_fleet.jobs_recovered,
        }

        # Sticky plans: a fresh executor sweeping the same (version,
        # window, semantics, kernel) repeatedly ships the plan to each
        # worker at most once — every later job is fingerprint-only.
        from repro.core.parallel import build_sweep_plan
        from repro.service.wire import plan_to_spec

        _lowered, plan = build_sweep_plan(engine, 0, WAIT, HORIZON)
        plan_frame_bytes = len(json.dumps(plan_to_spec(plan))) + 1
        sticky = ClusterExecutor([address for _proc, address in workers])
        sticky_seconds = 0.0
        for _ in range(REPEAT_SWEEPS):
            (_n, repeated), one_sweep = _timed(
                lambda: engine.arrival_matrix(
                    0, WAIT, horizon=HORIZON, cluster=sticky
                )
            )
            sticky_seconds += one_sweep
            assert np.array_equal(repeated, serial_wait), (
                "a sticky-cached sweep diverged from serial"
            )
        assert sticky.plans_shipped <= WORKERS, (
            f"plan shipped {sticky.plans_shipped} times across "
            f"{REPEAT_SWEEPS} sweeps — more than once per worker"
        )
        assert sticky.plan_misses == 0 and sticky.jobs_recovered == 0
        # The baseline this executor replaced: every block job carries
        # the full plan frame.
        naive_bytes = sticky.jobs_shipped * plan_frame_bytes
        wire_reduction = naive_bytes / sticky.bytes_sent
        assert wire_reduction >= REQUIRED_WIRE_REDUCTION, (
            f"sticky plans cut wire bytes only {wire_reduction:.1f}x vs "
            f"per-job shipping (floor {REQUIRED_WIRE_REDUCTION}x)"
        )
        results["cases"]["sticky_plan_wire"] = {
            "repeat_sweeps": REPEAT_SWEEPS,
            "cluster_seconds": sticky_seconds,
            "jobs_shipped": sticky.jobs_shipped,
            "plans_shipped": sticky.plans_shipped,
            "plan_frame_bytes": plan_frame_bytes,
            "bytes_sent": sticky.bytes_sent,
            "bytes_received": sticky.bytes_received,
            "naive_plan_bytes": naive_bytes,
            "wire_reduction": wire_reduction,
        }
    finally:
        stop_workers(workers)
    return results


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\n## E12  Distributed arrival sweep -> {RESULT_FILE.name}")
    for case, row in results["cases"].items():
        if "speedup" in row:
            print(
                f"{case:38s} serial {row['serial_seconds'] * 1e3:9.1f} ms"
                f"   cluster({results['workers']}) {row['cluster_seconds'] * 1e3:8.1f} ms"
                f"   speedup {row['speedup']:6.2f}x"
            )
        elif "wire_reduction" in row:
            print(
                f"{case:38s} {row['repeat_sweeps']} sweeps"
                f"   plan x{row['plans_shipped']}"
                f"   {row['bytes_sent'] / 1e6:6.2f} MB sent"
                f"   vs naive {row['naive_plan_bytes'] / 1e6:6.2f} MB"
                f"   ({row['wire_reduction']:.1f}x less)"
            )
        else:
            print(
                f"{case:38s} cluster {row['cluster_seconds'] * 1e3:8.1f} ms"
                f"   recovered {row['jobs_recovered']}/{row['jobs_shipped']} jobs"
            )


def _gate_applies() -> bool:
    return (os.cpu_count() or 1) >= REQUIRED_CPUS


def _check_speedups(results: dict) -> None:
    for case, row in results["cases"].items():
        if "speedup" in row:
            assert row["speedup"] >= REQUIRED_SPEEDUP, (
                f"{case}: speedup {row['speedup']:.2f}x below the "
                f"{REQUIRED_SPEEDUP}x floor at {WORKERS} workers"
            )


def test_cluster_speedup():
    """The acceptance gate: identical matrices always (healthy fleet AND
    one dead worker); >= 1.2x at 2 workers wherever 2 cores exist."""
    import pytest

    try:
        results = run_benchmark()
    except (OSError, RuntimeError) as exc:  # pragma: no cover — sandbox
        pytest.skip(f"cannot spawn loopback workers here: {exc}")
    emit(results)
    if not _gate_applies():
        pytest.skip(
            f"speedup gate needs >= {REQUIRED_CPUS} usable cores "
            f"(host has {os.cpu_count()}); exactness was still asserted"
        )
    _check_speedups(results)


if __name__ == "__main__":
    sys.path.insert(0, str(SRC_DIR))
    results = run_benchmark()
    emit(results)
    if _gate_applies():
        _check_speedups(results)
    else:
        print(
            f"(speedup gate skipped: host has {os.cpu_count()} CPUs, "
            f"needs >= {REQUIRED_CPUS}; exactness asserted)"
        )
