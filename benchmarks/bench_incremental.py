"""E14 — incremental cone re-sweep vs from-scratch under mutation churn.

A clustered periodic TVG (disjoint communities, no inter-cluster
edges), with ~1% of the edges going dirty between queries — all of the
churn concentrated in one community, the shape incremental maintenance
is for.  The dirty cone (every source row that could reach a dirty
edge's tail) then stays inside the churned community, so the
incremental path re-sweeps a small block of rows and merges it over
the cached matrix while the from-scratch path re-sweeps everything.

Two claims are checked:

* **exactness** — the merged incremental matrix equals the
  from-scratch matrix element for element, under WAIT and NO_WAIT
  (asserted unconditionally, every run), and the cone really stayed
  inside the churned community;
* **speedup** — the incremental path is at least 5x faster than the
  full re-sweep on the WAIT case.  Like the kernel gate this is a
  single-core algorithmic claim (fewer rows swept, same kernel), so it
  applies on every host, 1-CPU sandboxes included.

Both paths run on the same engine and the same resolved kernel; plans
compile once and best-of-``REPEATS`` timing amortizes warmup, so the
timings isolate swept-row volume.  Emits ``BENCH_incremental.json``
next to this file.

Run standalone (``python benchmarks/bench_incremental.py``) or through
pytest (``pytest benchmarks/bench_incremental.py``).
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path

RESULT_FILE = Path(__file__).parent / "BENCH_incremental.json"

CLUSTERS = 16
CLUSTER_NODES = 50           # 800 nodes: the churned community is 1/16
PERIOD = 8
DENSITY = 0.06               # per intra-cluster ordered pair
SEED = 7
HORIZON = 32
DIRTY_FRACTION = 0.01        # ~1% of all edges, all inside cluster 0
REQUIRED_SPEEDUP = 5.0
REQUIRED_CPUS = 1            # single-core claim: the gate always applies
REPEATS = 5


def _best_of(fn, repeats: int = REPEATS):
    import time

    best_seconds = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return result, best_seconds


def clustered_tvg():
    """Disjoint periodic communities on one graph (no cross edges)."""
    from repro.core.presence import periodic_presence
    from repro.core.tvg import TimeVaryingGraph

    rng = random.Random(SEED)
    graph = TimeVaryingGraph(period=PERIOD, name="clustered")
    graph.add_nodes(range(CLUSTERS * CLUSTER_NODES))
    for c in range(CLUSTERS):
        base = c * CLUSTER_NODES
        for u in range(base, base + CLUSTER_NODES):
            for v in range(base, base + CLUSTER_NODES):
                if u == v or rng.random() >= DENSITY:
                    continue
                residues = [rng.randrange(PERIOD)]
                graph.add_edge(
                    u, v, presence=periodic_presence(residues, PERIOD),
                    key=f"c{c}.{u}.{v}",
                )
    return graph


def churn(graph, rng):
    """Swap the schedule of ~DIRTY_FRACTION of all edges, every one of
    them inside cluster 0 (concentrated churn)."""
    from repro.core.presence import periodic_presence

    cluster0 = [e.key for e in graph.edges if e.key.startswith("c0.")]
    dirty = max(1, int(graph.edge_count * DIRTY_FRACTION))
    keys = rng.sample(cluster0, min(dirty, len(cluster0)))
    for key in keys:
        graph.set_presence(
            key, periodic_presence([rng.randrange(PERIOD)], PERIOD)
        )
    return keys


def run_benchmark() -> dict:
    import numpy as np

    from bench_common import gate_info, host_cpus, kernel_variant
    from repro.core.engine import TemporalEngine
    from repro.core.semantics import NO_WAIT, WAIT

    graph = clustered_tvg()
    engine = TemporalEngine(graph)
    rng = random.Random(SEED + 1)

    results = {
        "graph": {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "clusters": CLUSTERS,
            "period": PERIOD,
            "density": DENSITY,
            "horizon": HORIZON,
            "seed": SEED,
        },
        "cpus": host_cpus(),
        "kernel": kernel_variant(),
        "repeats": REPEATS,
        "gate": gate_info(REQUIRED_SPEEDUP, REQUIRED_CPUS),
        "cases": {},
    }

    for label, semantics in (("wait", WAIT), ("nowait", NO_WAIT)):
        nodes0, m0 = engine.arrival_matrix(0, semantics, horizon=HORIZON)
        version0 = graph.version
        dirty_keys = churn(graph, rng)
        deltas = graph.deltas_since(version0)
        assert deltas is not None and len(deltas) == len(dirty_keys)

        scratch, full_seconds = _best_of(
            lambda: engine.arrival_matrix(0, semantics, horizon=HORIZON)[1]
        )
        incremental, incremental_seconds = _best_of(
            lambda: engine.arrival_matrix_incremental(
                0, (nodes0, m0), deltas, semantics, HORIZON
            )
        )
        assert incremental is not None, "presence-only chain must be patchable"
        _nodes, merged, reswept = incremental
        assert np.array_equal(merged, scratch), (
            f"incremental matrix diverged from scratch under {label}"
        )
        assert 0 < reswept <= CLUSTER_NODES, (
            f"cone escaped the churned community: {reswept} rows re-swept"
        )
        results["cases"][f"resweep_{label}"] = {
            "dirty_edges": len(dirty_keys),
            "dirty_fraction": len(dirty_keys) / graph.edge_count,
            "rows_reswept": int(reswept),
            "rows_total": graph.node_count,
            "full_seconds": full_seconds,
            "incremental_seconds": incremental_seconds,
            "speedup": full_seconds / incremental_seconds,
        }
    return results


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\n## E14  Incremental re-sweep under churn -> {RESULT_FILE.name}")
    for case, row in results["cases"].items():
        print(
            f"{case:18s} rows {row['rows_reswept']:3d}/{row['rows_total']}"
            f"   full {row['full_seconds'] * 1e3:8.1f} ms"
            f"   incremental {row['incremental_seconds'] * 1e3:7.1f} ms"
            f"   speedup {row['speedup']:6.2f}x"
        )


def _check_speedup(results: dict) -> None:
    # Only the WAIT case carries the 5x floor (the acceptance claim);
    # NO_WAIT is recorded for tracking — its rows finish so fast that
    # fixed per-sweep overhead dominates, so it gates at nothing here.
    row = results["cases"]["resweep_wait"]
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"resweep_wait: incremental speedup {row['speedup']:.2f}x below "
        f"the {REQUIRED_SPEEDUP}x floor over the full re-sweep"
    )


def test_incremental_speedup():
    """The acceptance gate: identical matrices always; >= 5x on WAIT on
    every host (single-core claim, no CPU prerequisite)."""
    results = run_benchmark()
    emit(results)
    _check_speedup(results)


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    results = run_benchmark()
    emit(results)
    _check_speedup(results)
