"""E10 — analysis layer through the batched arrival sweep.

Times ``reachability_growth`` (the analysis layer's hottest curve) on a
200-node periodic-presence TVG — the bench_engine regime — through the
interpretive path (one full reachability search per source) and the
engine path (ONE batched all-pairs arrival sweep, then a binary search
per prefix date).  Asserts the engine path is at least 5x faster while
producing the identical curve, under both WAIT and NO_WAIT, and checks
``value_of_waiting`` agreement on the engine path.  Emits
``BENCH_evolution.json`` next to this file so CI can track the speedups
over time.

Run standalone (``python benchmarks/bench_evolution.py``) or through
pytest (``pytest benchmarks/bench_evolution.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

RESULT_FILE = Path(__file__).parent / "BENCH_evolution.json"

NODES = 200
PERIOD = 8
DENSITY = 0.02
SEED = 7
HORIZON = 24
REQUIRED_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_benchmark() -> dict:
    from repro.analysis.evolution import reachability_growth, value_of_waiting
    from repro.core.engine import TemporalEngine
    from repro.core.generators import periodic_random_tvg
    from repro.core.semantics import NO_WAIT, WAIT

    graph = periodic_random_tvg(
        NODES, period=PERIOD, density=DENSITY, labels="ab", seed=SEED
    )
    engine = TemporalEngine(graph)
    # Compile outside the timed sections: the index is built once and
    # amortized over every query, exactly how callers use it.
    _, compile_seconds = _timed(lambda: engine.index_for(0, HORIZON))

    results = {
        "graph": {
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "period": PERIOD,
            "density": DENSITY,
            "horizon": HORIZON,
            "seed": SEED,
        },
        "compile_seconds": compile_seconds,
        "required_speedup": REQUIRED_SPEEDUP,
        "cases": {},
    }

    curves = {}
    for label, semantics in (("wait", WAIT), ("nowait", NO_WAIT)):
        oracle, interp = _timed(
            lambda s=semantics: reachability_growth(graph, 0, HORIZON, s)
        )
        fast, compiled = _timed(
            lambda s=semantics: reachability_growth(
                graph, 0, HORIZON, s, engine=engine
            )
        )
        assert fast == oracle, f"growth curve mismatch under {label}"
        curves[label] = oracle
        results["cases"][f"reachability_growth_{label}"] = {
            "interpretive_seconds": interp,
            "compiled_seconds": compiled,
            "speedup": interp / compiled,
        }

    # value_of_waiting is exactly the two curves above; check the engine
    # path assembles them identically instead of re-timing the oracle.
    value = value_of_waiting(graph, 0, HORIZON, engine=engine)
    assert value.wait_curve == curves["wait"]
    assert value.nowait_curve == curves["nowait"]
    results["value_of_waiting_area"] = value.area
    return results


def emit(results: dict) -> None:
    RESULT_FILE.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\n## E10  Analysis layer via the arrival sweep -> {RESULT_FILE.name}")
    for case, row in results["cases"].items():
        print(
            f"{case:32s} interpretive {row['interpretive_seconds'] * 1e3:9.1f} ms"
            f"   compiled {row['compiled_seconds'] * 1e3:8.1f} ms"
            f"   speedup {row['speedup']:7.1f}x"
        )


def test_evolution_speedup():
    """The acceptance gate: >= 5x on the growth curve, identical results."""
    results = run_benchmark()
    emit(results)
    for case, row in results["cases"].items():
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{case}: speedup {row['speedup']:.1f}x below the "
            f"{REQUIRED_SPEEDUP}x floor"
        )


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    test_evolution_speedup()
