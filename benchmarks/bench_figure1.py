"""E1 — Figure 1 / Table 1: the a^n b^n TVG-automaton.

Regenerates the paper's only concrete artifact: the deterministic
TVG-automaton whose no-wait language is {a^n b^n : n >= 1}, plus the
derived wait language (regular).  The timed kernel is the acceptance
sweep over all words up to the length bound.
"""

from conftest import emit

from repro import NO_WAIT, WAIT, figure1_automaton
from repro.automata.enumeration import language_upto
from repro.automata.regex import regex_to_nfa
from repro.constructions.figure1 import (
    figure1_clock,
    figure1_wait_language_description,
)
from repro.machines.programs import is_anbn_positive

DEPTH = 8
WAIT_DEPTH = 6
WAIT_HORIZON = 2600


def test_nowait_language_is_anbn(benchmark):
    fig1 = figure1_automaton()
    sample = benchmark(lambda: fig1.language(DEPTH, NO_WAIT))
    from repro.automata.alphabet import Alphabet

    expected = {w for w in Alphabet("ab").words_upto(DEPTH) if is_anbn_positive(w)}
    assert sample == expected

    rows = []
    for word in ("ab", "aabb", "aaabbb", "aab", "abb", "ba", "b", ""):
        rows.append(
            [
                repr(word),
                "accept" if word in sample else "reject",
                figure1_clock(word),
            ]
        )
    emit(
        "E1a  Figure 1: L_nowait = a^n b^n (p=2, q=3, start t=1)",
        ["word", "nowait verdict", "clock p^n q^j"],
        rows,
    )


def test_wait_language_is_regular(benchmark):
    fig1 = figure1_automaton()
    sample = benchmark(lambda: fig1.language(WAIT_DEPTH, WAIT, horizon=WAIT_HORIZON))
    pattern = figure1_wait_language_description()
    reference = language_upto(regex_to_nfa(pattern, "ab"), WAIT_DEPTH)
    assert sample == reference

    nowait = fig1.language(WAIT_DEPTH, NO_WAIT)
    rows = [
        ["|L_nowait| (len<=6)", len(nowait)],
        ["|L_wait|   (len<=6)", len(sample)],
        ["wait-only words", len(sample - nowait)],
        ["derived regex", pattern],
        ["sample == regex sample", sample == reference],
    ]
    emit("E1b  Figure 1 under waiting: collapse to a regular language",
         ["quantity", "value"], rows)


def test_determinism_window(benchmark):
    fig1 = figure1_automaton()
    verdict = benchmark(lambda: fig1.is_deterministic_over(range(1, 500)))
    assert verdict
    emit(
        "E1c  Figure 1 determinism check",
        ["window", "deterministic"],
        [["t in [1, 500)", verdict]],
    )
