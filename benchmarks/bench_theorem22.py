"""E3 + E4 — Theorem 2.2: L_wait is exactly the regular languages.

E3 (regular ⊆ L_wait): random regexes are embedded as static TVGs and
the extracted wait language is checked *equivalent* (full DFA
equivalence, not sampling) to the source regex.

E4 (L_wait ⊆ regular, on the decidable classes): random periodic TVGs
get their wait language extracted as an NFA, minimized, and verified
against exhaustive journey sampling; the configuration-preorder index is
reported next to the minimal DFA size — the finite-index phenomenon the
paper's wqo argument rests on.
"""

from conftest import emit

from repro import WAIT
from repro.automata.enumeration import language_upto
from repro.automata.equivalence import equivalent
from repro.automata.language_compute import wait_language_automaton
from repro.automata.operations import minimize
from repro.automata.regex import random_regex, regex_to_nfa
from repro.automata.tvg_automaton import TVGAutomaton
from repro.automata.wqo import preorder_index_bound
from repro.constructions.wait_regular import automaton_to_tvg
from repro.core.generators import periodic_random_tvg
from repro.errors import ConstructionError

REGEX_SEEDS = range(10)
TVG_SEEDS = range(6)


def test_regular_into_wait(benchmark):
    """E3: embed random regexes, extract, decide equivalence."""

    def run_all():
        rows = []
        for seed in REGEX_SEEDS:
            node = random_regex("ab", depth=4, seed=seed)
            reference = regex_to_nfa(node)
            try:
                embedded = automaton_to_tvg(reference)
            except ConstructionError:
                continue
            extracted = wait_language_automaton(embedded)
            ok = equivalent(extracted, reference)
            rows.append(
                [seed, str(node)[:28], embedded.graph.edge_count, ok]
            )
        return rows

    rows = benchmark(run_all)
    assert rows and all(row[-1] for row in rows)
    emit(
        "E3  Theorem 2.2 (⊇): random regex -> TVG -> extracted L_wait == regex",
        ["seed", "regex", "TVG edges", "equivalent"],
        rows,
    )


def test_wait_languages_are_regular(benchmark):
    """E4: extract + minimize + cross-check on random periodic TVGs."""

    def run_all():
        rows = []
        for seed in TVG_SEEDS:
            g = periodic_random_tvg(4, period=4, density=0.4, labels="ab", seed=seed)
            if not g.alphabet:
                continue
            auto = TVGAutomaton(g, initial=0, accepting=list(g.nodes), start_time=0)
            nfa = wait_language_automaton(auto)
            dfa = minimize(nfa.to_dfa())
            sampled = auto.language(
                3, WAIT, horizon=40, alphabet="".join(sorted(g.alphabet))
            )
            ok = language_upto(dfa, 3) == sampled
            index = preorder_index_bound(auto, 3, WAIT, horizon=40)
            rows.append([seed, nfa.size, len(dfa.states), index, ok])
        return rows

    rows = benchmark(run_all)
    assert rows and all(row[-1] for row in rows)
    emit(
        "E4  Theorem 2.2 (⊆): periodic TVGs -> regular certificates",
        ["seed", "NFA states", "min DFA states", "config classes", "matches sampling"],
        rows,
    )
