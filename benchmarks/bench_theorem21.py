"""E2 — Theorem 2.1: every computable language as a no-wait language.

For each stock decider (TM, counter machine, or predicate), builds the
universal clockwork TVG and checks L_nowait(G) against the decider on
all words up to a bound.  The timed kernel is the full build-and-verify
pipeline for the a^n b^n c^n machine — a genuinely context-sensitive
language decided by a dynamic network.
"""

from conftest import emit

from repro import NO_WAIT, nowait_automaton_for
from repro.constructions.godel import GodelEncoding
from repro.machines.programs import standard_deciders


def depth_for(decider) -> int:
    return 5 if len(decider.alphabet) >= 3 else 6


def test_all_stock_languages(benchmark):
    deciders = standard_deciders()

    def verify_all():
        results = {}
        for name, decider in deciders.items():
            auto = nowait_automaton_for(decider)
            bound = depth_for(decider)
            built = auto.language(bound, NO_WAIT)
            expected = decider.language_upto(bound)
            results[name] = (bound, built, expected)
        return results

    results = benchmark(verify_all)
    rows = []
    for name, (bound, built, expected) in sorted(results.items()):
        assert built == expected, name
        rows.append([name, f"<= {bound}", len(expected), built == expected])
    emit(
        "E2  Theorem 2.1: L_nowait(G_D) == L(D) for every stock decider",
        ["language", "depth", "|sample|", "exact match"],
        rows,
    )


def test_clock_growth(benchmark):
    """The cost of the construction: clock values grow as prime products."""
    encoding = GodelEncoding("ab")
    values = benchmark(lambda: [encoding.encode("ab" * k) for k in range(5)])
    rows = [[f"(ab)^{k}", 2 * k, values[k]] for k in range(5)]
    emit(
        "E2b  Godel clock growth (the construction's time currency)",
        ["word", "length", "enc(word)"],
        rows,
    )
    assert all(b > a for a, b in zip(values, values[1:]))
