"""Shared shape of the ``BENCH_*.json`` emissions.

Every sweep benchmark records the same header block so CI diffs compare
like with like:

* ``cpus`` — what the host offered (gates that need cores self-skip);
* ``kernel`` — which sweep kernel (:mod:`repro.core.sweep_kernel`) the
  timed sweeps ran on, after env resolution, so a run under
  ``REPRO_SWEEP_KERNEL=bignum`` is distinguishable in the artifact;
* ``gate`` — the speedup floor, its CPU prerequisite, whether it
  applied on this host, and the structured skip reason when it did not
  (previously each script encoded this differently, or only in stdout).
"""

from __future__ import annotations

import os


def host_cpus() -> int:
    return os.cpu_count() or 1


def kernel_variant(kernel: str | None = None) -> str:
    """The sweep kernel the benchmark's sweeps actually run on."""
    from repro.core.sweep_kernel import resolve_kernel

    return resolve_kernel(kernel)


def gate_info(required_speedup: float, required_cpus: int) -> dict:
    """The gate block: floor, prerequisite, and (if skipped) why."""
    cpus = host_cpus()
    applies = cpus >= required_cpus
    return {
        "required_speedup": required_speedup,
        "required_cpus": required_cpus,
        "applies": applies,
        "skip_reason": None if applies else (
            f"host has {cpus} CPUs, speedup floor needs >= {required_cpus}; "
            "exactness still asserted"
        ),
    }
