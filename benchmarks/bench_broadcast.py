"""E6 — the motivating experiment: store-carry-forward vs bufferless.

Sweeps contact density in edge-Markovian networks and reports delivery
ratio and completion time for flooding with and without buffering,
cross-checked against journey reachability.  The paper's qualitative
claim — waiting turns "disconnected at every instant" into "temporally
connected" — shows up as the buffered column saturating at 1.0 long
before the bufferless one leaves the floor.
"""

from conftest import emit

from repro.analysis.connectivity import classify_connectivity
from repro.analysis.statistics import summarize
from repro.core.generators import edge_markovian_tvg
from repro.dynamics.protocols.broadcast import (
    reachability_prediction,
    simulate_broadcast,
)

NODES = 12
HORIZON = 60
BIRTHS = (0.01, 0.02, 0.04, 0.08, 0.16)
DEATH = 0.6
SEEDS = range(4)


def sweep_density():
    rows = []
    crossover = None
    for birth in BIRTHS:
        without, with_buffer, never_connected = [], [], 0
        for seed in SEEDS:
            g = edge_markovian_tvg(
                NODES, horizon=HORIZON, birth=birth, death=DEATH, seed=seed
            )
            bufferless = simulate_broadcast(g, 0, buffering=False)
            buffered = simulate_broadcast(g, 0, buffering=True)
            for outcome in (bufferless, buffered):
                predicted = reachability_prediction(
                    g, 0, outcome.buffering, 0, HORIZON
                )
                assert set(outcome.informed) == predicted
            without.append(bufferless.delivery_ratio)
            with_buffer.append(buffered.delivery_ratio)
            if classify_connectivity(g, 0, HORIZON).never_snapshot_connected:
                never_connected += 1
        mean_without = summarize(without).mean
        mean_with = summarize(with_buffer).mean
        if crossover is None and mean_with >= 0.99:
            crossover = birth
        rows.append(
            [
                birth,
                f"{never_connected}/{len(list(SEEDS))}",
                f"{mean_without:.2f}",
                f"{mean_with:.2f}",
                f"{mean_with - mean_without:+.2f}",
            ]
        )
    return rows, crossover


def test_density_sweep(benchmark):
    rows, crossover = benchmark(sweep_density)
    emit(
        "E6  Flooding broadcast: delivery ratio vs contact density "
        f"(n={NODES}, T={HORIZON}, death={DEATH})",
        ["birth", "never-connected runs", "bufferless", "buffered", "gap"],
        rows,
    )
    # Shape assertions: buffering dominates everywhere, and by the densest
    # setting the buffered flood saturates while bufferless still lags.
    for row in rows:
        assert float(row[3]) >= float(row[2])
    assert float(rows[-1][3]) >= 0.99
    assert crossover is not None and crossover <= BIRTHS[-1]


def test_completion_time(benchmark):
    def run():
        results = []
        for seed in SEEDS:
            g = edge_markovian_tvg(
                NODES, horizon=HORIZON, birth=0.08, death=DEATH, seed=seed
            )
            outcome = simulate_broadcast(g, 0, buffering=True)
            results.append(
                (seed, outcome.completion_time, outcome.transmissions)
            )
        return results

    results = benchmark(run)
    rows = [[s, t if t is not None else "-", m] for s, t, m in results]
    emit(
        "E6b  Buffered flood completion (birth=0.08)",
        ["seed", "completion time", "transmissions"],
        rows,
    )
    assert any(t is not None for _s, t, _m in results)
