"""Legacy setup shim.

Kept so that ``pip install -e .`` / ``python setup.py develop`` work on
environments whose setuptools predates PEP 660 editable wheels (no
``wheel`` package available).  All real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx>=3.0", "numpy>=1.24"],
)
