#!/usr/bin/env python3
"""Store-carry-forward in action: the DTN scenario behind the theory.

Generates the intermittently-connected mobile networks the paper's
introduction describes (edge-Markovian contacts and random-waypoint
mobility), then runs flooding broadcast twice over each — once
bufferless, once with store-carry-forward — and shows:

* snapshots are (almost) never connected, yet the buffered flood
  completes;
* the bufferless flood stalls at a fraction of the network;
* the simulator's informed sets coincide exactly with no-wait / wait
  journey reachability — the theory *is* the protocol.

Run:  python examples/dtn_broadcast.py
"""

from repro.analysis.connectivity import classify_connectivity
from repro.analysis.statistics import format_table, summarize
from repro.core.generators import edge_markovian_tvg
from repro.dynamics.mobility import random_waypoint_tvg
from repro.dynamics.protocols.broadcast import (
    reachability_prediction,
    simulate_broadcast,
)
from repro.dynamics.protocols.gossip import run_gossip


def broadcast_row(graph, origin, horizon):
    buffered = simulate_broadcast(graph, origin, buffering=True)
    bufferless = simulate_broadcast(graph, origin, buffering=False)
    for outcome in (buffered, bufferless):
        predicted = reachability_prediction(
            graph, origin, outcome.buffering, graph.lifetime.start, horizon
        )
        assert set(outcome.informed) == predicted, "simulator must match theory"
    return buffered, bufferless


def main() -> None:
    print("Scenario A: edge-Markovian contacts (n=12, sparse, flaky)")
    print("-" * 66)
    rows = []
    for seed in range(5):
        g = edge_markovian_tvg(12, horizon=60, birth=0.03, death=0.6, seed=seed)
        report = classify_connectivity(g, 0, 60)
        buffered, bufferless = broadcast_row(g, 0, 60)
        rows.append(
            [
                seed,
                f"{report.snapshots_connected}/60",
                f"{bufferless.delivery_ratio:.2f}",
                f"{buffered.delivery_ratio:.2f}",
                buffered.completion_time if buffered.completion_time is not None else "-",
            ]
        )
    print(format_table(
        ["seed", "connected snaps", "bufferless", "buffered", "done at"], rows
    ))

    print()
    print("Scenario B: random-waypoint mobility on a 5x5 grid (8 walkers)")
    print("-" * 66)
    rows = []
    ratios_without, ratios_with = [], []
    for seed in range(5):
        g = random_waypoint_tvg(8, 5, 5, 40, seed=seed)
        buffered, bufferless = broadcast_row(g, 0, 40)
        ratios_without.append(bufferless.delivery_ratio)
        ratios_with.append(buffered.delivery_ratio)
        rows.append(
            [seed, f"{bufferless.delivery_ratio:.2f}", f"{buffered.delivery_ratio:.2f}",
             buffered.transmissions]
        )
    print(format_table(["seed", "bufferless", "buffered", "transmissions"], rows))
    print(f"  bufferless mean delivery: {summarize(ratios_without)}")
    print(f"  buffered   mean delivery: {summarize(ratios_with)}")

    print()
    print("Scenario C: gossip mixing on a never-connected rotor")
    print("-" * 66)
    from repro import TVGBuilder

    rotor = (
        TVGBuilder(name="rotor")
        .lifetime(0, 15)
        .contact("a", "b", period=(0, 3))
        .contact("b", "c", period=(1, 3))
        .contact("c", "d", period=(2, 3))
        .contact("d", "a", period=(0, 3))
        .build()
    )
    gossip = run_gossip(rotor, sample_every=3)
    for time, counts in gossip.counts_over_time:
        print(f"  t={time:>2}: tokens known per node = {counts}")
    print(f"  fully mixed: {gossip.fully_mixed}")
    print()
    print("Waiting (buffering) is what turns 'never connected' into")
    print("'everyone informed' -- the operational face of the theorems.")


if __name__ == "__main__":
    main()
