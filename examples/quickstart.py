#!/usr/bin/env python3
"""Quickstart: time-varying graphs, journeys, and the power of waiting.

Walks through the library's core objects in five minutes:

1. build a small dynamic network whose snapshots are never connected;
2. see that journeys still connect it — but only if waiting is allowed;
3. read the same graph as a language acceptor (a TVG-automaton);
4. meet the paper's Figure 1: a dynamic network that *recognizes*
   the context-free language a^n b^n when waiting is forbidden.

Run:  python examples/quickstart.py
"""

from repro import NO_WAIT, WAIT, TVGBuilder, bounded_wait, figure1_automaton
from repro.analysis.connectivity import classify_connectivity
from repro.automata import TVGAutomaton
from repro.core.metrics import temporal_distance
from repro.core.traversal import foremost_journey, reachable_nodes


def section(title: str) -> None:
    print()
    print(f"== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("1. A dynamic network, disconnected at every instant")
    # Three nodes, one rotating contact: ab at t%3==0, bc at t%3==1,
    # ca at t%3==2.  No snapshot is ever connected.
    rotor = (
        TVGBuilder(name="rotor")
        .lifetime(0, 12)
        .contact("a", "b", period=(0, 3))
        .contact("b", "c", period=(1, 3))
        .contact("c", "a", period=(2, 3))
        .build()
    )
    report = classify_connectivity(rotor, 0, 12)
    print(f"graph: {rotor}")
    print(f"snapshots connected: {report.snapshots_connected}/{report.snapshots_total}")
    print(f"classification: {report.label()}")

    section("2. Journeys: waiting bridges what no instant provides")
    with_wait = reachable_nodes(rotor, "a", 0, WAIT)
    without = reachable_nodes(rotor, "a", 0, NO_WAIT)
    print(f"reachable from 'a' with waiting:    {sorted(with_wait)}")
    print(f"reachable from 'a' without waiting: {sorted(without)}")
    journey = foremost_journey(rotor, "a", "c", 0, WAIT)
    print(f"a foremost journey a->c: {journey}")
    print(f"  pauses between hops: {journey.pauses} (store-carry-forward!)")
    for d in (0, 1, 2):
        dist = temporal_distance(rotor, "a", "c", 0, bounded_wait(d))
        print(f"  temporal distance a->c with wait[{d}]: {dist}")

    section("3. The same graph as a language acceptor")
    labeled = (
        TVGBuilder(name="toggler")
        .periodic(2)
        .edge("s", "s", label="x", period=(0, 2))
        .edge("s", "s", label="y", period=(1, 2))
        .build()
    )
    acceptor = TVGAutomaton(labeled, initial="s", accepting="s", start_time=0)
    print("x available at even dates, y at odd dates, reading from t=0:")
    print(f"  L_nowait up to length 4: {sorted(acceptor.language(4, NO_WAIT), key=lambda w: (len(w), w))}")
    print(f"  L_wait   up to length 3: {sorted(acceptor.language(3, WAIT, horizon=16), key=lambda w: (len(w), w))}")

    section("4. Figure 1 of the paper: a^n b^n without waiting")
    fig1 = figure1_automaton()  # p=2, q=3, reading starts at t=1
    print(f"automaton: {fig1.graph}")
    for word in ("ab", "aabb", "aaabbb", "aab", "ba", "b"):
        verdict = "ACCEPT" if fig1.accepts(word, NO_WAIT) else "reject"
        print(f"  nowait {word!r:10s} -> {verdict}")
    print("the same graph once waiting is allowed (horizon 600):")
    for word in ("b", "ab", "bb", "aaabb"):
        verdict = "ACCEPT" if fig1.accepts(word, WAIT, horizon=600) else "reject"
        print(f"  wait   {word!r:10s} -> {verdict}")
    print()
    print("A dynamic network recognizes a context-free language -- until")
    print("buffering is switched on, which collapses it to a regular one.")
    print("That gap is the paper's measure of the power of waiting.")


if __name__ == "__main__":
    main()
