#!/usr/bin/env python3
"""Theorem 2.1 live: dynamic networks that decide computable languages.

Builds the universal no-wait construction for three languages of
increasing power — context-free (palindromes), context-sensitive
(a^n b^n c^n), and one needing real arithmetic (unary primes) — and
verifies each TVG's no-wait language against the original decider.
Then it composes with Theorem 2.3: dilating the a^n b^n graph by d+1
makes the same language appear under wait[d].

Run:  python examples/universal_clockwork.py
"""

from repro import NO_WAIT, bounded_wait, expand_for_bounded_wait, nowait_automaton_for
from repro.constructions.godel import GodelEncoding
from repro.constructions.nowait_universal import clock_after
from repro.machines.programs import standard_deciders


def show_language(title, words):
    ordered = sorted(words, key=lambda w: (len(w), w))
    rendered = ", ".join(repr(w) for w in ordered[:10])
    suffix = ", ..." if len(ordered) > 10 else ""
    print(f"  {title}: {{{rendered}{suffix}}}")


def main() -> None:
    deciders = standard_deciders()

    print("The Godel clock: words stored in the current date")
    print("-" * 64)
    encoding = GodelEncoding("abc")
    for word in ("", "a", "ab", "abc", "cab"):
        print(f"  enc({word!r:6s}) = {encoding.encode(word)}")
    print("  (position-indexed primes; unique factorization = injectivity)")

    for name in ("palindrome", "anbncn", "unary-primes"):
        decider = deciders[name]
        auto = nowait_automaton_for(decider)
        bound = 5 if len(decider.alphabet) >= 3 else 7
        built = auto.language(bound, NO_WAIT)
        expected = decider.language_upto(bound)
        print()
        print(f"{name}: graph {auto.graph}")
        print("-" * 64)
        show_language(f"L_nowait(G) up to {bound}", built)
        show_language(f"decider says        ", expected)
        print(f"  equal: {built == expected}")
        assert built == expected

    print()
    print("Composing with Theorem 2.3: a^n b^n under bounded waiting")
    print("-" * 64)
    anbn = deciders["anbn"]
    base = nowait_automaton_for(anbn)
    for d in (1, 3):
        dilated = expand_for_bounded_wait(base, d)
        horizon = clock_after(anbn, "bbbb") * (d + 1) + 1
        language = dilated.language(4, bounded_wait(d), horizon=horizon)
        print(f"  d={d}: L_wait[{d}](dilate(G,{d + 1})) up to 4 = "
              f"{sorted(language, key=lambda w: (len(w), w))}")
        assert language == anbn.language_upto(4)
    print()
    print("Bounded waiting gained nothing: the adversary simply stretched")
    print("its schedule. Only *unbounded* waiting changes the game.")


if __name__ == "__main__":
    main()
