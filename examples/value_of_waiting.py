#!/usr/bin/env python3
"""Quantifying the value of waiting on real-ish scenarios.

For each scenario in the workload registry:

* place the network in the TVG class hierarchy (reference [1] of the
  paper);
* plot (as ASCII) the reachability growth curves with and without
  waiting, and integrate the area between them — a scalar "value of
  waiting" for that network;
* prune the graph to its foremost broadcast tree and report how little
  of the contact structure one-to-all communication actually needs.

Run:  python examples/value_of_waiting.py
"""

from repro.analysis.classes import classify
from repro.analysis.evolution import value_of_waiting
from repro.analysis.spanners import foremost_broadcast_tree, spanner_savings
from repro.analysis.statistics import format_table
from repro.core.semantics import WAIT
from repro.dynamics.workloads import all_workloads


def sparkline(curve, buckets=30) -> str:
    """A tiny ASCII rendition of a 0..1 curve."""
    glyphs = " .:-=+*#%@"
    step = max(1, len(curve) // buckets)
    cells = []
    for index in range(0, len(curve), step):
        _t, value = curve[index]
        cells.append(glyphs[min(len(glyphs) - 1, int(value * (len(glyphs) - 1)))])
    return "".join(cells)


def main() -> None:
    rows = []
    print("Reachability growth, per scenario ( . = 0%  @ = 100% )")
    print("=" * 68)
    for workload in all_workloads(seed=1):
        value = value_of_waiting(workload.graph, workload.start, workload.end)
        report = classify(workload.graph, workload.start, workload.end)
        tree = foremost_broadcast_tree(
            workload.graph, workload.source, workload.start, WAIT,
            horizon=workload.end,
        )
        kept, total, dropped = spanner_savings(workload.graph, tree)
        print(f"\n{workload.name}  (classes: {', '.join(sorted(report.classes)) or '-'})")
        print(f"  wait    |{sparkline(value.wait_curve)}|")
        print(f"  nowait  |{sparkline(value.nowait_curve)}|")
        rows.append(
            [
                workload.name,
                f"{value.area:.1f}",
                f"{value.final_gap:.2f}",
                value.wait_saturation_time if value.wait_saturation_time is not None else "-",
                f"{kept}/{total}",
            ]
        )
    print()
    print(format_table(
        ["scenario", "∫(wait-nowait)", "final gap", "wait TC at", "tree/graph edges"],
        rows,
    ))
    print()
    print("Big areas mean the network's usefulness lives almost entirely")
    print("in its buffering; zero areas mean snapshots already suffice.")


if __name__ == "__main__":
    main()
