#!/usr/bin/env python3
"""Periodic transit: exact wait-language extraction on a timetable.

A deterministic, fully periodic scenario — two circular "bus lines"
sharing a hub — where every question the paper asks has an *exact*
answer via the time-expansion extractor:

* the wait language of the network (as a minimal DFA);
* the no-wait language (regular too — periodicity tames Theorem 2.1);
* itinerary planning: foremost journeys with and without waiting.

Run:  python examples/transit_network.py
"""

from repro import NO_WAIT, WAIT, TVGAutomaton
from repro.automata.enumeration import language_upto
from repro.automata.language_compute import (
    nowait_language_automaton,
    wait_language_automaton,
)
from repro.automata.operations import minimize
from repro.core.generators import transit_tvg
from repro.core.metrics import temporal_distance
from repro.core.transforms import graph_like
from repro.core.traversal import foremost_journey


def label_by_line(network):
    """A copy of the network whose edges carry their line as a label:
    'r' for line 0 (red), 'g' for line 1 (green)."""
    labeled = graph_like(network, name=f"{network.name}-labeled")
    labeled.add_nodes(network.nodes)
    for edge in network.edges:
        line = edge.key.split(".")[0]
        labeled.add_edge_object(edge.relabeled("r" if line == "line0" else "g"))
    return labeled


def main() -> None:
    # Line R (red): hub -> east -> hub, departing the hub at t % 6 == 0.
    # Line G (green): hub -> west -> hub, departing the hub at t % 6 == 3.
    network = label_by_line(
        transit_tvg(
            [
                (["hub", "east", "hub"], 0, 6),
                (["hub", "west", "hub"], 3, 6),
            ],
            latency=1,
            name="two-lines",
        )
    )
    print(f"network: {network} (period {network.period})")
    for edge in network.edges:
        print(f"  {edge.key}: {edge.source}->{edge.target} label={edge.label}")

    print()
    print("Itineraries from the hub at t=1 (between departures)")
    print("-" * 60)
    for target in ("east", "west"):
        for semantics, name in ((WAIT, "wait"), (NO_WAIT, "nowait")):
            journey = foremost_journey(
                network, "hub", target, 1, semantics, horizon=24
            )
            if journey is None:
                print(f"  {name:7s} hub->{target}: no journey (missed the bus)")
            else:
                print(
                    f"  {name:7s} hub->{target}: depart {journey.departure}, "
                    f"arrive {journey.arrival}, waits {journey.pauses}"
                )
        distance = temporal_distance(network, "hub", target, 1, WAIT, horizon=24)
        print(f"  temporal distance hub->{target} (wait): {distance}")

    print()
    print("The network as an acceptor: ride labels r (red) / g (green)")
    print("-" * 60)
    acceptor = TVGAutomaton(network, initial="hub", accepting="hub", start_time=0)
    wait_dfa = minimize(wait_language_automaton(acceptor).to_dfa())
    nowait_dfa = minimize(nowait_language_automaton(acceptor).to_dfa())
    print(f"  minimal DFA for L_wait:   {len(wait_dfa.states)} states")
    print(f"  minimal DFA for L_nowait: {len(nowait_dfa.states)} states")

    def show(sample):
        return sorted(sample, key=lambda w: (len(w), w))[:12]

    print(f"  L_wait   round trips (<=6): {show(language_upto(wait_dfa, 6))}")
    print(f"  L_nowait round trips (<=6): {show(language_upto(nowait_dfa, 6))}")
    print()
    print("Both languages are regular -- a periodic adversary cannot use")
    print("Theorem 2.1's clockwork; that needs aperiodic schedules.")


if __name__ == "__main__":
    main()
