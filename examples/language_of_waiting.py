#!/usr/bin/env python3
"""The expressivity gap, end to end on the paper's own example.

Reproduces and extends Figure 1 / Table 1:

* verifies L_nowait(G) = {a^n b^n : n >= 1} by exhaustive sampling;
* shows the direct journeys' clock arithmetic (the prime clockwork);
* derives L_wait(G) — which the paper does not spell out — as the
  regular language (a*bbb*)|(ab)|(b), verified by sampling;
* contrasts Myhill–Nerode lower bounds of both samples: the no-wait
  bound grows without end, the wait bound freezes at the minimal DFA.

Run:  python examples/language_of_waiting.py
"""

from repro import NO_WAIT, WAIT, figure1_automaton
from repro.analysis.expressivity import nerode_lower_bound
from repro.automata.enumeration import language_upto
from repro.automata.operations import minimize
from repro.automata.regex import regex_to_nfa
from repro.constructions.figure1 import figure1_clock, figure1_wait_language_description


def main() -> None:
    fig1 = figure1_automaton()

    print("Figure 1 graph (p=2, q=3), reading starts at t=1")
    print("-" * 60)
    for edge in fig1.graph.edges:
        print(f"  {edge.key}: {edge.source}->{edge.target} label={edge.label}")

    print()
    print("The clockwork: the date after a direct journey IS the word")
    print("-" * 60)
    for word in ("a", "aa", "aab", "aabb"):
        print(f"  after {word!r:8s} the clock reads p^n q^j = {figure1_clock(word)}")

    print()
    print("L_nowait(G) sampled to length 8")
    print("-" * 60)
    sample = sorted(fig1.language(8, NO_WAIT), key=lambda w: (len(w), w))
    print(f"  {sample}")
    assert sample == ["ab", "aabb", "aaabbb", "aaaabbbb"]

    print()
    print("One witness journey per accepted word")
    print("-" * 60)
    for word in ("ab", "aabb"):
        journey = next(fig1.accepting_journeys(word, NO_WAIT))
        hops = ", ".join(f"{h.edge.key}@{h.start}" for h in journey)
        print(f"  {word!r}: {hops} -> arrives {journey.arrival}")

    print()
    print("Switching waiting ON: the derived regular language")
    print("-" * 60)
    pattern = figure1_wait_language_description()
    wait_sample = fig1.language(6, WAIT, horizon=2600)
    reference = language_upto(regex_to_nfa(pattern, "ab"), 6)
    print(f"  derived regex: {pattern}")
    print(f"  sampled L_wait (len<=6) == regex sample: {wait_sample == reference}")
    dfa = minimize(regex_to_nfa(pattern, "ab").to_dfa())
    print(f"  minimal DFA for L_wait: {len(dfa.states)} states")

    print()
    print("Myhill-Nerode lower bounds: non-regular vs regular, as data")
    print("-" * 60)
    print(f"  {'depth':>5}  {'nowait bound':>12}  {'wait bound':>10}")
    for depth in (4, 6, 8, 10):
        nowait_bound = nerode_lower_bound(fig1.language(depth, NO_WAIT), depth)
        wait_depth = min(depth, 6)  # exact wait sampling bounded by e4 dates
        wait_bound = nerode_lower_bound(
            fig1.language(wait_depth, WAIT, horizon=2600), wait_depth
        )
        print(f"  {depth:>5}  {nowait_bound:>12}  {wait_bound:>10}")
    print()
    print("The left column grows forever (a^n b^n is not regular); the")
    print("right column is pinned by the 6-state DFA. Waiting collapsed a")
    print("Turing-grade environment to a finite-state one -- Theorem 2.2.")


if __name__ == "__main__":
    main()
