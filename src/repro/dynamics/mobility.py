"""Mobility-driven contact generation.

The wireless ad hoc networks the paper cites as its motivating class are
proximity networks of moving agents.  This module simulates random
walkers on a grid (a light random-waypoint stand-in that needs no
floating-point geometry) and derives the contact TVG: an undirected
contact exists at ``t`` whenever two walkers occupy the same or adjacent
cells.  Small grids with few walkers yield exactly the regime the paper
describes — snapshots are almost always disconnected while the temporal
footprint is rich.
"""

from __future__ import annotations

import random
from typing import Hashable

import networkx as nx

from repro.core.presence import at_times
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ReproError


def random_walk_positions(
    walkers: int,
    width: int,
    height: int,
    horizon: int,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> dict[Hashable, list[tuple[int, int]]]:
    """Per-walker position sequences of a lazy random walk on the grid.

    Each step a walker stays put or moves to a uniformly chosen grid
    neighbour.  Deterministic under ``seed``.
    """
    if walkers < 1 or width < 1 or height < 1:
        raise ReproError("walkers, width and height must all be positive")
    rng = rng if rng is not None else random.Random(seed if seed is not None else 0)
    grid = nx.grid_2d_graph(width, height)
    positions: dict[Hashable, list[tuple[int, int]]] = {}
    for walker in range(walkers):
        cell = (rng.randrange(width), rng.randrange(height))
        track = [cell]
        for _ in range(horizon - 1):
            options = [cell] + list(grid.neighbors(cell))
            cell = rng.choice(options)
            track.append(cell)
        positions[walker] = track
    return positions


def _adjacent(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return abs(a[0] - b[0]) + abs(a[1] - b[1]) <= 1


def proximity_tvg(
    positions: dict[Hashable, list[tuple[int, int]]],
    latency: int = 1,
    name: str = "proximity",
) -> TimeVaryingGraph:
    """The contact TVG of a set of trajectories.

    Nodes are the walkers; an undirected contact is present at ``t`` when
    the two walkers are in the same or Manhattan-adjacent cells at ``t``.
    """
    if not positions:
        raise ReproError("at least one trajectory is required")
    lengths = {len(track) for track in positions.values()}
    if len(lengths) != 1:
        raise ReproError(f"trajectories have differing lengths {sorted(lengths)}")
    horizon = lengths.pop()
    graph = TimeVaryingGraph(lifetime=Lifetime(0, horizon), name=name)
    walkers = list(positions)
    graph.add_nodes(walkers)
    for i, u in enumerate(walkers):
        for v in walkers[i + 1 :]:
            contact_times = [
                t
                for t in range(horizon)
                if _adjacent(positions[u][t], positions[v][t])
            ]
            if contact_times:
                graph.add_contact(u, v, presence=at_times(contact_times))
    return graph


def random_waypoint_tvg(
    walkers: int,
    width: int,
    height: int,
    horizon: int,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> TimeVaryingGraph:
    """Convenience: trajectories plus contact extraction in one call."""
    positions = random_walk_positions(walkers, width, height, horizon, rng, seed)
    return proximity_tvg(positions, name=f"walkers{walkers}@{width}x{height}")
