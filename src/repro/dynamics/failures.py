"""Node-failure injection.

A node that is *down* at date ``t`` can neither transmit, receive, nor
run its tick at ``t`` (its buffer survives — the device reboots with its
storage intact).  Failures are specified per node as any container of
dates (a ``set`` or an :class:`~repro.core.intervals.IntervalSet`).

The theory side: failing node ``n`` during ``F`` is *equivalent* to the
TVG in which every edge out of ``n`` is absent while ``n`` is down and
every edge into ``n`` is unusable when its traversal would arrive while
``n`` is down.  :func:`with_node_failures` builds exactly that graph, so
journey reachability on it predicts what the failing simulation
delivers — the bridge the integration tests drive.
"""

from __future__ import annotations

from typing import Container, Hashable, Mapping

from repro.core.presence import function_presence
from repro.core.transforms import graph_like
from repro.core.tvg import TimeVaryingGraph
from repro.errors import SimulationError

FailureSchedule = Mapping[Hashable, Container[int]]


def validate_failures(graph: TimeVaryingGraph, failures: FailureSchedule) -> None:
    """Reject schedules naming unknown nodes."""
    unknown = [node for node in failures if not graph.has_node(node)]
    if unknown:
        raise SimulationError(f"failure schedule names unknown nodes {unknown!r}")


def is_down(failures: FailureSchedule, node: Hashable, time: int) -> bool:
    """Whether ``node`` is failed at ``time``."""
    schedule = failures.get(node)
    return schedule is not None and time in schedule


def with_node_failures(
    graph: TimeVaryingGraph, failures: FailureSchedule
) -> TimeVaryingGraph:
    """The TVG whose journeys are exactly the failure-surviving ones.

    An edge ``u -> v`` is usable at departure ``t`` iff it was usable
    before, ``u`` is up at ``t``, and ``v`` is up at the arrival date
    ``t + zeta(t)`` (a traversal landing on a down node is lost).
    """
    validate_failures(graph, failures)
    filtered = graph_like(graph, name=f"{graph.name}~failures")
    filtered.add_nodes(graph.nodes)
    for edge in graph.edges:
        source_schedule = failures.get(edge.source)
        target_schedule = failures.get(edge.target)
        if source_schedule is None and target_schedule is None:
            filtered.add_edge_object(edge)
            continue

        def usable(
            t: int,
            e=edge,
            down_source=source_schedule,
            down_target=target_schedule,
        ) -> bool:
            if not e.present_at(t):
                return False
            if down_source is not None and t in down_source:
                return False
            if down_target is not None and t + e.latency(t) in down_target:
                return False
            return True

        filtered.add_edge(
            edge.source,
            edge.target,
            label=edge.label,
            presence=function_presence(usable, label=f"{edge.key} sans failures"),
            latency=edge.latency,
            key=edge.key,
        )
    return filtered
