"""Messages carried by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable


@dataclass(frozen=True)
class Message:
    """An immutable message.

    Forwarding produces new :class:`Message` objects via :meth:`forwarded`
    so the provenance fields (``hops``, ``path``) stay truthful even when
    a message fans out along several edges at once.
    """

    uid: int
    origin: Hashable
    payload: object
    created: int
    hops: int = 0
    path: tuple[Hashable, ...] = field(default_factory=tuple)

    def forwarded(self, via: Hashable) -> "Message":
        """The copy of this message after one hop through ``via``."""
        return replace(self, hops=self.hops + 1, path=self.path + (via,))

    def __repr__(self) -> str:
        return (
            f"Message(#{self.uid} from {self.origin!r} at {self.created}, "
            f"hops={self.hops})"
        )
