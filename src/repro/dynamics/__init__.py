"""Dynamic-network simulation substrate.

The paper's introduction motivates waiting as *store-carry-forward*
buffering in infrastructure-less networks.  This package makes that
concrete: a deterministic discrete-event, message-passing simulator over
time-varying graphs, protocol implementations with and without
buffering, and the mobility/contact generators producing the
"disconnected at every instant" networks the paper describes.

The bridge to the theory: a bufferless flood informs exactly the
no-wait-reachable nodes, a buffered flood exactly the wait-reachable
ones — and the tests check the operational simulator against the
declarative journey search on both counts.
"""

from repro.dynamics.messages import Message
from repro.dynamics.network import SimulationReport, Simulator
from repro.dynamics.nodes import NodeContext, Protocol
from repro.dynamics.protocols.broadcast import (
    BroadcastOutcome,
    BufferedFlood,
    BufferlessFlood,
    simulate_broadcast,
)

__all__ = [
    "BroadcastOutcome",
    "BufferedFlood",
    "BufferlessFlood",
    "Message",
    "NodeContext",
    "Protocol",
    "SimulationReport",
    "Simulator",
    "simulate_broadcast",
]
