"""Token-counting gossip: how much information mixes over time.

Every node starts with one token (its own id).  Whenever a contact is
present, nodes exchange their full token sets (buffered — this protocol
inherently needs store-carry-forward).  The per-round histogram of token
counts measures how quickly the dynamic network mixes information; on
"disconnected at every instant" graphs it visualizes exactly the
temporal-connectivity phenomenon the paper opens with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.messages import Message
from repro.dynamics.network import Simulator
from repro.dynamics.nodes import NodeContext, Protocol


class GossipCounter(Protocol):
    """Exchange known-token sets over every present contact."""

    buffering = True

    def __init__(self, node: Hashable) -> None:
        self.node = node
        self.simulator: Simulator | None = None
        self.known: set[Hashable] = {node}
        self._advertised: dict[str, frozenset[Hashable]] = {}

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        self.known |= set(message.payload)

    def on_tick(self, ctx: NodeContext, buffered: tuple[Message, ...]) -> None:
        assert self.simulator is not None
        snapshot = frozenset(self.known)
        for edge in ctx.present_edges:
            # Re-advertise only when the known set grew since the last
            # transmission over this edge.
            if self._advertised.get(edge.key) == snapshot:
                continue
            self._advertised[edge.key] = snapshot
            ctx.send(edge, self.simulator.new_message(self.node, snapshot, ctx.time))


@dataclass
class GossipReport:
    """Evolution of knowledge across the run."""

    counts_over_time: list[tuple[int, list[int]]] = field(default_factory=list)
    final_counts: dict[Hashable, int] = field(default_factory=dict)

    @property
    def fully_mixed(self) -> bool:
        """Whether every node ended up knowing every token."""
        if not self.final_counts:
            return False
        total = len(self.final_counts)
        return all(count == total for count in self.final_counts.values())


def run_gossip(
    graph: TimeVaryingGraph,
    start: int | None = None,
    end: int | None = None,
    sample_every: int = 1,
) -> GossipReport:
    """Run the gossip protocol and sample knowledge counts over time."""
    simulator = Simulator(graph, GossipCounter, start, end)
    for protocol in simulator.protocols.values():
        protocol.simulator = simulator

    report = GossipReport()
    # Sample by stepping the simulator window in chunks: simplest exact
    # approach is to run fully, then reconstruct counts from deliveries.
    simulation = simulator.run()
    knowledge: dict[Hashable, set[Hashable]] = {n: {n} for n in graph.nodes}
    deliveries = sorted(simulation.deliveries, key=lambda item: item[0])
    cursor = 0
    for time in range(simulator.start, simulator.end):
        while cursor < len(deliveries) and deliveries[cursor][0] == time:
            _t, node, message = deliveries[cursor]
            knowledge[node] |= set(message.payload)
            cursor += 1
        if (time - simulator.start) % sample_every == 0:
            report.counts_over_time.append(
                (time, sorted(len(k) for k in knowledge.values()))
            )
    report.final_counts = {node: len(known) for node, known in knowledge.items()}
    return report
