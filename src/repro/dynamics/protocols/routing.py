"""Unicast routing over time-varying graphs.

Two ends of the DTN routing spectrum:

* :func:`route_direct` — source routing along a precomputed journey
  under a chosen waiting semantics; with :data:`~repro.core.semantics.NO_WAIT`
  this is the fragile "hot-potato" regime, with
  :data:`~repro.core.semantics.WAIT` the store-carry-forward regime;
* :func:`route_epidemic` — epidemic (flooding) routing with per-copy
  TTL, the classic robust-but-costly baseline.

Both return a :class:`RoutingOutcome` with delivery status, delay, and
transmission cost, the three columns DTN papers tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.semantics import NO_WAIT, WaitingSemantics
from repro.core.traversal import foremost_journey
from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.messages import Message
from repro.dynamics.network import Simulator
from repro.dynamics.nodes import NodeContext, Protocol


@dataclass(frozen=True)
class RoutingOutcome:
    """Result of one unicast attempt."""

    source: Hashable
    destination: Hashable
    delivered: bool
    delay: int | None
    transmissions: int
    hops: int | None


def route_direct(
    graph: TimeVaryingGraph,
    source: Hashable,
    destination: Hashable,
    start: int,
    semantics: WaitingSemantics = NO_WAIT,
    horizon: int | None = None,
) -> RoutingOutcome:
    """Source-route along a foremost journey under ``semantics``.

    The journey search *is* the routing table: if no feasible journey
    exists the attempt is undeliverable and reported as such.
    """
    journey = foremost_journey(graph, source, destination, start, semantics, horizon)
    if journey is None:
        return RoutingOutcome(source, destination, False, None, 0, None)
    return RoutingOutcome(
        source=source,
        destination=destination,
        delivered=True,
        delay=journey.arrival - start,
        transmissions=len(journey),
        hops=len(journey),
    )


class _EpidemicNode(Protocol):
    buffering = True

    def __init__(self, node: Hashable, source: Hashable, ttl: int) -> None:
        self.node = node
        self.source = source
        self.ttl = ttl
        self.simulator: Simulator | None = None
        self._seen: set[int] = set()
        self._sent: set[tuple[int, str]] = set()

    def on_start(self, ctx: NodeContext) -> None:
        if self.node != self.source:
            return
        assert self.simulator is not None
        message = self.simulator.new_message(self.node, "unicast", ctx.time)
        self._seen.add(message.uid)
        ctx.store(message)

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        if message.uid in self._seen:
            return
        self._seen.add(message.uid)
        if message.hops < self.ttl:
            ctx.store(message)

    def on_tick(self, ctx: NodeContext, buffered: tuple[Message, ...]) -> None:
        for message in buffered:
            for edge in ctx.present_edges:
                stamp = (message.uid, edge.key)
                if stamp not in self._sent:
                    self._sent.add(stamp)
                    ctx.send(edge, message)


def route_epidemic(
    graph: TimeVaryingGraph,
    source: Hashable,
    destination: Hashable,
    start: int | None = None,
    end: int | None = None,
    ttl: int = 64,
) -> RoutingOutcome:
    """Epidemic routing: flood with TTL, report the destination's copy."""
    simulator = Simulator(
        graph, lambda node: _EpidemicNode(node, source, ttl), start, end
    )
    for protocol in simulator.protocols.values():
        protocol.simulator = simulator
    report = simulator.run()
    arrival = report.arrival_time(1, destination)
    hops = None
    if arrival is not None:
        for time, node, message in report.deliveries:
            if node == destination and message.uid == 1:
                hops = message.hops
                break
    return RoutingOutcome(
        source=source,
        destination=destination,
        delivered=arrival is not None,
        delay=None if arrival is None else arrival - simulator.start,
        transmissions=report.transmissions,
        hops=hops,
    )
