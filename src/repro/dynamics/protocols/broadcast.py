"""Flooding broadcast, with and without store-carry-forward.

The operational face of the paper's dichotomy:

* :class:`BufferlessFlood` — a node can forward a message only at the
  instant it arrives; if no edge is present right then, the copy dies.
  The informed set is exactly the *no-wait*-reachable set.
* :class:`BufferedFlood` — store-carry-forward: copies are buffered and
  transmitted whenever a contact appears.  The informed set is exactly
  the *wait*-reachable set.

Tests cross-validate both equalities against the declarative journey
search; the E6 benchmark sweeps edge density and reports the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.semantics import NO_WAIT, WAIT
from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.messages import Message
from repro.dynamics.network import Simulator
from repro.dynamics.nodes import NodeContext, Protocol


class BufferlessFlood(Protocol):
    """Forward on arrival or never — the no-buffering environment.

    A storage-less node relays *every* arrival, because a copy arriving
    later departs later and can reach places the first copy could not
    (direct journeys through later dates).  Relaying twice from the same
    instant is idempotent, so duplicates are collapsed per
    ``(message, arrival date)`` — an optimization, not a semantic change.
    """

    buffering = False

    def __init__(self, node: Hashable, origin: Hashable) -> None:
        self.node = node
        self.origin = origin
        self.simulator: Simulator | None = None  # injected by the runner
        self._relayed: set[tuple[int, int]] = set()

    def on_start(self, ctx: NodeContext) -> None:
        if self.node != self.origin:
            return
        assert self.simulator is not None
        message = self.simulator.new_message(self.node, "flood", ctx.time)
        self._relayed.add((message.uid, ctx.time))
        ctx.broadcast(message)

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        stamp = (message.uid, ctx.time)
        if stamp in self._relayed:
            return
        self._relayed.add(stamp)
        # The only chance to relay is right now; no storage exists.
        ctx.broadcast(message)


class BufferedFlood(Protocol):
    """Store-carry-forward flooding (epidemic broadcast)."""

    buffering = True

    def __init__(self, node: Hashable, origin: Hashable) -> None:
        self.node = node
        self.origin = origin
        self.simulator: Simulator | None = None
        self._seen: set[int] = set()
        #: (message uid, edge key) pairs already transmitted.
        self._sent: set[tuple[int, str]] = set()

    def on_start(self, ctx: NodeContext) -> None:
        if self.node != self.origin:
            return
        assert self.simulator is not None
        message = self.simulator.new_message(self.node, "flood", ctx.time)
        self._seen.add(message.uid)
        ctx.store(message)

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        if message.uid in self._seen:
            return
        self._seen.add(message.uid)
        ctx.store(message)

    def on_tick(self, ctx: NodeContext, buffered: tuple[Message, ...]) -> None:
        for message in buffered:
            for edge in ctx.present_edges:
                stamp = (message.uid, edge.key)
                if stamp not in self._sent:
                    self._sent.add(stamp)
                    ctx.send(edge, message)


class PersistentFlood(BufferedFlood):
    """Buffered flood that retransmits at every contact instant.

    The per-edge send-once optimization of :class:`BufferedFlood` assumes
    the receiver hears what is sent; under failure injection a copy can
    land on a dead radio, so robustness requires retrying at each present
    instant.  Dedup is per ``(message, edge, date)``: exactly the
    idempotence the journey semantics grants.
    """

    def on_tick(self, ctx: NodeContext, buffered: tuple[Message, ...]) -> None:
        for message in buffered:
            for edge in ctx.present_edges:
                stamp = (message.uid, edge.key, ctx.time)
                if stamp not in self._sent:
                    self._sent.add(stamp)
                    ctx.send(edge, message)


@dataclass(frozen=True)
class BroadcastOutcome:
    """Summary of one broadcast run."""

    origin: Hashable
    buffering: bool
    informed: frozenset[Hashable]
    arrival_times: dict[Hashable, int]
    transmissions: int
    node_count: int

    @property
    def delivery_ratio(self) -> float:
        """Informed nodes (origin included) over all nodes."""
        return (len(self.informed) + 1) / self.node_count

    @property
    def completion_time(self) -> int | None:
        """Date the last node was informed; None unless all were."""
        if len(self.informed) + 1 < self.node_count:
            return None
        return max(self.arrival_times.values(), default=None)


def simulate_broadcast(
    graph: TimeVaryingGraph,
    origin: Hashable,
    buffering: bool,
    start: int | None = None,
    end: int | None = None,
    failures: dict | None = None,
    persistent: bool = False,
    engine=None,
) -> BroadcastOutcome:
    """Run one flood from ``origin`` and summarize it.

    ``failures`` injects node downtime (see
    :mod:`repro.dynamics.failures`); with failures present, pass
    ``persistent=True`` to retransmit at every contact instant —
    otherwise a copy lost to a dead radio is never retried and the
    outcome undershoots the surviving-journey reachability.
    ``engine`` is forwarded to the :class:`Simulator` for compiled
    per-round presence lookups.
    """
    if buffering:
        factory = PersistentFlood if persistent else BufferedFlood
    else:
        factory = BufferlessFlood
    simulator = Simulator(
        graph, lambda node: factory(node, origin), start, end,
        failures=failures, engine=engine,
    )
    for protocol in simulator.protocols.values():
        protocol.simulator = simulator
    report = simulator.run()
    uid = 1  # the single message minted by the origin
    # The origin may hear its own flood echoed back; it was informed from
    # the start, so it is excluded from the informed set and the times.
    informed = frozenset(report.informed_nodes(uid)) - {origin}
    arrivals = {
        node: time
        for (mid, node), time in report.first_arrival.items()
        if mid == uid and node != origin
    }
    return BroadcastOutcome(
        origin=origin,
        buffering=buffering,
        informed=informed,
        arrival_times=arrivals,
        transmissions=report.transmissions,
        node_count=graph.node_count,
    )


def reachability_prediction(
    graph: TimeVaryingGraph,
    origin: Hashable,
    buffering: bool,
    start: int,
    end: int,
) -> set[Hashable]:
    """The informed set the theory predicts for :func:`simulate_broadcast`.

    No-wait reachability for the bufferless flood, wait reachability for
    the buffered one — the bridge the tests drive across.  Arrivals at or
    beyond ``end`` are excluded, matching the simulator's horizon rule
    (a traversal completing after the window is never delivered).  The
    equality assumes non-overtaking latencies (constant latencies — the
    dynamics generators' default — always qualify).
    """
    from repro.core.traversal import reachable_states

    semantics = WAIT if buffering else NO_WAIT
    states = reachable_states(graph, [(origin, start)], semantics, horizon=end)
    return {node for node, time in states if time < end} - {origin}
