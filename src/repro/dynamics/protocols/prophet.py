"""PRoPHET routing (Lindgren, Doria, Schelén, 2003).

Probabilistic Routing Protocol using History of Encounters and
Transitivity — the classic *informed* store-carry-forward scheme: each
node maintains delivery predictabilities ``P(a, b)`` updated on every
encounter (direct boost, aging, transitivity) and forwards a copy only
to relays with a higher predictability for the destination.

Why it is in this reproduction: PRoPHET is the waiting-enabled protocol
family's "smart" member, sitting between the single-copy direct wait
and the flood.  On the paper's never-connected networks it exercises
the store-carry-forward machinery with state that *itself* evolves over
the time-varying graph.

Floating-point predictabilities are used as the original paper defines
them; determinism is preserved because updates depend only on the
(seeded) contact schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.messages import Message
from repro.dynamics.network import Simulator
from repro.dynamics.nodes import NodeContext, Protocol
from repro.errors import SimulationError

#: Canonical constants from the PRoPHET paper.
P_INIT = 0.75
GAMMA = 0.98
BETA = 0.25


class ProphetNode(Protocol):
    """One PRoPHET agent."""

    buffering = True

    def __init__(
        self, node: Hashable, source: Hashable, destination: Hashable
    ) -> None:
        self.node = node
        self.source = source
        self.destination = destination
        self.simulator: Simulator | None = None
        self.predictability: dict[Hashable, float] = {}
        self.carrying = node == source
        self._last_aged: int | None = None
        self._handed_to: set[Hashable] = set()

    # -- predictability maintenance ------------------------------------------------

    def _age(self, now: int) -> None:
        if self._last_aged is None:
            self._last_aged = now
            return
        elapsed = now - self._last_aged
        if elapsed <= 0:
            return
        factor = GAMMA**elapsed
        self.predictability = {
            peer: value * factor for peer, value in self.predictability.items()
        }
        self._last_aged = now

    def _met(self, peer: Hashable) -> None:
        current = self.predictability.get(peer, 0.0)
        self.predictability[peer] = current + (1.0 - current) * P_INIT

    def _transit(self, peer: Hashable, peer_table: dict[Hashable, float]) -> None:
        p_meet = self.predictability.get(peer, 0.0)
        for target, p_peer in peer_table.items():
            if target == self.node:
                continue
            current = self.predictability.get(target, 0.0)
            self.predictability[target] = max(
                current, current + (1.0 - current) * p_meet * p_peer * BETA
            )

    # -- protocol hooks ----------------------------------------------------------------

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        kind = message.payload[0]
        if kind == "summary":
            _kind, sender, table = message.payload
            self._age(ctx.time)
            self._met(sender)
            self._transit(sender, table)
        elif kind == "data":
            self.carrying = True

    def on_tick(self, ctx: NodeContext, buffered: tuple[Message, ...]) -> None:
        assert self.simulator is not None
        self._age(ctx.time)
        for edge in ctx.present_edges:
            # Beacon our summary vector to every present neighbour.
            ctx.send(
                edge,
                self.simulator.new_message(
                    self.node,
                    ("summary", self.node, dict(self.predictability)),
                    ctx.time,
                ),
            )
        if not self.carrying:
            return
        my_p = self.predictability.get(self.destination, 0.0)
        for edge in ctx.present_edges:
            peer = edge.target
            if peer in self._handed_to:
                continue
            if peer == self.destination:
                self._handed_to.add(peer)
                ctx.send(
                    edge,
                    self.simulator.new_message(self.node, ("data",), ctx.time),
                )
                continue
            # Forward a copy only to strictly better relays.
            peer_p = self.peer_estimate(peer)
            if peer_p > my_p:
                self._handed_to.add(peer)
                ctx.send(
                    edge,
                    self.simulator.new_message(self.node, ("data",), ctx.time),
                )

    def peer_estimate(self, peer: Hashable) -> float:
        """Our latest knowledge of the peer's P(peer, destination).

        Gleaned from their most recent summary via the transitivity
        table; conservatively 0 when we have never heard from them.
        """
        return self._peer_tables.get(peer, {}).get(self.destination, 0.0)

    @property
    def _peer_tables(self) -> dict[Hashable, dict[Hashable, float]]:
        if not hasattr(self, "_tables"):
            self._tables: dict[Hashable, dict[Hashable, float]] = {}
        return self._tables

    def on_start(self, ctx: NodeContext) -> None:
        self._last_aged = ctx.time


class _ProphetWithTables(ProphetNode):
    """ProphetNode that records peer summaries for forwarding decisions."""

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        if message.payload[0] == "summary":
            _kind, sender, table = message.payload
            self._peer_tables[sender] = dict(table)
        super().on_receive(ctx, message)


@dataclass(frozen=True)
class ProphetOutcome:
    """Result of one PRoPHET unicast."""

    source: Hashable
    destination: Hashable
    delivered: bool
    delay: int | None
    transmissions: int
    data_copies: int


def route_prophet(
    graph: TimeVaryingGraph,
    source: Hashable,
    destination: Hashable,
    start: int | None = None,
    end: int | None = None,
) -> ProphetOutcome:
    """Run one PRoPHET unicast and summarize it."""
    if source == destination:
        raise SimulationError("source and destination must differ")
    simulator = Simulator(
        graph,
        lambda node: _ProphetWithTables(node, source, destination),
        start,
        end,
    )
    for protocol in simulator.protocols.values():
        protocol.simulator = simulator
    report = simulator.run()
    arrival: int | None = None
    data_copies = 0
    for time, node, message in report.deliveries:
        if message.payload[0] != "data":
            continue
        data_copies += 1
        if node == destination and arrival is None:
            arrival = time
    return ProphetOutcome(
        source=source,
        destination=destination,
        delivered=arrival is not None,
        delay=None if arrival is None else arrival - simulator.start,
        transmissions=report.transmissions,
        data_copies=data_copies,
    )
