"""Protocol implementations for the dynamics simulator."""

from repro.dynamics.protocols.broadcast import (
    BroadcastOutcome,
    BufferedFlood,
    BufferlessFlood,
    simulate_broadcast,
)
from repro.dynamics.protocols.gossip import GossipCounter, run_gossip
from repro.dynamics.protocols.prophet import ProphetOutcome, route_prophet
from repro.dynamics.protocols.routing import (
    RoutingOutcome,
    route_direct,
    route_epidemic,
)
from repro.dynamics.protocols.spray_and_wait import SprayOutcome, spray_and_wait

__all__ = [
    "BroadcastOutcome",
    "BufferedFlood",
    "BufferlessFlood",
    "GossipCounter",
    "ProphetOutcome",
    "RoutingOutcome",
    "SprayOutcome",
    "route_direct",
    "route_epidemic",
    "route_prophet",
    "run_gossip",
    "simulate_broadcast",
    "spray_and_wait",
]
