"""Spray-and-Wait routing (Spyropoulos et al., 2005).

The DTN routing scheme whose very name is the paper's subject: a source
*sprays* a fixed budget of ``L`` copies into the network (binary
splitting: whoever holds ``k > 1`` copies hands half to the next node
met), after which every copy holder *waits* to deliver directly to the
destination.  It trades epidemic routing's transmission storm for a
bounded copy count while keeping most of the delay benefit — but only
in environments that allow waiting, which is exactly the capability the
paper quantifies.

Implementation notes: copy counts ride in the message payload; each
relay node holds its copies in the simulator buffer and keeps trying
(a) to split with fresh nodes while ``k > 1`` and (b) to deliver
directly whenever the destination is a present neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.messages import Message
from repro.dynamics.network import Simulator
from repro.dynamics.nodes import NodeContext, Protocol
from repro.errors import SimulationError


@dataclass(frozen=True)
class SprayOutcome:
    """Result of one spray-and-wait unicast."""

    source: Hashable
    destination: Hashable
    copies: int
    delivered: bool
    delay: int | None
    transmissions: int


class _SprayNode(Protocol):
    buffering = True

    def __init__(
        self, node: Hashable, source: Hashable, destination: Hashable, copies: int
    ) -> None:
        self.node = node
        self.source = source
        self.destination = destination
        self.initial_copies = copies
        self.simulator: Simulator | None = None
        self.copies = 0
        self.have_message = False
        self._delivered_to: set[Hashable] = set()

    def on_start(self, ctx: NodeContext) -> None:
        if self.node == self.source:
            self.copies = self.initial_copies
            self.have_message = True

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        kind, amount = message.payload
        if self.node == self.destination:
            self.have_message = True
            return
        if kind == "spray":
            self.copies += amount
            self.have_message = True

    def on_tick(self, ctx: NodeContext, buffered: tuple[Message, ...]) -> None:
        if not self.have_message or self.node == self.destination:
            return
        assert self.simulator is not None
        for edge in ctx.present_edges:
            # Direct delivery dominates: always hand the data to the
            # destination when met (costs one transmission, ends our part).
            if edge.target == self.destination:
                if self.destination not in self._delivered_to:
                    self._delivered_to.add(self.destination)
                    ctx.send(
                        edge,
                        self.simulator.new_message(
                            self.node, ("deliver", 0), ctx.time
                        ),
                    )
                continue
            # Binary spray: give away half our copies to a node we have
            # not sprayed yet, while we still hold more than one.
            if self.copies > 1 and edge.target not in self._delivered_to:
                given = self.copies // 2
                self.copies -= given
                self._delivered_to.add(edge.target)
                ctx.send(
                    edge,
                    self.simulator.new_message(self.node, ("spray", given), ctx.time),
                )


def spray_and_wait(
    graph: TimeVaryingGraph,
    source: Hashable,
    destination: Hashable,
    copies: int = 4,
    start: int | None = None,
    end: int | None = None,
) -> SprayOutcome:
    """Run one spray-and-wait unicast and summarize it."""
    if copies < 1:
        raise SimulationError(f"copy budget must be >= 1, got {copies}")
    if source == destination:
        raise SimulationError("source and destination must differ")
    simulator = Simulator(
        graph,
        lambda node: _SprayNode(node, source, destination, copies),
        start,
        end,
    )
    for protocol in simulator.protocols.values():
        protocol.simulator = simulator
    report = simulator.run()
    arrival: int | None = None
    for time, node, message in report.deliveries:
        if node == destination and message.payload[0] == "deliver":
            arrival = time
            break
    return SprayOutcome(
        source=source,
        destination=destination,
        copies=copies,
        delivered=arrival is not None,
        delay=None if arrival is None else arrival - simulator.start,
        transmissions=report.transmissions,
    )
