"""Named workload scenarios.

One registry of the dynamic-network scenarios the examples and
benchmarks exercise, so every harness draws the same graphs from the
same seeds.  Each factory returns a fully-built TVG plus the metadata a
harness needs (suggested source/destination, window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.builders import TVGBuilder
from repro.core.generators import (
    bernoulli_tvg,
    edge_markovian_tvg,
    periodic_random_tvg,
    transit_tvg,
)
from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.mobility import random_waypoint_tvg
from repro.errors import ReproError


@dataclass(frozen=True)
class Workload:
    """A ready-to-run scenario."""

    name: str
    graph: TimeVaryingGraph
    source: Hashable
    destination: Hashable
    start: int
    end: int

    @property
    def window(self) -> tuple[int, int]:
        return (self.start, self.end)


def sparse_dtn(seed: int = 0) -> Workload:
    """Sparse edge-Markovian contacts: the paper's 'disconnected at every
    instant' regime (delivery needs store-carry-forward)."""
    horizon = 60
    graph = edge_markovian_tvg(
        12, horizon=horizon, birth=0.03, death=0.6, seed=seed, name="sparse-dtn"
    )
    return Workload("sparse-dtn", graph, 0, 11, 0, horizon)


def dense_manet(seed: int = 0) -> Workload:
    """Dense, flickering connectivity: waiting helps little."""
    horizon = 40
    graph = edge_markovian_tvg(
        10, horizon=horizon, birth=0.3, death=0.3, seed=seed, name="dense-manet"
    )
    return Workload("dense-manet", graph, 0, 9, 0, horizon)


def campus_walkers(seed: int = 0) -> Workload:
    """Random-waypoint proximity contacts on a small grid."""
    horizon = 40
    graph = random_waypoint_tvg(8, 5, 5, horizon, seed=seed)
    return Workload("campus-walkers", graph, 0, 7, 0, horizon)


def night_bus(seed: int = 0) -> Workload:
    """A deterministic periodic transit network (two circular lines)."""
    graph = transit_tvg(
        [
            (["hub", "north", "loop", "hub"], 0, 8),
            (["hub", "south", "hub"], 4, 8),
        ],
        latency=1,
        name="night-bus",
    )
    return Workload("night-bus", graph, "hub", "loop", 0, 32)


def flaky_backbone(seed: int = 0) -> Workload:
    """A ring whose links are up at rotating instants — never a connected
    snapshot, always temporally connected."""
    n = 6
    builder = TVGBuilder(name="flaky-backbone").lifetime(0, 36)
    for i in range(n):
        builder.contact(i, (i + 1) % n, period=(i % 3, 3), key=f"ring{i}")
    return Workload("flaky-backbone", builder.build(), 0, n // 2, 0, 36)


def random_periodic_acceptor(seed: int = 0) -> Workload:
    """A labeled periodic TVG for language experiments."""
    graph = periodic_random_tvg(
        4, period=4, density=0.5, labels="ab", seed=seed, name="periodic-acceptor"
    )
    return Workload("periodic-acceptor", graph, 0, 3, 0, 32)


def bernoulli_cloud(seed: int = 0) -> Workload:
    """Memoryless random contacts at moderate density."""
    horizon = 30
    graph = bernoulli_tvg(
        9, horizon=horizon, density=0.08, seed=seed, name="bernoulli-cloud"
    )
    return Workload("bernoulli-cloud", graph, 0, 8, 0, horizon)


_REGISTRY: dict[str, Callable[[int], Workload]] = {
    "sparse-dtn": sparse_dtn,
    "dense-manet": dense_manet,
    "campus-walkers": campus_walkers,
    "night-bus": night_bus,
    "flaky-backbone": flaky_backbone,
    "periodic-acceptor": random_periodic_acceptor,
    "bernoulli-cloud": bernoulli_cloud,
}


def workload_names() -> list[str]:
    """All registered scenario names."""
    return sorted(_REGISTRY)


def make_workload(name: str, seed: int = 0) -> Workload:
    """Build a named scenario with the given seed."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None
    return factory(seed)


def all_workloads(seed: int = 0) -> list[Workload]:
    """One instance of every scenario."""
    return [make_workload(name, seed) for name in workload_names()]
