"""Named workload scenarios and the service workload driver.

One registry of the dynamic-network scenarios the examples and
benchmarks exercise, so every harness draws the same graphs from the
same seeds.  Each factory returns a fully-built TVG plus the metadata a
harness needs (suggested source/destination, window).

The *service trace* half (:func:`generate_service_trace`) turns a
scenario into a deterministic mixed stream of query and mutation
operations in the wire-protocol shape of :mod:`repro.service.server`.
The matching replayer lives in :mod:`repro.service.replay` (it drives
the service dispatcher, which this layer may not import): the same
trace against two fresh services yields identical answer streams,
which is what lets the benchmark compare cached and cold runs
answer-for-answer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.builders import TVGBuilder
from repro.core.generators import (
    bernoulli_tvg,
    edge_markovian_tvg,
    periodic_random_tvg,
    transit_tvg,
)
from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.mobility import random_waypoint_tvg
from repro.errors import ReproError


@dataclass(frozen=True)
class Workload:
    """A ready-to-run scenario."""

    name: str
    graph: TimeVaryingGraph
    source: Hashable
    destination: Hashable
    start: int
    end: int

    @property
    def window(self) -> tuple[int, int]:
        return (self.start, self.end)


def sparse_dtn(seed: int = 0) -> Workload:
    """Sparse edge-Markovian contacts: the paper's 'disconnected at every
    instant' regime (delivery needs store-carry-forward)."""
    horizon = 60
    graph = edge_markovian_tvg(
        12, horizon=horizon, birth=0.03, death=0.6, seed=seed, name="sparse-dtn"
    )
    return Workload("sparse-dtn", graph, 0, 11, 0, horizon)


def dense_manet(seed: int = 0) -> Workload:
    """Dense, flickering connectivity: waiting helps little."""
    horizon = 40
    graph = edge_markovian_tvg(
        10, horizon=horizon, birth=0.3, death=0.3, seed=seed, name="dense-manet"
    )
    return Workload("dense-manet", graph, 0, 9, 0, horizon)


def campus_walkers(seed: int = 0) -> Workload:
    """Random-waypoint proximity contacts on a small grid."""
    horizon = 40
    graph = random_waypoint_tvg(8, 5, 5, horizon, seed=seed)
    return Workload("campus-walkers", graph, 0, 7, 0, horizon)


def night_bus(seed: int = 0) -> Workload:
    """A deterministic periodic transit network (two circular lines)."""
    graph = transit_tvg(
        [
            (["hub", "north", "loop", "hub"], 0, 8),
            (["hub", "south", "hub"], 4, 8),
        ],
        latency=1,
        name="night-bus",
    )
    return Workload("night-bus", graph, "hub", "loop", 0, 32)


def flaky_backbone(seed: int = 0) -> Workload:
    """A ring whose links are up at rotating instants — never a connected
    snapshot, always temporally connected."""
    n = 6
    builder = TVGBuilder(name="flaky-backbone").lifetime(0, 36)
    for i in range(n):
        builder.contact(i, (i + 1) % n, period=(i % 3, 3), key=f"ring{i}")
    return Workload("flaky-backbone", builder.build(), 0, n // 2, 0, 36)


def random_periodic_acceptor(seed: int = 0) -> Workload:
    """A labeled periodic TVG for language experiments."""
    graph = periodic_random_tvg(
        4, period=4, density=0.5, labels="ab", seed=seed, name="periodic-acceptor"
    )
    return Workload("periodic-acceptor", graph, 0, 3, 0, 32)


def bernoulli_cloud(seed: int = 0) -> Workload:
    """Memoryless random contacts at moderate density."""
    horizon = 30
    graph = bernoulli_tvg(
        9, horizon=horizon, density=0.08, seed=seed, name="bernoulli-cloud"
    )
    return Workload("bernoulli-cloud", graph, 0, 8, 0, horizon)


_REGISTRY: dict[str, Callable[[int], Workload]] = {
    "sparse-dtn": sparse_dtn,
    "dense-manet": dense_manet,
    "campus-walkers": campus_walkers,
    "night-bus": night_bus,
    "flaky-backbone": flaky_backbone,
    "periodic-acceptor": random_periodic_acceptor,
    "bernoulli-cloud": bernoulli_cloud,
}


def workload_names() -> list[str]:
    """All registered scenario names."""
    return sorted(_REGISTRY)


def make_workload(name: str, seed: int = 0) -> Workload:
    """Build a named scenario with the given seed."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        ) from None
    return factory(seed)


def all_workloads(seed: int = 0) -> list[Workload]:
    """One instance of every scenario."""
    return [make_workload(name, seed) for name in workload_names()]


# -- service workload traces ----------------------------------------------------

#: Relative weights of the query operations in a generated trace.
_QUERY_OPS = ("reach", "arrival", "growth", "classify")
_QUERY_WEIGHTS = (5, 5, 2, 1)


def _random_presence_spec(rng: random.Random, horizon: int) -> dict:
    """A structured presence spec drawn from the wire-encodable forms."""
    kind = rng.randrange(3)
    if kind == 0:
        period = rng.randint(2, 6)
        pattern = sorted(
            rng.sample(range(period), rng.randint(1, period))
        )
        return {"kind": "periodic", "pattern": pattern, "period": period}
    if kind == 1:
        a = rng.randrange(max(1, horizon - 1))
        b = rng.randint(a + 1, max(a + 1, horizon))
        return {"kind": "intervals", "pairs": [[a, b]]}
    return {"kind": "always"}


def generate_service_trace(
    workload: Workload,
    operations: int = 100,
    mutation_every: int = 5,
    seed: int = 0,
) -> list[dict]:
    """A deterministic mixed query/mutation trace for one scenario.

    Every ``mutation_every``-th operation is a mutation (cycling through
    add/remove/set-presence as the evolving edge population allows);
    the rest are queries drawn over the workload's nodes and window
    under both ``wait`` and ``nowait`` semantics.  The trace is plain
    wire-protocol dicts — JSON-able, replayable, and self-contained:
    removals and presence swaps only name keys the trace itself added,
    so replaying against any fresh instance of the scenario is valid.
    """
    rng = random.Random(seed)
    nodes = list(workload.graph.nodes)
    start, end = workload.window
    trace: list[dict] = []
    added_keys: list[str] = []
    counter = 0
    for position in range(operations):
        if mutation_every and position % mutation_every == mutation_every - 1:
            choice = rng.randrange(3)
            if choice == 1 and added_keys:  # remove a key this trace added
                key = added_keys.pop(rng.randrange(len(added_keys)))
                trace.append({"op": "remove_edge", "key": key})
                continue
            if choice == 2 and added_keys:  # reschedule one of ours
                key = added_keys[rng.randrange(len(added_keys))]
                trace.append({
                    "op": "set_presence",
                    "key": key,
                    "presence": _random_presence_spec(rng, end),
                })
                continue
            key = f"trace{counter}"
            counter += 1
            added_keys.append(key)
            source, target = rng.sample(nodes, 2)
            trace.append({
                "op": "add_edge",
                "source": source,
                "target": target,
                "key": key,
                "presence": _random_presence_spec(rng, end),
            })
            continue
        op = rng.choices(_QUERY_OPS, weights=_QUERY_WEIGHTS)[0]
        semantics = rng.choice(("wait", "nowait"))
        if op in ("reach", "arrival"):
            trace.append({
                "op": op,
                "source": rng.choice(nodes),
                "target": rng.choice(nodes),
                "start": start,
                "horizon": end,
                "semantics": semantics,
            })
        elif op == "growth":
            trace.append({
                "op": "growth", "start": start, "end": end,
                "semantics": semantics,
            })
        else:
            trace.append({"op": "classify", "start": start, "end": end})
    return trace


def zipf_weights(n: int, skew: float = 1.1) -> list[float]:
    """Zipf-law weights for ``n`` ranked items: weight of rank ``k``
    (1-based) is ``1 / k**skew``.  Real query traffic is head-heavy —
    a few hot endpoints absorb most requests — and the load bench needs
    that skew to exercise the cache's retained-entry path honestly
    (uniform traffic would understate hit rates)."""
    if n <= 0:
        raise ReproError(f"zipf_weights needs a positive n, got {n}")
    if skew < 0:
        raise ReproError(f"zipf skew must be non-negative, got {skew}")
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def generate_load_trace(
    workload: Workload,
    operations: int = 100,
    seed: int = 0,
    skew: float = 1.1,
    mutation_every: int = 0,
) -> list[dict]:
    """A zipf-skewed query trace (plus optional mutation churn) for the
    concurrent load bench.

    Unlike :func:`generate_service_trace` — which draws nodes uniformly
    so the replay bench sees maximal query diversity — this trace ranks
    the workload's nodes in a seed-shuffled order and picks sources and
    targets zipf-distributed over that ranking: a small hot set
    dominates, with a long cold tail, which is what makes cache hit
    rates and tail latencies under concurrency meaningful.  With
    ``mutation_every > 0`` every so-many-th operation is an ``add_edge``
    (always an addition, so concurrent shadows stay key-consistent).
    """
    rng = random.Random(seed)
    nodes = list(workload.graph.nodes)
    rng.shuffle(nodes)  # which nodes are hot is itself seed-dependent
    weights = zipf_weights(len(nodes), skew)
    start, end = workload.window
    trace: list[dict] = []
    counter = 0
    for position in range(operations):
        if mutation_every and position % mutation_every == mutation_every - 1:
            source, target = rng.sample(nodes, 2)
            key = f"load{seed}_{counter}"
            counter += 1
            trace.append({
                "op": "add_edge",
                "source": source,
                "target": target,
                "key": key,
                "presence": _random_presence_spec(rng, end),
            })
            continue
        op = rng.choices(_QUERY_OPS, weights=_QUERY_WEIGHTS)[0]
        semantics = rng.choice(("wait", "nowait"))
        if op in ("reach", "arrival"):
            source, target = rng.choices(nodes, weights=weights, k=2)
            trace.append({
                "op": op,
                "source": source,
                "target": target,
                "start": start,
                "horizon": end,
                "semantics": semantics,
            })
        elif op == "growth":
            trace.append({
                "op": "growth", "start": start, "end": end,
                "semantics": semantics,
            })
        else:
            trace.append({"op": "classify", "start": start, "end": end})
    return trace

