"""The deterministic round-based message-passing simulator.

Each round ``t`` of the window ``[start, end)``:

1. messages whose traversal completes at ``t`` are delivered
   (:meth:`Protocol.on_receive`), in deterministic (send-order) sequence;
2. every node gets a :meth:`Protocol.on_tick` with its current buffer.

Sends are validated against the TVG — transmitting over an absent edge
is a :class:`~repro.errors.SimulationError`, and a message sent at ``t``
arrives at ``t + zeta(e, t)``, exactly the journey arithmetic of the
core model.  The simulator is completely deterministic: no randomness,
stable orderings everywhere, so every report is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable

from repro.core.tvg import TimeVaryingGraph
from repro.dynamics.messages import Message
from repro.dynamics.nodes import NodeContext, Protocol
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine


@dataclass
class SimulationReport:
    """What happened during a run."""

    start: int
    end: int
    transmissions: int = 0
    deliveries: list[tuple[int, Hashable, Message]] = field(default_factory=list)
    dropped_after_horizon: int = 0
    #: Traversals that completed while the receiving node was failed.
    dropped_by_failure: int = 0
    #: Earliest delivery time of each message uid at each node.
    first_arrival: dict[tuple[int, Hashable], int] = field(default_factory=dict)

    def informed_nodes(self, uid: int) -> set[Hashable]:
        """Nodes that received message ``uid`` (origin not included)."""
        return {node for (mid, node) in self.first_arrival if mid == uid}

    def arrival_time(self, uid: int, node: Hashable) -> int | None:
        return self.first_arrival.get((uid, node))


class Simulator:
    """Drive a protocol over a TVG for a bounded window."""

    def __init__(
        self,
        graph: TimeVaryingGraph,
        protocol_factory: Callable[[Hashable], Protocol],
        start: int | None = None,
        end: int | None = None,
        failures: dict | None = None,
        engine: "TemporalEngine | None" = None,
    ) -> None:
        """``failures`` maps nodes to date containers during which the
        node is down: it cannot send, receive, or tick then (deliveries
        arriving while down are lost; the buffer itself survives).

        ``engine`` swaps the per-round presence lookups (which edges are
        up right now?) from per-edge presence calls to binary searches on
        the engine's compiled contact sequences; the run is
        transmission-for-transmission identical either way."""
        self.graph = graph
        self.engine = engine
        if engine is not None and engine.graph is not graph:
            raise SimulationError(
                "the engine passed to the simulator was built for a different graph"
            )
        self.failures = failures or {}
        if self.failures:
            from repro.dynamics.failures import validate_failures

            validate_failures(graph, self.failures)
        lifetime = graph.lifetime
        self.start = lifetime.start if start is None else start
        if end is None:
            if not lifetime.bounded:
                raise SimulationError(
                    "an explicit end is required on graphs with unbounded lifetime"
                )
            end = int(lifetime.end)
        self.end = end
        if self.end < self.start:
            raise SimulationError(f"end {self.end} precedes start {self.start}")
        if engine is not None:
            # Warm the whole window up front: on unbounded-lifetime graphs
            # the grow-only index would otherwise recompile every round as
            # out_edges_at nudges the window forward one date at a time.
            engine.index_for(self.start, self.end)
        self.protocols: dict[Hashable, Protocol] = {
            node: protocol_factory(node) for node in graph.nodes
        }
        self._buffers: dict[Hashable, list[Message]] = {n: [] for n in graph.nodes}
        self._in_flight: dict[int, list[tuple[Hashable, Message]]] = {}
        self._uid_counter = 0
        self.report = SimulationReport(self.start, self.end)

    # -- message plumbing -----------------------------------------------------------

    def new_message(self, origin: Hashable, payload: object, time: int) -> Message:
        """Mint a fresh message (uid assigned by the simulator)."""
        self._uid_counter += 1
        return Message(
            uid=self._uid_counter,
            origin=origin,
            payload=payload,
            created=time,
            path=(origin,),
        )

    def _is_down(self, node: Hashable, time: int) -> bool:
        schedule = self.failures.get(node)
        return schedule is not None and time in schedule

    def _context(self, node: Hashable, time: int) -> NodeContext:
        protocol = self.protocols[node]
        if self._is_down(node, time):
            present = []
        elif self.engine is not None:
            present = self.engine.out_edges_at(node, time)
        else:
            present = list(self.graph.out_edges_at(node, time))

        def send(edge, message: Message) -> None:
            if edge not in present:
                raise SimulationError(
                    f"node {node!r} sent over edge {edge!r} absent at {time}"
                )
            arrival = time + edge.latency(time)
            self.report.transmissions += 1
            if arrival >= self.end:
                self.report.dropped_after_horizon += 1
                return
            self._in_flight.setdefault(arrival, []).append(
                (edge.target, message.forwarded(node))
            )

        def store(message: Message) -> None:
            if message not in self._buffers[node]:
                self._buffers[node].append(message)

        return NodeContext(
            node=node,
            time=time,
            present_edges=present,
            send=send,
            store=store,
            allow_store=protocol.buffering,
        )

    def discard(self, node: Hashable, message: Message) -> None:
        """Remove a message from a node's buffer (protocols call this
        through their stored reference to the simulator, if given one)."""
        try:
            self._buffers[node].remove(message)
        except ValueError:
            pass

    # -- the main loop ----------------------------------------------------------------

    def run(self) -> SimulationReport:
        """Execute the window and return the report."""
        for node in self.graph.nodes:
            if not self._is_down(node, self.start):
                self.protocols[node].on_start(self._context(node, self.start))
        for time in range(self.start, self.end):
            for node, message in self._in_flight.pop(time, []):
                if self._is_down(node, time):
                    self.report.dropped_by_failure += 1
                    continue  # the traversal completes into a dead radio
                self.report.deliveries.append((time, node, message))
                key = (message.uid, node)
                if key not in self.report.first_arrival:
                    self.report.first_arrival[key] = time
                self.protocols[node].on_receive(self._context(node, time), message)
            for node in self.graph.nodes:
                if self._is_down(node, time):
                    continue
                self.protocols[node].on_tick(
                    self._context(node, time), tuple(self._buffers[node])
                )
        return self.report
