"""Contact-trace I/O.

A minimal line format for undirected contact traces, compatible with the
shape DTN datasets are distributed in::

    # comment
    u v start end

meaning nodes ``u`` and ``v`` are in contact over the half-open window
``[start, end)``.  Node names are arbitrary tokens without whitespace.
The paper has no datasets of its own; this format lets users bring any
contact trace to the library and is how the examples persist generated
scenarios.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.core.builders import from_contact_table
from repro.core.intervals import Interval
from repro.core.time_domain import Lifetime
from repro.core.tvg import TimeVaryingGraph
from repro.errors import TraceFormatError


def parse_trace(lines: Iterable[str]) -> TimeVaryingGraph:
    """Build a contact TVG from trace lines."""
    contacts: dict[tuple[str, str], list[tuple[int, int]]] = {}
    horizon = 0
    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(number, f"expected 'u v start end', got {line!r}")
        u, v, start_text, end_text = parts
        try:
            start, end = int(start_text), int(end_text)
        except ValueError:
            raise TraceFormatError(number, f"non-integer window in {line!r}") from None
        if end <= start:
            raise TraceFormatError(number, f"empty window [{start}, {end})")
        if u == v:
            raise TraceFormatError(number, f"self-contact {u!r}")
        key = (u, v) if u <= v else (v, u)
        contacts.setdefault(key, []).append((start, end))
        horizon = max(horizon, end)
    graph = from_contact_table(
        contacts, lifetime=Lifetime(0, horizon), name="trace"
    )
    return graph


def load_trace(path: str | Path) -> TimeVaryingGraph:
    """Read a trace file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_trace(handle)


def write_trace(graph: TimeVaryingGraph, handle: TextIO, horizon: int | None = None) -> None:
    """Serialize a TVG's undirected contacts as trace lines.

    Each symmetric edge pair is written once (the lexicographically
    smaller direction).  Presence is sampled over the lifetime (or the
    explicit horizon) and written as maximal intervals.
    """
    if horizon is None:
        if not graph.lifetime.bounded:
            raise TraceFormatError(0, "an explicit horizon is required")
        horizon = int(graph.lifetime.end)
    handle.write(f"# trace of {graph.name or 'tvg'}\n")
    written: set[tuple[str, str]] = set()
    for edge in graph.edges:
        u, v = str(edge.source), str(edge.target)
        key = (u, v) if u <= v else (v, u)
        if key in written:
            continue
        written.add(key)
        support = edge.presence.support(Interval(graph.lifetime.start, horizon))
        for interval in support:
            handle.write(f"{key[0]} {key[1]} {interval.start} {interval.end}\n")


def save_trace(graph: TimeVaryingGraph, path: str | Path, horizon: int | None = None) -> None:
    """Write a trace file to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        write_trace(graph, handle, horizon)
