"""The protocol/node programming model.

A :class:`Protocol` is the per-node program; the simulator instantiates
one object per node and invokes its hooks.  All interaction with the
world goes through the :class:`NodeContext` handed to each hook — nodes
cannot see the graph, the future, or other nodes' state, which keeps
protocol code honest about what a distributed algorithm may know.

The buffering distinction the paper studies is enforced here: a protocol
declares ``buffering = False`` to model environments without
store-carry-forward, and the simulator then refuses ``store`` calls, so
a bufferless protocol physically cannot hold a message across a round.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.dynamics.messages import Message
from repro.errors import SimulationError


class NodeContext:
    """The window a node has onto the simulation at one instant."""

    def __init__(
        self,
        node: Hashable,
        time: int,
        present_edges: Iterable,
        send: Callable[[object, object], None],
        store: Callable[[Message], None],
        allow_store: bool,
    ) -> None:
        self.node = node
        self.time = time
        self.present_edges = tuple(present_edges)
        self._send = send
        self._store = store
        self._allow_store = allow_store

    @property
    def neighbors(self) -> tuple[Hashable, ...]:
        """Targets of currently-present out-edges."""
        return tuple(edge.target for edge in self.present_edges)

    def send(self, edge, message: Message) -> None:
        """Transmit over a present edge; arrival after the edge latency."""
        self._send(edge, message)

    def broadcast(self, message: Message) -> None:
        """Transmit over every currently-present out-edge."""
        for edge in self.present_edges:
            self._send(edge, message)

    def store(self, message: Message) -> None:
        """Buffer a message for future rounds (store-carry-forward).

        Raises :class:`SimulationError` for protocols that declared
        ``buffering = False`` — waiting is exactly the capability such
        environments lack.
        """
        if not self._allow_store:
            raise SimulationError(
                f"protocol at node {self.node!r} is bufferless but tried to "
                "store a message"
            )
        self._store(message)


class Protocol:
    """Base class for per-node programs.

    Subclasses override any of the hooks.  ``buffering`` declares whether
    the environment provides local storage across rounds.
    """

    #: Whether this protocol may buffer messages between rounds.
    buffering: bool = True

    def on_start(self, ctx: NodeContext) -> None:
        """Called once at the simulation start time."""

    def on_receive(self, ctx: NodeContext, message: Message) -> None:
        """Called when a message arrives at this node."""

    def on_tick(self, ctx: NodeContext, buffered: tuple[Message, ...]) -> None:
        """Called every round after deliveries, with the current buffer."""
