"""Asyncio client for the JSON-lines query service.

One method per protocol operation, mirroring :class:`TVGService`'s
in-process API, so call sites can swap a local service for a remote one
by awaiting.  Errors the server reports come back as
:class:`~repro.errors.ServiceError`.

Usage::

    client = await ServiceClient.connect("127.0.0.1", 7712)
    assert await client.reach("a", "c", start=0, horizon=10)
    await client.add_edge("c", "d", presence={"kind": "periodic",
                                              "pattern": [0], "period": 2})
    print(await client.stats())
    await client.close()
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Hashable

from repro.errors import RateLimitError, ServiceError

#: Sentinel: "use the client's default timeout" (None means "no limit").
_DEFAULT = object()


class ServiceClient:
    """One connection to a running TVG query service.

    ``timeout`` bounds every request round-trip in seconds (``None`` —
    the default — waits forever).  A timed-out request closes the
    connection and raises :class:`ServiceError`: the response may still
    be in flight, so the stream can no longer be trusted to pair
    responses with requests — the same discipline the cluster applies
    to timed-out sweep jobs (fail the transport, never resynchronize by
    guesswork).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        timeout: float | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self.timeout = timeout
        self._broken: str | None = None
        # One in-flight request per connection: the lock pairs each
        # response line with the request that asked for it, so one
        # client may be shared across concurrent coroutines.
        self._lock = asyncio.Lock()
        # Bytes of JSON framing that crossed this connection, both ways
        # — the cluster executor aggregates these into its bytes-on-wire
        # counters (the sticky-plan bench gate reads them).
        self.bytes_sent = 0
        self.bytes_received = 0

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7712,
        limit: int | None = None,
        timeout: float | None = None,
    ) -> "ServiceClient":
        """Open one connection; ``limit`` raises the per-frame byte cap
        (asyncio's 64 KiB default) — the cluster uses this to pull back
        packed sub-matrices far larger than a query answer.  ``timeout``
        sets the per-request default (see the class docstring)."""
        kwargs = {} if limit is None else {"limit": limit}
        reader, writer = await asyncio.open_connection(host, port, **kwargs)
        return cls(reader, writer, timeout=timeout)

    async def _round_trip(self, frame: bytes) -> bytes:
        """Write one frame and read one response line (under the lock)."""
        self.bytes_sent += len(frame)
        self._writer.write(frame)
        await self._writer.drain()
        return await self._reader.readline()

    async def request(
        self, op: str, timeout: float | None = _DEFAULT, **params: Any
    ) -> Any:
        """Send one operation and await its result (raises on error).

        ``timeout`` overrides the client default for this request only.
        On expiry the connection is closed and every later request
        fails fast with the same ``ServiceError`` — reconnect to
        continue.
        """
        if timeout is _DEFAULT:
            timeout = self.timeout
        async with self._lock:
            if self._broken is not None:
                raise ServiceError(self._broken)
            self._next_id += 1
            payload = {"op": op, "id": self._next_id, **params}
            frame = json.dumps(payload).encode() + b"\n"
            try:
                line = await asyncio.wait_for(
                    self._round_trip(frame), timeout
                )
            except asyncio.TimeoutError:
                self._broken = (
                    f"request {op!r} (id {payload['id']}) timed out after "
                    f"{timeout}s; connection closed"
                )
                self._writer.close()
                raise ServiceError(self._broken) from None
            if not line:
                raise ServiceError("connection closed by server")
            self.bytes_received += len(line)
            response = json.loads(line)
        if not response.get("ok") and "id" not in response:
            # Transport-level error frames (oversized frame, bad JSON)
            # carry no id — the server never parsed one.  Surface their
            # message instead of a misleading id-mismatch complaint.
            raise ServiceError(response.get("error", "unknown server error"))
        if response.get("id") != payload["id"]:
            raise ServiceError(
                f"response id {response.get('id')!r} does not match "
                f"request id {payload['id']}"
            )
        if not response.get("ok"):
            message = response.get("error", "unknown server error")
            if "retry_after" in response:
                raise RateLimitError(
                    message, retry_after=response["retry_after"]
                )
            raise ServiceError(message)
        return response.get("result")

    # -- queries ---------------------------------------------------------------

    async def reach(
        self,
        source: Hashable,
        target: Hashable,
        start: int,
        horizon: int,
        semantics: str = "wait",
    ) -> bool:
        return await self.request(
            "reach", source=source, target=target, start=start,
            horizon=horizon, semantics=semantics,
        )

    async def arrival(
        self,
        source: Hashable,
        target: Hashable,
        start: int,
        horizon: int,
        semantics: str = "wait",
    ) -> int | None:
        return await self.request(
            "arrival", source=source, target=target, start=start,
            horizon=horizon, semantics=semantics,
        )

    async def growth(
        self, start: int, end: int, semantics: str = "wait"
    ) -> list[tuple[int, float]]:
        curve = await self.request(
            "growth", start=start, end=end, semantics=semantics
        )
        return [(t, r) for t, r in curve]

    async def classify(self, start: int, end: int) -> dict:
        return await self.request("classify", start=start, end=end)

    # -- mutations -------------------------------------------------------------

    async def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        key: str | None = None,
        label: str | None = None,
        presence: dict | None = None,
        latency: dict | None = None,
    ) -> str:
        return await self.request(
            "add_edge", source=source, target=target, key=key, label=label,
            presence=presence, latency=latency,
        )

    async def remove_edge(self, key: str) -> str:
        return await self.request("remove_edge", key=key)

    async def set_presence(self, key: str, presence: dict) -> str:
        return await self.request("set_presence", key=key, presence=presence)

    async def set_workers(self, workers: list[str]) -> list[str]:
        """Re-resolve the server's sweep-worker fleet (elastic
        membership — safe mid-sweep); ``[]`` detaches the cluster."""
        return await self.request("set_workers", workers=workers)

    # -- observability ---------------------------------------------------------

    async def stats(self) -> dict:
        return await self.request("stats")

    async def ping(self) -> str:
        return await self.request("ping")

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover — peer raced us
            pass
