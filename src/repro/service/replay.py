"""Deterministic trace replay against a live service.

The trace *generator* lives in :mod:`repro.dynamics.workloads` (it is a
pure function of a scenario and a seed, and knows nothing about the
service); the *replayer* lives here because it drives
:func:`repro.service.server.handle_request` — the same dispatcher the
socket front end uses — so a replay exercises exactly the production
code path, minus the socket.
"""

from __future__ import annotations

from repro.service.server import handle_request
from repro.service.service import TVGService


def replay_service_trace(service: TVGService, trace: list[dict]) -> list[dict]:
    """Replay a trace against a live service; returns the answer stream.

    The returned responses are in trace order; errors surface as
    ``ok: false`` entries rather than raising, keeping answer streams
    comparable across runs.  Replays are pure functions of
    ``(trace, initial graph)``: the same trace against two fresh
    services yields identical answer streams, which is what lets the
    benchmark compare cached and cold runs answer-for-answer.
    """
    return [handle_request(service, dict(op)) for op in trace]
