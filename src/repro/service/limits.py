"""Admission control and latency telemetry for the service front end.

Three small, independently testable pieces the asyncio server composes
around its dispatcher:

* :class:`RateLimiter` — per-client sliding-window rate limiting over
  windowed timestamps.  Each client key holds a deque of admission
  times; a request is admitted when fewer than ``limit - margin``
  timestamps remain inside the trailing window (the *margin* keeps
  admitted traffic a configurable distance below the hard limit, so a
  burst that races the pruning never lands exactly on it).  Rejections
  come with a ``retry_after`` hint: the time until the client's oldest
  windowed timestamp expires.
* :class:`AdmissionGate` — a server-wide cap on in-flight requests
  (admitted into dispatch, response not yet written).  Purely a
  counter; the caller pairs :meth:`~AdmissionGate.try_acquire` with
  :meth:`~AdmissionGate.release` in a ``finally``.
* :class:`LatencyRecorder` — bounded per-operation reservoirs of
  request latencies with on-demand p50/p95/p99, so the ``stats`` op can
  report tail behaviour without unbounded memory.

Everything here is synchronous and allocation-light: these sit on the
hot path of every request the event loop serializes, so they must never
block or grow without bound.  Clocks are injectable for deterministic
tests.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Callable, Hashable

#: The retry hint attached to in-flight (gate) rejections, which have
#: no windowed timestamp to derive a precise back-off from.
GATE_RETRY_AFTER: float = 0.05


class RateLimiter:
    """Sliding-window request admission, one timestamp deque per client.

    ``limit`` is the hard per-window cap; ``margin`` lowers the
    *effective* cap to ``limit - margin`` (admitted traffic stays below
    the hard limit by that margin).  ``window`` is the sliding window
    in seconds.  ``clock`` is any monotonic float-returning callable —
    tests inject a fake to step time deterministically.
    """

    def __init__(
        self,
        limit: int,
        window: float = 1.0,
        margin: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if margin < 0 or margin >= limit:
            raise ValueError(
                f"margin must be in [0, limit), got margin={margin} "
                f"with limit={limit}"
            )
        self.limit = limit
        self.window = window
        self.margin = margin
        self.effective_limit = limit - margin
        self._clock = clock
        self._stamps: dict[Hashable, deque[float]] = {}
        self.admitted = 0
        self.rejected = 0

    def admit(self, client: Hashable) -> float | None:
        """Charge one request to ``client`` now.

        Returns ``None`` when admitted (the timestamp is recorded), or
        the ``retry_after`` hint in seconds when the client is over its
        effective limit (nothing is recorded — rejected requests don't
        extend the window against the client).
        """
        now = self._clock()
        stamps = self._stamps.setdefault(client, deque())
        cutoff = now - self.window
        while stamps and stamps[0] <= cutoff:
            stamps.popleft()
        if len(stamps) >= self.effective_limit:
            self.rejected += 1
            return max(0.0, stamps[0] + self.window - now)
        stamps.append(now)
        self.admitted += 1
        return None

    def forget(self, client: Hashable) -> None:
        """Drop a client's window state (its connection closed)."""
        self._stamps.pop(client, None)

    @property
    def tracked_clients(self) -> int:
        return len(self._stamps)

    def stats(self) -> dict:
        """A JSON-able snapshot of the limiter counters."""
        return {
            "limit": self.limit,
            "window_seconds": self.window,
            "margin": self.margin,
            "effective_limit": self.effective_limit,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "tracked_clients": self.tracked_clients,
        }

    def __repr__(self) -> str:
        return (
            f"RateLimiter({self.effective_limit}/{self.window}s effective, "
            f"{self.admitted} admitted, {self.rejected} rejected)"
        )


class AdmissionGate:
    """A cap on concurrently in-flight requests across all connections.

    ``try_acquire`` admits when fewer than ``max_inflight`` slots are
    held and returns whether it did; the caller must ``release`` every
    successful acquire (and only those).  ``peak`` records the highest
    concurrency ever admitted, so load tests can verify the gate was
    actually exercised.
    """

    def __init__(self, max_inflight: int) -> None:
        if max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.inflight = 0
        self.peak = 0
        self.admitted = 0
        self.rejected = 0

    def try_acquire(self) -> bool:
        if self.inflight >= self.max_inflight:
            self.rejected += 1
            return False
        self.inflight += 1
        self.admitted += 1
        if self.inflight > self.peak:
            self.peak = self.inflight
        return True

    def release(self) -> None:
        if self.inflight <= 0:
            raise ValueError("release() without a matching try_acquire()")
        self.inflight -= 1

    def stats(self) -> dict:
        return {
            "max_inflight": self.max_inflight,
            "inflight": self.inflight,
            "peak": self.peak,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }

    def __repr__(self) -> str:
        return (
            f"AdmissionGate({self.inflight}/{self.max_inflight} in flight, "
            f"peak {self.peak})"
        )


def percentile(sorted_samples: list[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) of an already-sorted sample list
    by the nearest-rank method (the convention load gates expect: p99
    of 100 samples is the 99th smallest, never an interpolation above
    the observed maximum)."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    rank = math.ceil(q * len(sorted_samples))
    return sorted_samples[max(0, rank - 1)]


class LatencyRecorder:
    """Bounded per-op latency reservoirs with on-demand percentiles.

    Each operation keeps its most recent ``max_samples`` latencies in a
    deque (old samples fall off, so the histogram tracks *current*
    behaviour under long uptimes) plus a monotone total count.
    :meth:`stats` renders p50/p95/p99 per op.
    """

    def __init__(self, max_samples: int = 512) -> None:
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.max_samples = max_samples
        self._samples: dict[str, deque[float]] = {}
        self._counts: dict[str, int] = {}

    def record(self, op: str, seconds: float) -> None:
        reservoir = self._samples.get(op)
        if reservoir is None:
            reservoir = self._samples[op] = deque(maxlen=self.max_samples)
        reservoir.append(seconds)
        self._counts[op] = self._counts.get(op, 0) + 1

    def percentiles(self, op: str) -> dict | None:
        """``{"count", "p50", "p95", "p99"}`` for one op, or None if it
        was never recorded."""
        reservoir = self._samples.get(op)
        if not reservoir:
            return None
        ordered = sorted(reservoir)
        return {
            "count": self._counts[op],
            "p50": percentile(ordered, 0.50),
            "p95": percentile(ordered, 0.95),
            "p99": percentile(ordered, 0.99),
        }

    def stats(self) -> dict:
        """Per-op percentile blocks for every recorded operation."""
        return {
            op: self.percentiles(op) for op in sorted(self._samples)
        }

    def __repr__(self) -> str:
        total = sum(self._counts.values())
        return f"LatencyRecorder({len(self._samples)} ops, {total} samples)"
