"""The bounded background-task table behind the ``submit`` op family.

Expensive cold queries must not hold a connection open while the event
loop serializes everyone else behind the sweep.  Instead the service
*submits* them here: :meth:`TaskTable.submit` takes a zero-argument
compute callable (the service builds it over a private **snapshot** of
the graph, so the running sweep never shares mutable state with the
live graph, engine, or cache), runs it on a small worker-thread pool,
and hands back a task id immediately.  Clients poll ``status`` and
fetch ``result``; ``cancel`` flips a task to its terminal ``cancelled``
state — a queued task never starts, a running one keeps computing but
its result is discarded on arrival (the kernel sweep is not
interruptible mid-pass; what is guaranteed is that a cancelled id never
yields a result).

The table is bounded: when ``max_tasks`` live entries exist, submitting
first evicts finished tasks oldest-first; if every entry is still
queued or running the submit is refused with a structured
:class:`~repro.errors.ServiceError` (backpressure, not unbounded
memory).  All state transitions happen under one lock — the worker
threads and the event-loop thread race on nothing else.

Task states: ``queued -> running -> done | error``, with ``cancelled``
reachable from ``queued`` and ``running``.  ``done``, ``error``, and
``cancelled`` are terminal.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.errors import ReproError, ServiceError

#: Terminal task states — the only ones eviction may reclaim.
FINISHED_STATES = frozenset({"done", "error", "cancelled"})

#: Default bound on live (unfinished + finished-but-unclaimed) tasks.
DEFAULT_MAX_TASKS = 64


class BackgroundTask:
    """One submitted computation and its lifecycle state."""

    __slots__ = (
        "task_id", "op", "version", "state", "value", "error", "finished",
    )

    def __init__(self, task_id: str, op: str, version: int) -> None:
        self.task_id = task_id
        self.op = op
        self.version = version
        self.state = "queued"
        self.value: Any = None
        self.error: str | None = None
        #: Set exactly once, when the task enters a terminal state.
        self.finished = threading.Event()

    def status(self) -> dict:
        """The JSON-able ``status`` op payload."""
        report = {
            "task": self.task_id,
            "op": self.op,
            "state": self.state,
            "version": self.version,
        }
        if self.state == "error":
            report["error"] = self.error
        return report

    def __repr__(self) -> str:
        return (
            f"BackgroundTask({self.task_id}, {self.op!r}, {self.state}, "
            f"v{self.version})"
        )


class TaskTable:
    """A bounded table of background tasks over a worker-thread pool.

    ``max_tasks`` bounds live entries (see the module docstring for the
    eviction/backpressure policy); ``workers`` sizes the thread pool —
    one worker by default, so background sweeps never oversubscribe the
    host against the foreground event loop.  The pool is created lazily
    on the first submit and torn down by :meth:`shutdown`.
    """

    def __init__(
        self, max_tasks: int = DEFAULT_MAX_TASKS, workers: int = 1
    ) -> None:
        if max_tasks <= 0:
            raise ValueError(f"max_tasks must be positive, got {max_tasks}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.max_tasks = max_tasks
        self.workers = workers
        self._tasks: OrderedDict[str, BackgroundTask] = OrderedDict()
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._counter = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.evicted = 0

    # -- lifecycle --------------------------------------------------------------

    def submit(
        self, op: str, version: int, compute: Callable[[], Any]
    ) -> BackgroundTask:
        """Enqueue one computation; returns its task record immediately.

        ``compute`` must be self-contained: it runs on a worker thread
        and may not touch any state shared with the caller (the service
        hands it a closure over a private graph snapshot).
        """
        with self._lock:
            self._evict_finished_locked()
            if len(self._tasks) >= self.max_tasks:
                raise ServiceError(
                    f"task table full ({self.max_tasks} tasks queued or "
                    "running); retry after polling existing tasks"
                )
            self._counter += 1
            task = BackgroundTask(f"t{self._counter}", op, version)
            self._tasks[task.task_id] = task
            self.submitted += 1
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-task",
                )
            executor = self._executor
        executor.submit(self._run, task, compute)
        return task

    def _run(self, task: BackgroundTask, compute: Callable[[], Any]) -> None:
        """Worker-thread body: run one compute, record its outcome."""
        with self._lock:
            if task.state != "queued":  # cancelled before it started
                task.finished.set()
                return
            task.state = "running"
        try:
            value = compute()
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            with self._lock:
                if task.state == "running":
                    task.state = "error"
                    task.error = f"{type(exc).__name__}: {exc}"
                    self.failed += 1
                task.finished.set()
        else:
            with self._lock:
                if task.state == "running":
                    task.state = "done"
                    task.value = value
                    self.completed += 1
                # A task cancelled mid-run keeps its cancelled state;
                # the computed value is discarded.
                task.finished.set()

    # -- the op family ----------------------------------------------------------

    def _get(self, task_id: str) -> BackgroundTask:
        task = self._tasks.get(task_id)
        if task is None:
            raise ServiceError(
                f"unknown task {task_id!r} (never submitted, or evicted "
                "from the bounded table)"
            )
        return task

    def status(self, task_id: str) -> dict:
        """The ``status`` payload of one task."""
        with self._lock:
            return self._get(task_id).status()

    def result(self, task_id: str) -> Any:
        """The computed value of a ``done`` task.

        Pending tasks get a structured "still running" error (poll
        ``status``); failed tasks re-raise their recorded error;
        cancelled tasks never yield a value.
        """
        with self._lock:
            task = self._get(task_id)
            if task.state in ("queued", "running"):
                raise ServiceError(
                    f"task {task_id!r} is still {task.state}; poll status "
                    "until it finishes"
                )
            if task.state == "cancelled":
                raise ServiceError(f"task {task_id!r} was cancelled")
            if task.state == "error":
                raise ServiceError(
                    f"task {task_id!r} failed: {task.error}"
                )
            return task.value

    def cancel(self, task_id: str) -> dict:
        """Cancel a task; returns its (possibly unchanged) status.

        Queued tasks never start; running tasks are flipped to
        ``cancelled`` and their eventual value discarded.  Cancelling a
        finished task is a no-op reporting the terminal state.
        """
        with self._lock:
            task = self._get(task_id)
            if task.state in ("queued", "running"):
                if task.state == "queued":
                    task.finished.set()
                task.state = "cancelled"
                self.cancelled += 1
            return task.status()

    def wait(self, task_id: str, timeout: float | None = None) -> bool:
        """Block until the task reaches a terminal state (or ``timeout``
        seconds pass); returns whether it finished.

        This is the synchronous join for in-process callers and tests.
        It must never run on the event loop — the async front end polls
        ``status`` instead (enforced by RL005's blocking-call check on
        ``task_wait``, the service-level name of this join).
        """
        with self._lock:
            task = self._get(task_id)
        return task.finished.wait(timeout)

    # -- bounds and teardown ----------------------------------------------------

    def _evict_finished_locked(self) -> None:
        """Drop oldest finished tasks until the table has a free slot."""
        while len(self._tasks) >= self.max_tasks:
            victim = next(
                (
                    task_id
                    for task_id, task in self._tasks.items()
                    if task.state in FINISHED_STATES
                ),
                None,
            )
            if victim is None:
                return
            del self._tasks[victim]
            self.evicted += 1

    def shutdown(self, wait: bool = True) -> None:
        """Tear down the worker pool (idempotent).  Queued tasks that
        never started are flipped to ``cancelled``."""
        with self._lock:
            executor = self._executor
            self._executor = None
            for task in self._tasks.values():
                if task.state == "queued":
                    task.state = "cancelled"
                    self.cancelled += 1
                    task.finished.set()
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __len__(self) -> int:
        return len(self._tasks)

    def stats(self) -> dict:
        """A JSON-able snapshot of the table counters."""
        with self._lock:
            states: dict[str, int] = {}
            for task in self._tasks.values():
                states[task.state] = states.get(task.state, 0) + 1
            return {
                "max_tasks": self.max_tasks,
                "live": len(self._tasks),
                "states": states,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "evicted": self.evicted,
            }

    def __repr__(self) -> str:
        return (
            f"TaskTable({len(self._tasks)}/{self.max_tasks} live, "
            f"{self.submitted} submitted, {self.completed} completed)"
        )
