"""JSON-serializable specs for the values that cross the service socket.

The wire protocol is JSON lines, so presences, latencies, and waiting
semantics need a round-trippable plain-data form:

* presence — ``{"kind": "always" | "never"}``,
  ``{"kind": "periodic", "pattern": [...], "period": p}``,
  ``{"kind": "intervals", "pairs": [[a, b], ...]}``, or
  ``{"kind": "at", "times": [...]}``;
* latency — ``{"kind": "constant", "value": v}``;
* semantics — the CLI strings ``"wait"``, ``"nowait"``, ``"wait[d]"``;
* sweep plan — a whole lowered :class:`~repro.core.parallel.SweepPlan`
  (``{"kind": "sweep_plan"}``), the payload the distributed sweep ships
  to :mod:`repro.service.cluster` workers.  The plan's contact/arrival
  sequences and CSR adjacency are *packed*, not listed: each ragged
  family is flattened into one little-endian int64 array plus an offset
  array, base64-encoded — a plan of ``k`` ints costs ~``8k/0.75`` bytes
  on the wire instead of a JSON list of ``k`` numbers, and decodes with
  two ``frombuffer`` calls instead of a million ``int()`` parses;
* int64 matrix — ``{"kind": "int64_matrix"}``, the sub-matrix a worker
  returns for its source block (same base64 packing, row-major).

Black-box :class:`~repro.core.presence.FunctionPresence` and callable
latencies have no finite description, so they are rejected with a
:class:`~repro.errors.ServiceError` — remote mutations are limited to
the structured forms the compiled index lowers exactly.  In-process
callers of :class:`~repro.service.service.TVGService` may still pass
arbitrary presence objects directly.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Sequence

import numpy as np

from repro.core.latency import ConstantLatency, LatencyFunction, constant_latency
from repro.core.parallel import SweepPlan
from repro.core.presence import (
    IntervalPresence,
    PeriodicPresence,
    PresenceFunction,
    _AlwaysPresence,
    _NeverPresence,
    always,
    interval_presence,
    never,
    periodic_presence,
)
from repro.core.semantics import WaitingSemantics
from repro.core.semantics import parse_semantics as parse_semantics_string
from repro.errors import SemanticsError, ServiceError


def presence_to_spec(presence: PresenceFunction) -> dict[str, Any]:
    """The JSON-able description of a structured presence."""
    if isinstance(presence, _AlwaysPresence):
        return {"kind": "always"}
    if isinstance(presence, _NeverPresence):
        return {"kind": "never"}
    if isinstance(presence, PeriodicPresence):
        return {
            "kind": "periodic",
            "pattern": sorted(presence.pattern),
            "period": presence.period,
        }
    if isinstance(presence, IntervalPresence):
        return {
            "kind": "intervals",
            "pairs": [[iv.start, iv.end] for iv in presence.intervals],
        }
    raise ServiceError(
        f"presence {presence!r} has no wire form; use always/never/"
        f"periodic/interval presences over the protocol"
    )


def presence_from_spec(spec: dict[str, Any] | None) -> PresenceFunction:
    """Rebuild a presence from its wire spec (None means always)."""
    if spec is None:
        return always()
    try:
        kind = spec["kind"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed presence spec {spec!r}") from None
    try:
        if kind == "always":
            return always()
        if kind == "never":
            return never()
        if kind == "periodic":
            return periodic_presence(spec["pattern"], spec["period"])
        if kind == "intervals":
            return interval_presence(tuple(pair) for pair in spec["pairs"])
        if kind == "at":
            from repro.core.presence import at_times

            return at_times(spec["times"])
    except ServiceError:
        raise
    except Exception as exc:
        raise ServiceError(f"malformed presence spec {spec!r}: {exc}") from None
    raise ServiceError(f"unknown presence kind {kind!r}")


def latency_to_spec(latency: LatencyFunction) -> dict[str, Any]:
    """The JSON-able description of a constant latency."""
    if isinstance(latency, ConstantLatency):
        return {"kind": "constant", "value": latency.value}
    raise ServiceError(
        f"latency {latency!r} has no wire form; only constant latencies "
        f"cross the protocol"
    )


def latency_from_spec(spec: dict[str, Any] | None) -> LatencyFunction:
    """Rebuild a latency from its wire spec (None means unit latency)."""
    if spec is None:
        return constant_latency(1)
    try:
        kind = spec["kind"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed latency spec {spec!r}") from None
    if kind == "constant":
        try:
            return constant_latency(spec["value"])
        except Exception as exc:
            raise ServiceError(f"malformed latency spec {spec!r}: {exc}") from None
    raise ServiceError(f"unknown latency kind {kind!r}")


def parse_semantics(text: str) -> WaitingSemantics:
    """The semantics named by its wire string (inverse of ``str``).

    The grammar lives in :func:`repro.core.semantics.parse_semantics` —
    shared with the CLI — wrapped here into the service's native
    :class:`~repro.errors.ServiceError` so malformed strings (``wait[-1]``,
    ``wait[]``, ``wait[x]``) become protocol errors, not tracebacks.
    """
    try:
        return parse_semantics_string(text)
    except SemanticsError as exc:
        raise ServiceError(str(exc)) from None


# -- packed int64 payloads (sweep plans and sub-matrices) ----------------------

#: Every packed array crosses the wire as little-endian int64, whatever
#: the host byte order — ``frombuffer`` on the far side is then exact.
_WIRE_DTYPE = "<i8"


def _pack_int64(values: Sequence[int] | np.ndarray) -> str:
    """Base64 of the values as a little-endian int64 array."""
    try:
        array = np.ascontiguousarray(values, dtype=_WIRE_DTYPE)
    except (OverflowError, ValueError, TypeError) as exc:
        raise ServiceError(f"values do not fit the wire's int64 form: {exc}") from None
    return base64.b64encode(array.tobytes()).decode("ascii")


def _unpack_int64(text: Any, what: str) -> np.ndarray:
    """The inverse of :func:`_pack_int64` (raises :class:`ServiceError`)."""
    if not isinstance(text, str):
        raise ServiceError(f"{what} must be a base64 string, not {type(text).__name__}")
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise ServiceError(f"{what} is not valid base64: {exc}") from None
    if len(raw) % 8:
        raise ServiceError(f"{what} is not a whole number of int64 values")
    return np.frombuffer(raw, dtype=_WIRE_DTYPE)


def _flatten(seqs: Sequence[Sequence[int]]) -> tuple[list[int], list[int]]:
    """One ragged family as (flat values, offsets); ``offsets[i]:offsets[i+1]``
    slices out sequence ``i``."""
    offsets = [0]
    flat: list[int] = []
    for seq in seqs:
        flat.extend(seq)
        offsets.append(len(flat))
    return flat, offsets


def _split(flat: np.ndarray, offsets: np.ndarray, what: str) -> tuple[tuple[int, ...], ...]:
    """Rebuild the ragged family (tuples of python ints, bit-exact)."""
    if len(offsets) == 0 or offsets[0] != 0:
        raise ServiceError(f"{what} offsets must start at 0")
    if np.any(np.diff(offsets) < 0):
        raise ServiceError(f"{what} offsets must be non-decreasing")
    if offsets[-1] != len(flat):
        raise ServiceError(f"{what} offsets do not cover the packed values")
    values = flat.tolist()
    bounds = offsets.tolist()
    return tuple(
        tuple(values[lo:hi]) for lo, hi in zip(bounds, bounds[1:])
    )


def plan_to_spec(plan: SweepPlan) -> dict[str, Any]:
    """The JSON-able description of one lowered sweep plan.

    The ragged families (per-node out-edge lists, per-edge contact and
    arrival dates) are flattened CSR-style and base64-packed; contacts
    and arrivals share one offset array (they are aligned by
    construction).
    """
    out_flat, out_offsets = _flatten(plan.out_edges)
    contact_flat, contact_offsets = _flatten(plan.contacts)
    arrival_flat, arrival_offsets = _flatten(plan.arrivals)
    if arrival_offsets != contact_offsets:
        raise ServiceError("plan arrivals are not aligned with its contacts")
    return {
        "kind": "sweep_plan",
        "n": plan.n,
        "start": plan.start_time,
        "horizon": plan.horizon,
        "max_wait": plan.max_wait,
        "targets": _pack_int64(plan.target_idx),
        "out_edges": _pack_int64(out_flat),
        "out_offsets": _pack_int64(out_offsets),
        "contacts": _pack_int64(contact_flat),
        "arrivals": _pack_int64(arrival_flat),
        "contact_offsets": _pack_int64(contact_offsets),
    }


def plan_from_spec(spec: dict[str, Any]) -> SweepPlan:
    """Rebuild a :class:`~repro.core.parallel.SweepPlan` from its spec.

    Validates shape invariants (offset coverage, index ranges) so a
    malformed or truncated frame becomes a :class:`ServiceError` — the
    signal the cluster's fault handling turns into a local re-run —
    never a worker crash deep inside the sweep.
    """
    if not isinstance(spec, dict) or spec.get("kind") != "sweep_plan":
        raise ServiceError(f"malformed sweep plan spec {spec!r}")
    try:
        n = int(spec["n"])
        start = int(spec["start"])
        horizon = int(spec["horizon"])
        raw_wait = spec["max_wait"]
        max_wait = None if raw_wait is None else int(raw_wait)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed sweep plan header: {exc}") from None
    if n < 0:
        raise ServiceError("sweep plan node count must be >= 0")
    if max_wait is not None and max_wait < 0:
        raise ServiceError("sweep plan max_wait must be >= 0 or null")
    targets = _unpack_int64(spec.get("targets"), "targets")
    out_flat = _unpack_int64(spec.get("out_edges"), "out_edges")
    out_edges = _split(
        out_flat, _unpack_int64(spec.get("out_offsets"), "out_offsets"), "out_edges"
    )
    contact_offsets = _unpack_int64(spec.get("contact_offsets"), "contact_offsets")
    contacts = _split(
        _unpack_int64(spec.get("contacts"), "contacts"), contact_offsets, "contacts"
    )
    arrivals = _split(
        _unpack_int64(spec.get("arrivals"), "arrivals"), contact_offsets, "arrivals"
    )
    edge_count = len(targets)
    if len(out_edges) != n:
        raise ServiceError(
            f"sweep plan has {n} nodes but {len(out_edges)} out-edge lists"
        )
    if len(contacts) != edge_count:
        raise ServiceError(
            f"sweep plan has {edge_count} edges but {len(contacts)} contact lists"
        )
    if edge_count and (targets.min() < 0 or targets.max() >= n):
        raise ServiceError("sweep plan edge targets fall outside the node range")
    if len(out_flat) and (out_flat.min() < 0 or out_flat.max() >= edge_count):
        raise ServiceError("sweep plan adjacency names an unknown edge")
    return SweepPlan(
        n=n,
        out_edges=out_edges,
        target_idx=tuple(targets.tolist()),
        contacts=contacts,
        arrivals=arrivals,
        start_time=start,
        horizon=horizon,
        max_wait=max_wait,
    )


def plan_fingerprint(spec: dict[str, Any], context: Sequence[Any] = ()) -> str:
    """A short content hash identifying one shipped sweep job.

    Hashes the canonical JSON of the plan spec — which encodes the
    graph's lowered contacts (hence its version), the window, and the
    waiting semantics — plus any extra ``context`` (the executor adds
    the source block and kernel).  A worker echoes the fingerprint of
    the job it *actually computed* inside its result frame; the
    executor compares against the job it *shipped*, so a result frame
    produced from a stale plan (or the wrong block) is detected however
    well-formed its matrix looks.
    """
    try:
        canonical = json.dumps(
            [spec, list(context)], sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"job has no canonical form: {exc}") from None
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def matrix_to_spec(matrix: np.ndarray) -> dict[str, Any]:
    """The JSON-able description of one int64 sub-matrix (row-major)."""
    array = np.ascontiguousarray(matrix, dtype=np.int64)
    if array.ndim != 2:
        raise ServiceError(f"expected a 2-d matrix, got shape {array.shape}")
    return {
        "kind": "int64_matrix",
        "rows": int(array.shape[0]),
        "cols": int(array.shape[1]),
        "data": _pack_int64(array.reshape(-1)),
    }


def matrix_from_spec(spec: dict[str, Any]) -> np.ndarray:
    """Rebuild an int64 matrix from its spec (raises :class:`ServiceError`)."""
    if not isinstance(spec, dict) or spec.get("kind") != "int64_matrix":
        raise ServiceError(f"malformed matrix spec {spec!r}")
    try:
        rows = int(spec["rows"])
        cols = int(spec["cols"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed matrix header: {exc}") from None
    if rows < 0 or cols < 0:
        raise ServiceError("matrix dimensions must be >= 0")
    flat = _unpack_int64(spec.get("data"), "matrix data")
    if len(flat) != rows * cols:
        raise ServiceError(
            f"matrix data holds {len(flat)} values, expected {rows}x{cols}"
        )
    return flat.reshape(rows, cols).astype(np.int64, copy=True)
