"""JSON-serializable specs for the values that cross the service socket.

The wire protocol is JSON lines, so presences, latencies, and waiting
semantics need a round-trippable plain-data form:

* presence — ``{"kind": "always" | "never"}``,
  ``{"kind": "periodic", "pattern": [...], "period": p}``,
  ``{"kind": "intervals", "pairs": [[a, b], ...]}``, or
  ``{"kind": "at", "times": [...]}``;
* latency — ``{"kind": "constant", "value": v}``;
* semantics — the CLI strings ``"wait"``, ``"nowait"``, ``"wait[d]"``.

Black-box :class:`~repro.core.presence.FunctionPresence` and callable
latencies have no finite description, so they are rejected with a
:class:`~repro.errors.ServiceError` — remote mutations are limited to
the structured forms the compiled index lowers exactly.  In-process
callers of :class:`~repro.service.service.TVGService` may still pass
arbitrary presence objects directly.
"""

from __future__ import annotations

from typing import Any

from repro.core.latency import ConstantLatency, LatencyFunction, constant_latency
from repro.core.presence import (
    IntervalPresence,
    PeriodicPresence,
    PresenceFunction,
    _AlwaysPresence,
    _NeverPresence,
    always,
    interval_presence,
    never,
    periodic_presence,
)
from repro.core.semantics import WaitingSemantics
from repro.core.semantics import parse_semantics as parse_semantics_string
from repro.errors import SemanticsError, ServiceError


def presence_to_spec(presence: PresenceFunction) -> dict[str, Any]:
    """The JSON-able description of a structured presence."""
    if isinstance(presence, _AlwaysPresence):
        return {"kind": "always"}
    if isinstance(presence, _NeverPresence):
        return {"kind": "never"}
    if isinstance(presence, PeriodicPresence):
        return {
            "kind": "periodic",
            "pattern": sorted(presence.pattern),
            "period": presence.period,
        }
    if isinstance(presence, IntervalPresence):
        return {
            "kind": "intervals",
            "pairs": [[iv.start, iv.end] for iv in presence.intervals],
        }
    raise ServiceError(
        f"presence {presence!r} has no wire form; use always/never/"
        f"periodic/interval presences over the protocol"
    )


def presence_from_spec(spec: dict[str, Any] | None) -> PresenceFunction:
    """Rebuild a presence from its wire spec (None means always)."""
    if spec is None:
        return always()
    try:
        kind = spec["kind"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed presence spec {spec!r}") from None
    try:
        if kind == "always":
            return always()
        if kind == "never":
            return never()
        if kind == "periodic":
            return periodic_presence(spec["pattern"], spec["period"])
        if kind == "intervals":
            return interval_presence(tuple(pair) for pair in spec["pairs"])
        if kind == "at":
            from repro.core.presence import at_times

            return at_times(spec["times"])
    except ServiceError:
        raise
    except Exception as exc:
        raise ServiceError(f"malformed presence spec {spec!r}: {exc}") from None
    raise ServiceError(f"unknown presence kind {kind!r}")


def latency_to_spec(latency: LatencyFunction) -> dict[str, Any]:
    """The JSON-able description of a constant latency."""
    if isinstance(latency, ConstantLatency):
        return {"kind": "constant", "value": latency.value}
    raise ServiceError(
        f"latency {latency!r} has no wire form; only constant latencies "
        f"cross the protocol"
    )


def latency_from_spec(spec: dict[str, Any] | None) -> LatencyFunction:
    """Rebuild a latency from its wire spec (None means unit latency)."""
    if spec is None:
        return constant_latency(1)
    try:
        kind = spec["kind"]
    except (TypeError, KeyError):
        raise ServiceError(f"malformed latency spec {spec!r}") from None
    if kind == "constant":
        try:
            return constant_latency(spec["value"])
        except Exception as exc:
            raise ServiceError(f"malformed latency spec {spec!r}: {exc}") from None
    raise ServiceError(f"unknown latency kind {kind!r}")


def parse_semantics(text: str) -> WaitingSemantics:
    """The semantics named by its wire string (inverse of ``str``).

    The grammar lives in :func:`repro.core.semantics.parse_semantics` —
    shared with the CLI — wrapped here into the service's native
    :class:`~repro.errors.ServiceError` so malformed strings (``wait[-1]``,
    ``wait[]``, ``wait[x]``) become protocol errors, not tracebacks.
    """
    try:
        return parse_semantics_string(text)
    except SemanticsError as exc:
        raise ServiceError(str(exc)) from None
