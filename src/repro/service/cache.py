"""The versioned LRU result cache of the query service.

Entries are keyed by ``(version, query)`` where ``query`` is any
hashable description of a computation (window, semantics, query kind
and arguments) and ``version`` is the graph's mutation counter at
compute time.  Because the version is part of the key, a mutation never
*corrupts* the cache — it merely strands the old entries; calling
:meth:`QueryCache.purge_stale` after a mutation evicts exactly those
stranded (stale) entries and nothing else.  Capacity is bounded by
plain LRU on top.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from typing import Any, Callable, Hashable

#: Sentinel returned by :meth:`QueryCache.get` on a miss, so ``None``
#: stays a cacheable value (e.g. "no journey arrives").
MISS: Any = object()


class QueryCache:
    """An LRU cache of query results keyed by graph version.

    ``max_entries`` bounds the total number of live entries; the least
    recently *used* entry is evicted first.  All counters are
    monotone, exposed through :meth:`stats` for the service's
    observability endpoint.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[int, Hashable], Any] = OrderedDict()
        # Per-query sorted version lists, kept in lockstep with
        # ``_entries`` — :meth:`ancestor` is a bisect over the versions
        # of *that* query, not a scan of every cached entry.
        self._versions: dict[Hashable, list[int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.purged = 0
        self.retained = 0

    def get(self, version: int, query: Hashable) -> Any:
        """The cached result, or :data:`MISS`; a hit refreshes recency."""
        key = (version, query)
        if key not in self._entries:
            self.misses += 1
            return MISS
        self.hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, version: int, query: Hashable, value: Any) -> None:
        """Store a result, evicting the LRU entry when full."""
        key = (version, query)
        if key in self._entries:
            self._entries.move_to_end(key)
        else:
            if len(self._entries) >= self.max_entries:
                evicted, _value = self._entries.popitem(last=False)
                self._index_discard(evicted)
                self.evictions += 1
            self._index_add(key)
        self._entries[key] = value

    def purge_stale(
        self,
        current_version: int,
        retain: Callable[[Hashable], bool] | None = None,
    ) -> int:
        """Evict stale entries (version != ``current_version``), except
        those ``retain`` vouches for.

        ``retain`` is a predicate on the *query* part of the key; a
        stale entry it accepts stays in the cache as incremental seed
        material (the service keeps old arrival matrices this way, so a
        later query can patch instead of re-sweeping).  Returns how many
        entries were purged.  Three separately monotone counters keep
        the observability honest: ``purged`` counts only
        staleness-purged entries, ``retained`` counts stale entries a
        retain predicate kept (once per purge pass they survive), and
        ``evictions`` counts only LRU-pressure drops from :meth:`put` —
        the three never mix.  Entries at the current version are
        untouched — invalidation is exact, not a flush.
        """
        stale = [key for key in self._entries if key[0] != current_version]
        kept = 0
        for key in stale:
            if retain is not None and retain(key[1]):
                kept += 1
                continue
            del self._entries[key]
            self._index_discard(key)
        self.purged += len(stale) - kept
        self.retained += kept
        return len(stale) - kept

    def ancestor(self, query: Hashable, version: int) -> tuple[int, Any] | None:
        """The newest cached ``(ancestor_version, value)`` of ``query``
        strictly below ``version``, or None.

        The incremental sweep's entry point: a hit hands back the most
        recent surviving matrix for the same query so the caller can
        ask the graph for the delta chain since.  One bisect over the
        per-query version index — O(log versions of *that* query), not
        a scan of every cached entry.  Refreshes the found entry's LRU
        recency (it is about to be useful) but moves no hit/miss
        counters — it is not a result lookup.
        """
        versions = self._versions.get(query)
        if not versions:
            return None
        i = bisect_left(versions, version)
        if i == 0:
            return None
        found = versions[i - 1]
        key = (found, query)
        self._entries.move_to_end(key)
        return found, self._entries[key]

    # -- the per-query version index -------------------------------------------

    def _index_add(self, key: tuple[int, Hashable]) -> None:
        version, query = key
        versions = self._versions.setdefault(query, [])
        i = bisect_left(versions, version)
        if i == len(versions) or versions[i] != version:
            versions.insert(i, version)

    def _index_discard(self, key: tuple[int, Hashable]) -> None:
        version, query = key
        versions = self._versions.get(query)
        if versions is None:
            return
        i = bisect_left(versions, version)
        if i < len(versions) and versions[i] == version:
            versions.pop(i)
            if not versions:
                del self._versions[query]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, Hashable]) -> bool:
        """Membership on the same ``(version, query)`` pair ``get``/
        ``put`` take — no recency refresh, no counter movement."""
        if not isinstance(key, tuple) or len(key) != 2:
            raise TypeError(
                "QueryCache membership takes a (version, query) pair, "
                f"got {key!r}"
            )
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int | float]:
        """A JSON-able snapshot of the cache counters."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "purged": self.purged,
            "retained": self.retained,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"QueryCache({len(self._entries)}/{self.max_entries} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
