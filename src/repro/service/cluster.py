"""The distributed arrival sweep: sweep workers and their executor.

PR 4 sharded the all-pairs arrival sweep across *processes* by lowering
it to a plain-data :class:`~repro.core.parallel.SweepPlan` and sweeping
contiguous source blocks independently.  This module ships the same
plan across *machines*: a **worker** (``python -m repro worker``) is a
long-lived process speaking the service's JSON-lines protocol whose one
real operation is ``sweep`` — plan spec plus a source block in, the
block's sub-matrix out (both base64-packed int64, see
:mod:`repro.service.wire`) — and the :class:`ClusterExecutor` is the
parent-side scheduler that splits the source set into blocks, streams
them to the configured workers over asyncio, and stacks the returned
sub-matrices into the full matrix.

Three scheduler properties (Cluster v2) keep the wire and the stragglers
honest:

* **sticky plans** — a worker memoizes decoded plans in a bounded LRU
  (:class:`PlanCache`) keyed by the plan spec's fingerprint; the
  executor ships the full base64 plan to each worker at most once per
  ``(version, window, semantics)`` and sends fingerprint-only block
  jobs after.  A worker that no longer holds the plan (restarted, or
  LRU-evicted) answers a structured *plan-miss*, which the executor
  repairs with exactly one re-ship — a second miss on the very
  connection that received the plan fails the job into the local
  re-sweep.  Stale state can cost a round-trip; it can never change an
  answer.
* **work stealing** — sources are oversplit into more blocks than
  workers (``oversplit``) and fed through one shared queue; a worker
  that finishes early simply pulls the next block, so a straggler
  bounds only its *current* block, not the sweep.
* **elastic membership** — :meth:`ClusterExecutor.set_workers`
  re-resolves the fleet at any time, including mid-sweep: departed
  workers stop pulling blocks after the one in flight, joined workers
  are picked up by the scheduler's next poll and start stealing from
  the same queue.

The correctness contract is absolute, not best-effort: **any** job
failure — a worker that refuses the connection, disconnects mid-frame,
times out, answers with a structured error, or returns a malformed or
mis-shaped frame — is transparently *re-run locally* with the very
:func:`~repro.core.parallel.sweep_block` the worker would have used, so
the stacked matrix is always element-for-element equal to the serial
sweep.  A cluster can therefore lose every worker and still answer;
what degrades is latency, never the answer.  The fault-injecting
differential harness in ``tests/properties/test_property_cluster.py``
kills, hangs, corrupts, plan-evicts, and crashes workers mid-batch —
and churns fleet membership — to prove it.

Workers hold no graph and no *required* state between jobs: the plan
cache is a pure performance memo (black-box presences were already
resolved in the parent through the engine's LazyContactCache when the
plan was built), so any worker can serve any client, and restarting one
costs at most a plan re-ship.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Hashable, Sequence

import numpy as np

from repro.core.engine import UNREACHED
from repro.core.parallel import (
    MIN_PARALLEL_NODES,
    SweepPlan,
    build_sweep_plan,
    partition_sources,
    sweep_block,
)
from repro.core.semantics import WaitingSemantics
from repro.core.sweep_kernel import KERNELS, resolve_kernel
from repro.errors import PlanMissError, ServiceError
from repro.service.client import ServiceClient
from repro.service.server import guarded_response, handle_json_lines
from repro.service.wire import (
    matrix_from_spec,
    matrix_to_spec,
    plan_fingerprint,
    plan_from_spec,
    plan_to_spec,
)

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine

#: Per-frame byte budget on worker connections.  Plans and sub-matrices
#: are single JSON lines, so the limit must hold the *bigger* of a
#: packed plan and a packed block reply — a block of ``b`` sources over
#: ``n`` nodes packs ``8bn`` bytes of int64, ~4/3 that after base64
#: (e.g. ~85 MB for one of two blocks of a 4000-node sweep).  1 GiB
#: keeps the limit a runaway-frame guard, not a graph-size ceiling.
WIRE_LIMIT: int = 2**30

#: Default seconds the executor waits for one block job before re-running
#: the block locally.
DEFAULT_TIMEOUT: float = 30.0

#: Default number of blocks *per worker*: the shared queue holds
#: ``oversplit x workers`` blocks, so a straggling worker strands at
#: most ``1/oversplit`` of its fair share while the others steal the
#: rest.  Higher values smooth stragglers further but pay more per-job
#: round-trips; 4 is a good latency/overhead balance on LAN fleets.
DEFAULT_OVERSPLIT: int = 4

#: Decoded plans a worker memoizes (LRU).  Plans are O(edges x horizon)
#: tuples, so a handful bounds worker memory while covering the live
#: query mix of several executors; an eviction costs one plan re-ship.
WORKER_PLAN_CACHE_SIZE: int = 8

#: Seconds between the scheduler's membership polls while a sweep is in
#: flight — the latency bound on a joining worker picking up blocks.
MEMBERSHIP_POLL_SECONDS: float = 0.05


# -- the worker side -----------------------------------------------------------


class PlanCache:
    """A worker's bounded LRU of decoded sweep plans, by fingerprint.

    Maps ``plan_fingerprint(spec)`` to the ``(spec, plan)`` pair so a
    fingerprint-only job can both sweep (the decoded plan) and echo an
    honest job fingerprint (the stored spec).  Thread-safe: the worker
    dispatches jobs on :func:`asyncio.to_thread`, so concurrent clients
    hit the cache from different threads.

    Keeping the *decoded* plan (not just the spec) also keeps the
    kernel's per-plan lowering memo hot: repeated block jobs against
    one cached plan see the same plan object, so the bitset kernel's
    source-independent setup is paid once per plan, not once per job.
    """

    def __init__(self, max_plans: int = WORKER_PLAN_CACHE_SIZE) -> None:
        if max_plans <= 0:
            raise ServiceError(f"max_plans must be positive, got {max_plans}")
        self.max_plans = max_plans
        self._plans: OrderedDict[str, tuple[dict, SweepPlan]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def put(self, key: str, spec: dict, plan: SweepPlan) -> None:
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
            elif len(self._plans) >= self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1
            self._plans[key] = (spec, plan)

    def get(self, key: str) -> tuple[dict, SweepPlan] | None:
        with self._lock:
            entry = self._plans.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._plans.move_to_end(key)
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> dict:
        with self._lock:
            return {
                "plans": len(self._plans),
                "max_plans": self.max_plans,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def dispatch_worker(op: str, params: dict, plans: PlanCache | None = None) -> Any:
    """Apply one worker operation; returns the raw (JSON-able) result.

    ``plans`` is the worker's sticky plan cache.  A job may carry the
    full ``plan`` spec (cached under its fingerprint for later jobs) or
    only a ``plan_key`` fingerprint — the latter answers from the cache
    or raises :class:`~repro.errors.PlanMissError`, the structured
    signal the executor repairs with one re-ship.  Without a cache
    (``plans=None`` — direct calls in tests, trace replays) full-plan
    jobs still work and every fingerprint-only job is a miss.
    """
    if op == "sweep":
        spec = params.get("plan")
        key = params.get("plan_key")
        if key is not None and not isinstance(key, str):
            raise ServiceError("sweep plan_key must be a string")
        if spec is not None:
            plan = plan_from_spec(spec)
            key = plan_fingerprint(spec)
            if plans is not None:
                plans.put(key, spec, plan)
        elif key is not None:
            entry = plans.get(key) if plans is not None else None
            if entry is None:
                raise PlanMissError(
                    f"plan {key!r} is not cached on this worker; re-ship it"
                )
            spec, plan = entry
        else:
            raise ServiceError("sweep needs a plan spec or a plan_key")
        sources = params.get("sources")
        if not isinstance(sources, list) or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in sources
        ):
            raise ServiceError("sweep sources must be a list of integers")
        if any(s < 0 or s >= plan.n for s in sources):
            raise ServiceError("sweep sources fall outside the plan's node range")
        kernel = params.get("kernel")
        if kernel is not None and kernel not in KERNELS:
            raise ServiceError(
                f"sweep kernel must be one of {', '.join(KERNELS)}"
            )
        result = matrix_to_spec(sweep_block(plan, tuple(sources), kernel=kernel))
        # Echo the fingerprint of the job actually computed — the plan
        # spec as stored plus the block and kernel — so the executor
        # can tell this result answers *its* job and not a stale one.
        result["fingerprint"] = plan_fingerprint(spec, (sources, kernel))
        return result
    if op == "stats":
        return {"plan_cache": plans.stats() if plans is not None else None}
    if op == "ping":
        return "pong"
    raise ServiceError(f"unknown operation {op!r}")


def handle_worker_request(request: dict, plans: PlanCache | None = None) -> dict:
    """The worker's dispatcher under the shared error guard — identical
    framing to the query service, so clients and fault handling treat
    both ends of the wire the same."""
    return guarded_response(
        request, lambda op, params: dispatch_worker(op, params, plans)
    )


async def serve_worker(
    host: str = "127.0.0.1", port: int = 0, plan_cache: PlanCache | None = None
) -> asyncio.AbstractServer:
    """Start a sweep worker; ``port=0`` picks a free port.

    Each worker owns one :class:`PlanCache` shared by every connection
    (pass ``plan_cache`` to bound or inspect it).  Returns the asyncio
    server; callers own its lifecycle.
    """
    plans = PlanCache() if plan_cache is None else plan_cache

    async def handler(reader, writer):
        # Dispatch on a thread: sweep_block is CPU-bound and can run for
        # tens of seconds, and a worker is shared by many executors — a
        # slow job must not freeze pings or other clients' jobs.
        await handle_json_lines(
            lambda request: asyncio.to_thread(handle_worker_request, request, plans),
            reader,
            writer,
        )

    return await asyncio.start_server(handler, host, port, limit=WIRE_LIMIT)


async def run_worker(host: str = "127.0.0.1", port: int = 7713) -> None:
    """Serve sweep jobs forever (the ``repro worker`` coroutine)."""
    server = await serve_worker(host, port)
    for sock in server.sockets or ():
        print(f"worker listening on {sock.getsockname()}", flush=True)
    async with server:
        await server.serve_forever()


# -- the executor side ---------------------------------------------------------


def parse_worker_address(worker: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or an already-split pair) as ``(host, port)``.

    IPv6 literals must be bracketed in the string form —
    ``"[::1]:7713"`` parses to ``("::1", 7713)`` — because a bare
    ``"::1:7713"`` is ambiguous (is the port ``7713`` of host ``::1``,
    or part of the address?) and is rejected outright.  Brackets are
    stripped either way, so the host handed to
    :func:`asyncio.open_connection` is always the raw literal.  Both
    forms get the same validation — a bad address must fail at
    construction, not as a silent per-sweep fallback later.
    """
    if isinstance(worker, tuple):
        host, port_text = worker
        host = str(host)
        from_string = False
    else:
        host, sep, port_text = worker.rpartition(":")
        if not sep:
            raise ServiceError(
                f"worker address {worker!r} is not of the form host:port"
            )
        from_string = True
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    elif from_string and ":" in host:
        raise ServiceError(
            f"worker address {worker!r} is ambiguous: bracket IPv6 "
            f"literals as [host]:port"
        )
    if not host:
        raise ServiceError(f"worker address {worker!r} has an empty host")
    try:
        port = int(port_text)
    except (TypeError, ValueError):
        raise ServiceError(f"worker address {worker!r} has a non-numeric port") from None
    if not 0 < port < 65536:
        raise ServiceError(f"worker address {worker!r} has an out-of-range port")
    return host, port


def _run_sync(coroutine):
    """Run a coroutine to completion from synchronous code.

    The executor is called from plain synchronous query paths
    (``TemporalEngine.arrival_matrix``) — but sometimes *inside* a
    running event loop, e.g. when ``repro serve --workers`` dispatches a
    cache-miss query from its own asyncio server.  ``asyncio.run`` would
    raise there, so in that case the coroutine gets a private loop on a
    short-lived thread; the caller blocks either way.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coroutine)
    with ThreadPoolExecutor(1, thread_name_prefix="cluster-sweep") as pool:
        return pool.submit(asyncio.run, coroutine).result()


def _is_plan_miss(exc: ServiceError) -> bool:
    """Whether a worker's error frame reports a plan-cache miss (the
    guard formats frames as ``"<ExceptionName>: <detail>"``)."""
    return str(exc).startswith("PlanMissError")


class ClusterExecutor:
    """Run arrival sweeps across remote sweep workers.

    ``workers`` is a sequence of ``"host:port"`` strings (or pairs);
    ``timeout`` bounds each block job before its local re-run;
    ``min_nodes`` keeps tiny graphs on the serial path (mirroring
    :func:`~repro.core.parallel.effective_shards` — the wire costs more
    than the sweep there), overridable down to 0 for tests; ``kernel``
    picks the sweep kernel for the whole fleet (validated eagerly, None
    defers to the per-sweep argument / environment / default chain);
    ``oversplit`` sets the work-stealing ratio (blocks per worker on
    the shared queue).  Jobs always ship an explicit kernel name, so
    every worker — and every local re-run after a failure — computes on
    the same kernel whatever its own environment says.

    The fleet is *elastic*: :meth:`set_workers` re-resolves membership
    at any time, including while a sweep is in flight — departed
    workers stop pulling blocks, joined ones start stealing from the
    live queue within :data:`MEMBERSHIP_POLL_SECONDS`.

    Between sweeps the executor keeps only counters and its belief
    about which plans each worker holds (bounded per worker; a wrong
    belief costs one plan-miss round-trip, never a wrong answer):
    ``jobs_shipped`` counts block jobs sent to workers,
    ``jobs_recovered`` the ones whose answers had to be re-computed
    locally after a worker failure, ``jobs_timed_out`` the recoveries
    that were specifically timeouts, ``plans_shipped``/``plan_misses``
    the sticky-cache traffic, and ``bytes_sent``/``bytes_received`` the
    JSON framing that actually crossed the wire — exactness never
    depends on any of them.
    """

    def __init__(
        self,
        workers: Sequence[str | tuple[str, int]] | str,
        timeout: float = DEFAULT_TIMEOUT,
        min_nodes: int = MIN_PARALLEL_NODES,
        kernel: str | None = None,
        oversplit: int = DEFAULT_OVERSPLIT,
    ) -> None:
        self.timeout = timeout
        self.min_nodes = min_nodes
        self.kernel = None if kernel is None else resolve_kernel(kernel)
        if oversplit < 1:
            raise ServiceError(f"oversplit must be >= 1, got {oversplit}")
        self.oversplit = oversplit
        self.jobs_shipped = 0
        self.jobs_recovered = 0
        self.jobs_timed_out = 0
        self.stale_results_rejected = 0
        self.plans_shipped = 0
        self.plan_misses = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        #: The kernel name resolved for the most recent sweep — what
        #: :meth:`stats` reports, so observability matches what jobs
        #: actually shipped instead of re-reading the environment.
        self.last_kernel: str | None = None
        # worker -> bounded LRU of plan fingerprints we believe it holds
        # (mirrors the worker-side cache size, so beliefs age out at
        # roughly the same rate the worker evicts).
        self._known_plans: dict[tuple[str, int], OrderedDict[str, None]] = {}
        self.workers: list[tuple[str, int]] = []
        self.set_workers(workers)

    # -- membership ------------------------------------------------------------

    def set_workers(
        self, workers: Sequence[str | tuple[str, int]] | str
    ) -> list[tuple[str, int]]:
        """Re-resolve fleet membership (validating every address).

        Safe at any time, from any thread: a sweep in flight sees the
        change at its next scheduling poll — departed workers finish
        the block they hold and stop pulling, joined workers start
        stealing from the same queue.  The local re-sweep safety net is
        unconditional either way, so membership churn can never change
        an answer.  Returns the resolved ``(host, port)`` list.
        """
        if isinstance(workers, str):
            # A bare "host:port" is one worker, not a sequence of
            # characters to parse as addresses.
            workers = [workers]
        resolved = [parse_worker_address(worker) for worker in workers]
        # Replace, don't mutate: in-flight sweeps read the list without
        # a lock, and a single reference assignment is atomic.
        self.workers = resolved
        # Prune plan beliefs to current members: a worker that left and
        # re-joins later may well still hold its plans, but re-shipping
        # once is cheaper than an unbounded belief map.
        self._known_plans = {
            worker: known
            for worker, known in self._known_plans.items()
            if worker in resolved
        }
        return resolved

    # -- routing ---------------------------------------------------------------

    def routes(self, node_count: int) -> bool:
        """Whether a sweep of ``node_count`` sources should come here
        (workers configured and the graph big enough to pay the wire)."""
        return bool(self.workers) and node_count >= max(1, self.min_nodes)

    # -- the distributed sweep -------------------------------------------------

    def arrival_matrix(
        self,
        engine: "TemporalEngine",
        start_time: int,
        semantics: WaitingSemantics,
        horizon: int,
        kernel: str | None = None,
    ) -> tuple[list[Hashable], np.ndarray]:
        """All-pairs earliest arrivals via the worker fleet.

        Lowers the sweep in the parent (black-box presences resolved
        through the engine's LazyContactCache, exactly as the process
        pool does) and distributes the blocks — element for element
        equal to :meth:`TemporalEngine.arrival_matrix` run serially.
        """
        nodes, plan = build_sweep_plan(engine, start_time, semantics, horizon)
        return nodes, self.sweep(plan, kernel=kernel)

    def sweep(self, plan: SweepPlan, kernel: str | None = None) -> np.ndarray:
        """The full ``(n, n)`` matrix of one lowered plan.

        The kernel resolves in the parent (call argument, then the
        executor's configured kernel, then environment/default) and is
        shipped with every job.
        """
        kernel = resolve_kernel(kernel if kernel is not None else self.kernel)
        self.last_kernel = kernel
        if plan.n == 0:
            return np.full((0, plan.n), UNREACHED, dtype=np.int64)
        if not self.workers:
            return sweep_block(plan, tuple(range(plan.n)), kernel=kernel)
        blocks = partition_sources(plan.n, len(self.workers), self.oversplit)
        parts = _run_sync(self._sweep_blocks(plan, blocks, kernel))
        return np.vstack(parts)

    async def _sweep_blocks(
        self, plan: SweepPlan, blocks: list[tuple[int, ...]], kernel: str
    ) -> list[np.ndarray]:
        """The work-stealing scheduler: one shared block queue, one
        puller per live fleet member, membership re-read every poll.

        Each puller runs at most one job at a time and takes the next
        block the moment it finishes — a straggler strands only the
        block it holds.  If membership drains to nothing mid-sweep the
        remaining blocks are swept locally, so the sweep always
        completes with the exact matrix.
        """
        spec = plan_to_spec(plan)
        plan_key = plan_fingerprint(spec)
        queue: deque[tuple[int, tuple[int, ...]]] = deque(enumerate(blocks))
        results: dict[int, np.ndarray] = {}
        pullers: dict[tuple[str, int], asyncio.Task] = {}

        async def pull(worker: tuple[str, int]) -> None:
            while worker in self.workers and queue:
                i, block = queue.popleft()
                try:
                    results[i] = await self._run_block(
                        spec, plan_key, plan, block, worker, kernel
                    )
                except BaseException:
                    # _run_block absorbs worker faults; anything that
                    # still escapes (cancellation at teardown) must not
                    # strand the block.
                    queue.appendleft((i, block))
                    raise

        try:
            while len(results) < len(blocks):
                for worker in list(self.workers):
                    task = pullers.get(worker)
                    if (task is None or task.done()) and queue:
                        pullers[worker] = asyncio.create_task(pull(worker))
                running = [t for t in pullers.values() if not t.done()]
                if not running:
                    if queue:
                        # The whole fleet left (or none was ever
                        # reachable to begin pulling): drain locally.
                        i, block = queue.popleft()
                        results[i] = await asyncio.to_thread(
                            sweep_block, plan, block, kernel
                        )
                    continue
                await asyncio.wait(
                    running,
                    timeout=MEMBERSHIP_POLL_SECONDS,
                    return_when=asyncio.FIRST_COMPLETED,
                )
        finally:
            for task in pullers.values():
                task.cancel()
            await asyncio.gather(*pullers.values(), return_exceptions=True)
        return [results[i] for i in range(len(blocks))]

    async def _run_block(
        self,
        spec: dict,
        plan_key: str,
        plan: SweepPlan,
        block: tuple[int, ...],
        worker: tuple[str, int],
        kernel: str,
    ) -> np.ndarray:
        """One block job: remote if the worker cooperates, local if not."""
        self.jobs_shipped += 1
        try:
            return await asyncio.wait_for(
                self._remote_sweep(spec, plan_key, plan, block, worker, kernel),
                self.timeout,
            )
        except asyncio.TimeoutError:
            # Counted apart from other recoveries: a fleet that mostly
            # times out needs a bigger ``timeout`` (or smaller blocks),
            # which looks nothing like one that refuses connections.
            self.jobs_timed_out += 1
            self.jobs_recovered += 1
            return await asyncio.to_thread(sweep_block, plan, block, kernel)
        except (
            ServiceError,
            OSError,          # refused/reset connections
            EOFError,         # disconnects mid-frame (IncompleteReadError)
            ValueError,       # malformed JSON / not-even-close frames
            KeyError,
            TypeError,
            AttributeError,
        ):
            self.jobs_recovered += 1
            # Off the event loop: the local re-sweep is CPU-bound and can
            # outlast the job timeout — run inline it would starve the
            # loop, stall the healthy workers' replies, and cascade their
            # jobs into spurious timeout recoveries.  Same kernel as the
            # failed job, so recovery cannot change what was computed.
            return await asyncio.to_thread(sweep_block, plan, block, kernel)

    async def _remote_sweep(
        self,
        spec: dict,
        plan_key: str,
        plan: SweepPlan,
        block: tuple[int, ...],
        worker: tuple[str, int],
        kernel: str,
    ) -> np.ndarray:
        host, port = worker
        expected = plan_fingerprint(spec, (list(block), kernel))
        client = await ServiceClient.connect(host, port, limit=WIRE_LIMIT)
        try:
            result = None
            if self._worker_knows(worker, plan_key):
                # Sticky fast path: fingerprint-only job.  A plan-miss
                # (worker restarted, or its LRU evicted the plan) gets
                # exactly one repair: fall through to the full re-ship.
                try:
                    result = await client.request(
                        "sweep", plan_key=plan_key, sources=list(block),
                        kernel=kernel,
                    )
                except ServiceError as exc:
                    if not _is_plan_miss(exc):
                        raise
                    self.plan_misses += 1
                    self._forget_plan(worker, plan_key)
            if result is None:
                self.plans_shipped += 1
                result = await client.request(
                    "sweep", plan=spec, sources=list(block), kernel=kernel
                )
            self._remember_plan(worker, plan_key)
        finally:
            self.bytes_sent += client.bytes_sent
            self.bytes_received += client.bytes_received
            await client.close()
        # A well-formed, well-shaped matrix computed from a *different*
        # job (a worker replaying a stale plan) must not be stacked into
        # the answer: the result frame carries the fingerprint of the
        # job the worker actually ran, and a mismatch (or its absence)
        # fails this job into the local re-sweep like any other fault.
        if not isinstance(result, dict) or result.get("fingerprint") != expected:
            self.stale_results_rejected += 1
            raise ServiceError(
                f"worker {host}:{port} answered a different job "
                f"(fingerprint mismatch)"
            )
        matrix = matrix_from_spec(result)
        if matrix.shape != (len(block), plan.n):
            raise ServiceError(
                f"worker {host}:{port} returned shape {matrix.shape}, "
                f"expected {(len(block), plan.n)}"
            )
        return matrix

    # -- plan beliefs ----------------------------------------------------------

    def _worker_knows(self, worker: tuple[str, int], plan_key: str) -> bool:
        known = self._known_plans.get(worker)
        return known is not None and plan_key in known

    def _remember_plan(self, worker: tuple[str, int], plan_key: str) -> None:
        known = self._known_plans.setdefault(worker, OrderedDict())
        if plan_key in known:
            known.move_to_end(plan_key)
        elif len(known) >= WORKER_PLAN_CACHE_SIZE:
            known.popitem(last=False)
        known[plan_key] = None

    def _forget_plan(self, worker: tuple[str, int], plan_key: str) -> None:
        known = self._known_plans.get(worker)
        if known is not None:
            known.pop(plan_key, None)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able snapshot of the executor's counters.

        ``kernel`` is the kernel resolved at the *last sweep* (what the
        jobs actually ran on); before any sweep it falls back to what
        the next one would resolve to.  Reporting the environment's
        current value instead would let ``stats()`` contradict reality
        whenever :envvar:`REPRO_SWEEP_KERNEL` changed after a sweep.
        """
        return {
            "workers": [f"{host}:{port}" for host, port in self.workers],
            "timeout": self.timeout,
            "oversplit": self.oversplit,
            "kernel": (
                self.last_kernel
                if self.last_kernel is not None
                else resolve_kernel(self.kernel)
            ),
            "jobs_shipped": self.jobs_shipped,
            "jobs_recovered": self.jobs_recovered,
            "jobs_timed_out": self.jobs_timed_out,
            "stale_results_rejected": self.stale_results_rejected,
            "plans_shipped": self.plans_shipped,
            "plan_misses": self.plan_misses,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }

    def __repr__(self) -> str:
        return (
            f"ClusterExecutor({len(self.workers)} workers, "
            f"{self.jobs_shipped} shipped, {self.jobs_recovered} recovered)"
        )


class FaultyWorker:
    """A TCP "sweep worker" that misbehaves on purpose — a chaos double.

    The executor's only correctness obligation is that worker failures
    never change an answer; this double injects the failure modes the
    fault-handling path must absorb, for the differential harness
    (``tests/properties/test_property_cluster.py``), the cluster unit
    tests, and ad-hoc chaos runs against a live executor.  ``mode`` is
    mutable mid-run:

    * ``"kill"``     — accept the job, then close without answering;
    * ``"hang"``     — accept the job and hold the connection silently
      until :meth:`close` — the executor's *timeout* path must fire,
      however long its configured timeout is (an earlier build held
      only 10 s, so default-config chaos always manifested as EOF and
      the timeout-recovery branch went unexercised);
    * ``"corrupt"``  — answer with a line that is not JSON;
    * ``"misshape"`` — answer ``ok: true`` with a well-formed matrix
      spec of the wrong dimensions;
    * ``"stale-plan-version"`` — answer ``ok: true`` with a matrix of
      the *correct* shape but computed "from" a stale plan: the echoed
      fingerprint hashes a doctored plan spec.  Before fingerprint
      checking this was the silent-corruption hole — a shape check
      alone accepts the frame and stacks wrong numbers into the answer;
    * ``"plan-evicted"`` — answer *every* sweep job with a structured
      plan-miss frame, even one that just shipped the full plan.  The
      executor owes exactly one re-ship; a worker that claims eviction
      forever must become a local re-sweep, never a loop;
    * ``"steal-crash"`` — accept one job off the shared queue, then
      die completely: no answer, listener closed, every later connect
      refused.  The worst work-stealing case — a worker that grabs a
      block and takes it to the grave mid-sweep.

    Deliberately implemented on plain blocking sockets and threads, not
    asyncio: it must be able to violate the protocol in ways the real
    worker's framing never would.
    """

    def __init__(self, mode: str = "kill") -> None:
        self.mode = mode
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.address = f"127.0.0.1:{self.port}"
        self.jobs_seen = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="faulty-worker", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:  # listener closed
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _read_frame(self, conn) -> bytes | None:
        data = b""
        while not data.endswith(b"\n"):
            chunk = conn.recv(1 << 16)
            if not chunk:
                return None
            data += chunk
        return data

    def _handle(self, conn) -> None:
        try:
            conn.settimeout(10)
            data = self._read_frame(conn)
            if data is None:
                return
            self.jobs_seen += 1
            mode = self.mode
            if mode == "hang":
                # Hold the connection until the double is closed: the
                # executor must recover via its own timeout, whatever
                # that timeout is — never via a premature EOF.
                self._stop.wait()
            elif mode == "corrupt":
                conn.sendall(b"{this is not json\n")
            elif mode == "misshape":
                request = json.loads(data)
                response = {
                    "id": request.get("id"),
                    "ok": True,
                    "result": {
                        "kind": "int64_matrix",
                        "rows": 1,
                        "cols": 1,
                        "data": "AAAAAAAAAAA=",  # one packed int64 zero
                    },
                }
                conn.sendall(json.dumps(response).encode() + b"\n")
            elif mode == "stale-plan-version":
                request = json.loads(data)
                plan_spec = request.get("plan") or {}
                sources = request.get("sources") or []
                # Right shape, wrong contents: zeros for the block, and
                # a fingerprint honestly computed — but from a plan one
                # version behind the one the executor shipped.
                stale_spec = dict(plan_spec)
                stale_spec["start"] = int(plan_spec.get("start", 0) or 0) - 1
                result = matrix_to_spec(
                    np.zeros((len(sources), int(plan_spec.get("n", 0) or 0)),
                             dtype=np.int64)
                )
                result["fingerprint"] = plan_fingerprint(
                    stale_spec, (sources, request.get("kernel"))
                )
                response = {"id": request.get("id"), "ok": True, "result": result}
                conn.sendall(json.dumps(response).encode() + b"\n")
            elif mode == "plan-evicted":
                # Claim eviction forever, even for jobs that carry the
                # full plan — including the executor's one repair
                # re-ship on this same connection.
                while data is not None:
                    request = json.loads(data)
                    response = {
                        "id": request.get("id"),
                        "ok": False,
                        "error": "PlanMissError: plan evicted (chaos)",
                    }
                    conn.sendall(json.dumps(response).encode() + b"\n")
                    data = self._read_frame(conn)
            elif mode == "steal-crash":
                # Die with the accepted block: close this connection
                # unanswered AND stop accepting new ones.  close() is
                # idempotent, so a second crash is a no-op.
                self.close()
            # "kill": fall through and close without a byte in reply.
        except OSError:  # pragma: no cover — peer raced the fault
            pass
        finally:
            conn.close()

    def __enter__(self) -> "FaultyWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._stop.set()
        self._sock.close()


class LoopbackWorkerPool:
    """``count`` in-process sweep workers on a background event loop.

    A context manager for tests, benchmarks, and trying the cluster
    path without deploying anything: the workers are real asyncio
    servers on loopback ports, indistinguishable on the wire from
    ``python -m repro worker`` processes — they just share this
    process's GIL, so they prove *plumbing*, not parallel speed-up.
    Each worker owns its own :class:`PlanCache` (pass ``plan_cache_size``
    to squeeze them for eviction tests).

    ::

        with LoopbackWorkerPool(2) as pool:
            cluster = ClusterExecutor(pool.addresses)
            nodes, matrix = engine.arrival_matrix(0, WAIT, horizon=20,
                                                  cluster=cluster)
    """

    def __init__(self, count: int = 2, plan_cache_size: int | None = None) -> None:
        self.count = count
        self.plan_cache_size = plan_cache_size
        self.addresses: list[str] = []
        self.plan_caches: list[PlanCache] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._servers: list[asyncio.AbstractServer] = []

    def __enter__(self) -> "LoopbackWorkerPool":
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="loopback-workers", daemon=True
        )
        self._thread.start()
        started.wait()
        try:
            for _ in range(self.count):
                cache = (
                    PlanCache()
                    if self.plan_cache_size is None
                    else PlanCache(max_plans=self.plan_cache_size)
                )
                server = asyncio.run_coroutine_threadsafe(
                    serve_worker(port=0, plan_cache=cache), self._loop
                ).result(timeout=10)
                self._servers.append(server)
                self.plan_caches.append(cache)
                host, port = server.sockets[0].getsockname()[:2]
                self.addresses.append(f"{host}:{port}")
        except BaseException:
            # A failed bind mid-startup must not leak the loop thread or
            # the servers that did come up — __exit__ will never run.
            self.__exit__(None, None, None)
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is None:
            return

        async def shutdown() -> None:
            for server in self._servers:
                server.close()
                await server.wait_closed()

        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        loop.close()
        self._servers.clear()
        self._loop = None
        self._thread = None
