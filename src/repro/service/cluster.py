"""The distributed arrival sweep: sweep workers and their executor.

PR 4 sharded the all-pairs arrival sweep across *processes* by lowering
it to a plain-data :class:`~repro.core.parallel.SweepPlan` and sweeping
contiguous source blocks independently.  This module ships the same
plan across *machines*: a **worker** (``python -m repro worker``) is a
long-lived process speaking the service's JSON-lines protocol whose one
real operation is ``sweep`` — plan spec plus a source block in, the
block's sub-matrix out (both base64-packed int64, see
:mod:`repro.service.wire`) — and the :class:`ClusterExecutor` is the
parent-side scheduler that partitions the source set with the existing
:func:`~repro.core.parallel.partition_sources`, ships one job per block
to the configured workers concurrently over asyncio, and stacks the
returned sub-matrices into the full matrix.

The correctness contract is absolute, not best-effort: **any** job
failure — a worker that refuses the connection, disconnects mid-frame,
times out, answers with a structured error, or returns a malformed or
mis-shaped frame — is transparently *re-run locally* with the very
:func:`~repro.core.parallel.sweep_block` the worker would have used, so
the stacked matrix is always element-for-element equal to the serial
sweep.  A cluster can therefore lose every worker and still answer;
what degrades is latency, never the answer.  The fault-injecting
differential harness in ``tests/properties/test_property_cluster.py``
kills, hangs, and corrupts workers mid-batch to prove it.

Workers hold no graph and no state between jobs: the plan carries
everything (black-box presences were already resolved in the parent
through the engine's LazyContactCache when the plan was built), so any
worker can serve any client, and restarting one loses nothing.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import TYPE_CHECKING, Any, Hashable, Sequence

import numpy as np

from repro.core.engine import UNREACHED
from repro.core.parallel import (
    MIN_PARALLEL_NODES,
    SweepPlan,
    build_sweep_plan,
    partition_sources,
    sweep_block,
)
from repro.core.semantics import WaitingSemantics
from repro.core.sweep_kernel import KERNELS, resolve_kernel
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.server import guarded_response, handle_json_lines
from repro.service.wire import (
    matrix_from_spec,
    matrix_to_spec,
    plan_fingerprint,
    plan_from_spec,
    plan_to_spec,
)

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.engine import TemporalEngine

#: Per-frame byte budget on worker connections.  Plans and sub-matrices
#: are single JSON lines, so the limit must hold the *bigger* of a
#: packed plan and a packed block reply — a block of ``b`` sources over
#: ``n`` nodes packs ``8bn`` bytes of int64, ~4/3 that after base64
#: (e.g. ~85 MB for one of two blocks of a 4000-node sweep).  1 GiB
#: keeps the limit a runaway-frame guard, not a graph-size ceiling.
WIRE_LIMIT: int = 2**30

#: Default seconds the executor waits for one block job before re-running
#: the block locally.
DEFAULT_TIMEOUT: float = 30.0


# -- the worker side -----------------------------------------------------------


def dispatch_worker(op: str, params: dict) -> Any:
    """Apply one worker operation; returns the raw (JSON-able) result."""
    if op == "sweep":
        plan = plan_from_spec(params.get("plan"))
        sources = params.get("sources")
        if not isinstance(sources, list) or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in sources
        ):
            raise ServiceError("sweep sources must be a list of integers")
        if any(s < 0 or s >= plan.n for s in sources):
            raise ServiceError("sweep sources fall outside the plan's node range")
        kernel = params.get("kernel")
        if kernel is not None and kernel not in KERNELS:
            raise ServiceError(
                f"sweep kernel must be one of {', '.join(KERNELS)}"
            )
        result = matrix_to_spec(sweep_block(plan, tuple(sources), kernel=kernel))
        # Echo the fingerprint of the job actually computed — the plan
        # spec as received plus the block and kernel — so the executor
        # can tell this result answers *its* job and not a stale one.
        result["fingerprint"] = plan_fingerprint(
            params.get("plan"), (sources, kernel)
        )
        return result
    if op == "ping":
        return "pong"
    raise ServiceError(f"unknown operation {op!r}")


def handle_worker_request(request: dict) -> dict:
    """The worker's dispatcher under the shared error guard — identical
    framing to the query service, so clients and fault handling treat
    both ends of the wire the same."""
    return guarded_response(request, dispatch_worker)


async def serve_worker(
    host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start a sweep worker; ``port=0`` picks a free port.

    Returns the asyncio server; callers own its lifecycle.
    """

    async def handler(reader, writer):
        # Dispatch on a thread: sweep_block is CPU-bound and can run for
        # tens of seconds, and a worker is shared by many executors — a
        # slow job must not freeze pings or other clients' jobs.
        await handle_json_lines(
            lambda request: asyncio.to_thread(handle_worker_request, request),
            reader,
            writer,
        )

    return await asyncio.start_server(handler, host, port, limit=WIRE_LIMIT)


async def run_worker(host: str = "127.0.0.1", port: int = 7713) -> None:
    """Serve sweep jobs forever (the ``repro worker`` coroutine)."""
    server = await serve_worker(host, port)
    for sock in server.sockets or ():
        print(f"worker listening on {sock.getsockname()}", flush=True)
    async with server:
        await server.serve_forever()


# -- the executor side ---------------------------------------------------------


def parse_worker_address(worker: str | tuple[str, int]) -> tuple[str, int]:
    """``"host:port"`` (or an already-split pair) as ``(host, port)``.

    Both forms get the same validation — a bad address must fail at
    construction, not as a silent per-sweep fallback later.
    """
    if isinstance(worker, tuple):
        host, port_text = worker
        host = str(host)
    else:
        host, sep, port_text = worker.rpartition(":")
        if not sep:
            raise ServiceError(
                f"worker address {worker!r} is not of the form host:port"
            )
    if not host:
        raise ServiceError(f"worker address {worker!r} has an empty host")
    try:
        port = int(port_text)
    except (TypeError, ValueError):
        raise ServiceError(f"worker address {worker!r} has a non-numeric port") from None
    if not 0 < port < 65536:
        raise ServiceError(f"worker address {worker!r} has an out-of-range port")
    return host, port


def _run_sync(coroutine):
    """Run a coroutine to completion from synchronous code.

    The executor is called from plain synchronous query paths
    (``TemporalEngine.arrival_matrix``) — but sometimes *inside* a
    running event loop, e.g. when ``repro serve --workers`` dispatches a
    cache-miss query from its own asyncio server.  ``asyncio.run`` would
    raise there, so in that case the coroutine gets a private loop on a
    short-lived thread; the caller blocks either way.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coroutine)
    outcome: dict[str, Any] = {}

    def runner() -> None:
        try:
            outcome["value"] = asyncio.run(coroutine)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            outcome["error"] = exc

    thread = threading.Thread(target=runner, name="cluster-sweep", daemon=True)
    thread.start()
    thread.join()
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


class ClusterExecutor:
    """Run arrival sweeps across remote sweep workers.

    ``workers`` is a sequence of ``"host:port"`` strings (or pairs);
    ``timeout`` bounds each block job before its local re-run;
    ``min_nodes`` keeps tiny graphs on the serial path (mirroring
    :func:`~repro.core.parallel.effective_shards` — the wire costs more
    than the sweep there), overridable down to 0 for tests; ``kernel``
    picks the sweep kernel for the whole fleet (validated eagerly, None
    defers to the per-sweep argument / environment / default chain).
    Jobs always ship an explicit kernel name, so every worker — and
    every local re-run after a failure — computes on the same kernel
    whatever its own environment says.

    The executor is stateless between sweeps apart from counters:
    ``jobs_shipped`` counts block jobs sent to workers and
    ``jobs_recovered`` the ones whose answers had to be re-computed
    locally after a worker failure — exactness never depends on either.
    """

    def __init__(
        self,
        workers: Sequence[str | tuple[str, int]] | str,
        timeout: float = DEFAULT_TIMEOUT,
        min_nodes: int = MIN_PARALLEL_NODES,
        kernel: str | None = None,
    ) -> None:
        if isinstance(workers, str):
            # A bare "host:port" is one worker, not a sequence of
            # characters to parse as addresses.
            workers = [workers]
        self.workers = [parse_worker_address(worker) for worker in workers]
        self.timeout = timeout
        self.min_nodes = min_nodes
        self.kernel = None if kernel is None else resolve_kernel(kernel)
        self.jobs_shipped = 0
        self.jobs_recovered = 0
        self.stale_results_rejected = 0

    # -- routing ---------------------------------------------------------------

    def routes(self, node_count: int) -> bool:
        """Whether a sweep of ``node_count`` sources should come here
        (workers configured and the graph big enough to pay the wire)."""
        return bool(self.workers) and node_count >= max(1, self.min_nodes)

    # -- the distributed sweep -------------------------------------------------

    def arrival_matrix(
        self,
        engine: "TemporalEngine",
        start_time: int,
        semantics: WaitingSemantics,
        horizon: int,
        kernel: str | None = None,
    ) -> tuple[list[Hashable], np.ndarray]:
        """All-pairs earliest arrivals via the worker fleet.

        Lowers the sweep in the parent (black-box presences resolved
        through the engine's LazyContactCache, exactly as the process
        pool does) and distributes the blocks — element for element
        equal to :meth:`TemporalEngine.arrival_matrix` run serially.
        """
        nodes, plan = build_sweep_plan(engine, start_time, semantics, horizon)
        return nodes, self.sweep(plan, kernel=kernel)

    def sweep(self, plan: SweepPlan, kernel: str | None = None) -> np.ndarray:
        """The full ``(n, n)`` matrix of one lowered plan.

        The kernel resolves in the parent (call argument, then the
        executor's configured kernel, then environment/default) and is
        shipped with every job.
        """
        kernel = resolve_kernel(kernel if kernel is not None else self.kernel)
        if plan.n == 0:
            return np.full((0, plan.n), UNREACHED, dtype=np.int64)
        if not self.workers:
            return sweep_block(plan, tuple(range(plan.n)), kernel=kernel)
        blocks = partition_sources(plan.n, len(self.workers))
        parts = _run_sync(self._sweep_blocks(plan, blocks, kernel))
        return np.vstack(parts)

    async def _sweep_blocks(
        self, plan: SweepPlan, blocks: list[tuple[int, ...]], kernel: str
    ) -> list[np.ndarray]:
        spec = plan_to_spec(plan)
        jobs = [
            self._run_block(
                spec, plan, block, self.workers[i % len(self.workers)], kernel
            )
            for i, block in enumerate(blocks)
        ]
        return list(await asyncio.gather(*jobs))

    async def _run_block(
        self,
        spec: dict,
        plan: SweepPlan,
        block: tuple[int, ...],
        worker: tuple[str, int],
        kernel: str,
    ) -> np.ndarray:
        """One block job: remote if the worker cooperates, local if not."""
        self.jobs_shipped += 1
        try:
            return await asyncio.wait_for(
                self._remote_sweep(spec, plan, block, worker, kernel), self.timeout
            )
        except (
            ServiceError,
            OSError,          # refused/reset connections; TimeoutError too (3.11+)
            EOFError,         # disconnects mid-frame (IncompleteReadError)
            asyncio.TimeoutError,
            ValueError,       # malformed JSON / not-even-close frames
            KeyError,
            TypeError,
            AttributeError,
        ):
            self.jobs_recovered += 1
            # Off the event loop: the local re-sweep is CPU-bound and can
            # outlast the job timeout — run inline it would starve the
            # loop, stall the healthy workers' replies, and cascade their
            # jobs into spurious timeout recoveries.  Same kernel as the
            # failed job, so recovery cannot change what was computed.
            return await asyncio.to_thread(sweep_block, plan, block, kernel)

    async def _remote_sweep(
        self,
        spec: dict,
        plan: SweepPlan,
        block: tuple[int, ...],
        worker: tuple[str, int],
        kernel: str,
    ) -> np.ndarray:
        host, port = worker
        expected = plan_fingerprint(spec, (list(block), kernel))
        client = await ServiceClient.connect(host, port, limit=WIRE_LIMIT)
        try:
            result = await client.request(
                "sweep", plan=spec, sources=list(block), kernel=kernel
            )
        finally:
            await client.close()
        # A well-formed, well-shaped matrix computed from a *different*
        # job (a worker replaying a stale plan) must not be stacked into
        # the answer: the result frame carries the fingerprint of the
        # job the worker actually ran, and a mismatch (or its absence)
        # fails this job into the local re-sweep like any other fault.
        if not isinstance(result, dict) or result.get("fingerprint") != expected:
            self.stale_results_rejected += 1
            raise ServiceError(
                f"worker {host}:{port} answered a different job "
                f"(fingerprint mismatch)"
            )
        matrix = matrix_from_spec(result)
        if matrix.shape != (len(block), plan.n):
            raise ServiceError(
                f"worker {host}:{port} returned shape {matrix.shape}, "
                f"expected {(len(block), plan.n)}"
            )
        return matrix

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able snapshot of the executor's counters."""
        return {
            "workers": [f"{host}:{port}" for host, port in self.workers],
            "timeout": self.timeout,
            "kernel": resolve_kernel(self.kernel),
            "jobs_shipped": self.jobs_shipped,
            "jobs_recovered": self.jobs_recovered,
            "stale_results_rejected": self.stale_results_rejected,
        }

    def __repr__(self) -> str:
        return (
            f"ClusterExecutor({len(self.workers)} workers, "
            f"{self.jobs_shipped} shipped, {self.jobs_recovered} recovered)"
        )


class FaultyWorker:
    """A TCP "sweep worker" that misbehaves on purpose — a chaos double.

    The executor's only correctness obligation is that worker failures
    never change an answer; this double injects the failure modes the
    fault-handling path must absorb, for the differential harness
    (``tests/properties/test_property_cluster.py``), the cluster unit
    tests, and ad-hoc chaos runs against a live executor.  ``mode`` is
    mutable mid-run:

    * ``"kill"``     — accept the job, then close without answering;
    * ``"hang"``     — accept the job and hold the connection silently
      until the executor's timeout fires;
    * ``"corrupt"``  — answer with a line that is not JSON;
    * ``"misshape"`` — answer ``ok: true`` with a well-formed matrix
      spec of the wrong dimensions;
    * ``"stale-plan-version"`` — answer ``ok: true`` with a matrix of
      the *correct* shape but computed "from" a stale plan: the echoed
      fingerprint hashes a doctored plan spec.  Before fingerprint
      checking this was the silent-corruption hole — a shape check
      alone accepts the frame and stacks wrong numbers into the answer.

    Deliberately implemented on plain blocking sockets and threads, not
    asyncio: it must be able to violate the protocol in ways the real
    worker's framing never would.
    """

    def __init__(self, mode: str = "kill") -> None:
        self.mode = mode
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.address = f"127.0.0.1:{self.port}"
        self.jobs_seen = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="faulty-worker", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _peer = self._sock.accept()
            except OSError:  # listener closed
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn) -> None:
        try:
            conn.settimeout(10)
            data = b""
            while not data.endswith(b"\n"):
                chunk = conn.recv(1 << 16)
                if not chunk:
                    return
                data += chunk
            self.jobs_seen += 1
            mode = self.mode
            if mode == "hang":
                self._stop.wait(10)
            elif mode == "corrupt":
                conn.sendall(b"{this is not json\n")
            elif mode == "misshape":
                request = json.loads(data)
                response = {
                    "id": request.get("id"),
                    "ok": True,
                    "result": {
                        "kind": "int64_matrix",
                        "rows": 1,
                        "cols": 1,
                        "data": "AAAAAAAAAAA=",  # one packed int64 zero
                    },
                }
                conn.sendall(json.dumps(response).encode() + b"\n")
            elif mode == "stale-plan-version":
                request = json.loads(data)
                plan_spec = request.get("plan") or {}
                sources = request.get("sources") or []
                # Right shape, wrong contents: zeros for the block, and
                # a fingerprint honestly computed — but from a plan one
                # version behind the one the executor shipped.
                stale_spec = dict(plan_spec)
                stale_spec["start"] = int(plan_spec.get("start", 0) or 0) - 1
                result = matrix_to_spec(
                    np.zeros((len(sources), int(plan_spec.get("n", 0) or 0)),
                             dtype=np.int64)
                )
                result["fingerprint"] = plan_fingerprint(
                    stale_spec, (sources, request.get("kernel"))
                )
                response = {"id": request.get("id"), "ok": True, "result": result}
                conn.sendall(json.dumps(response).encode() + b"\n")
            # "kill": fall through and close without a byte in reply.
        except OSError:  # pragma: no cover — peer raced the fault
            pass
        finally:
            conn.close()

    def __enter__(self) -> "FaultyWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._stop.set()
        self._sock.close()


class LoopbackWorkerPool:
    """``count`` in-process sweep workers on a background event loop.

    A context manager for tests, benchmarks, and trying the cluster
    path without deploying anything: the workers are real asyncio
    servers on loopback ports, indistinguishable on the wire from
    ``python -m repro worker`` processes — they just share this
    process's GIL, so they prove *plumbing*, not parallel speed-up.

    ::

        with LoopbackWorkerPool(2) as pool:
            cluster = ClusterExecutor(pool.addresses)
            nodes, matrix = engine.arrival_matrix(0, WAIT, horizon=20,
                                                  cluster=cluster)
    """

    def __init__(self, count: int = 2) -> None:
        self.count = count
        self.addresses: list[str] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._servers: list[asyncio.AbstractServer] = []

    def __enter__(self) -> "LoopbackWorkerPool":
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="loopback-workers", daemon=True
        )
        self._thread.start()
        started.wait()
        try:
            for _ in range(self.count):
                server = asyncio.run_coroutine_threadsafe(
                    serve_worker(port=0), self._loop
                ).result(timeout=10)
                self._servers.append(server)
                host, port = server.sockets[0].getsockname()[:2]
                self.addresses.append(f"{host}:{port}")
        except BaseException:
            # A failed bind mid-startup must not leak the loop thread or
            # the servers that did come up — __exit__ will never run.
            self.__exit__(None, None, None)
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is None:
            return

        async def shutdown() -> None:
            for server in self._servers:
                server.close()
                await server.wait_closed()

        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        loop.close()
        self._servers.clear()
        self._loop = None
        self._thread = None
