"""Asyncio JSON-lines front end for :class:`TVGService`.

Protocol: one JSON object per line in each direction.  Requests carry
an ``op`` plus its parameters (and an optional ``id`` echoed back);
responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "..."}``.  The dispatcher :func:`handle_request` is a plain
synchronous function over a service — the event loop serializes
handlers, which is exactly the consistency model the versioned cache
needs (no query ever observes a half-applied mutation) — so it is also
what the workload driver replays traces through and what the unit tests
exercise without opening sockets.

Operations
----------

======  =====================================================
op      parameters
======  =====================================================
reach         source, target, start, horizon, semantics?
arrival       source, target, start, horizon, semantics?
growth        start, end, semantics?
classify      start, end
add_edge      source, target, key?, label?, presence?, latency?
remove_edge   key
set_presence  key, presence
stats         —
ping          —
======  =====================================================

``semantics`` is a wire string (default ``"wait"``); ``presence`` and
``latency`` are the specs of :mod:`repro.service.wire`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import ReproError, ServiceError
from repro.service.service import TVGService
from repro.service.wire import latency_from_spec, parse_semantics, presence_from_spec


def _query_args(params: dict) -> dict:
    semantics = parse_semantics(params.get("semantics", "wait"))
    return {
        "start": params["start"],
        "horizon": params["horizon"],
        "semantics": semantics,
    }


def dispatch(service: TVGService, op: str, params: dict) -> Any:
    """Apply one operation to the service; returns the raw result."""
    if op == "reach":
        return service.reach(params["source"], params["target"], **_query_args(params))
    if op == "arrival":
        return service.arrival(
            params["source"], params["target"], **_query_args(params)
        )
    if op == "growth":
        semantics = parse_semantics(params.get("semantics", "wait"))
        curve = service.growth(params["start"], params["end"], semantics)
        return [[t, r] for t, r in curve]
    if op == "classify":
        return service.classify(params["start"], params["end"])
    if op == "add_edge":
        return service.add_edge(
            params["source"],
            params["target"],
            label=params.get("label"),
            presence=presence_from_spec(params.get("presence")),
            latency=latency_from_spec(params.get("latency")),
            key=params.get("key"),
        )
    if op == "remove_edge":
        return service.remove_edge(params["key"])
    if op == "set_presence":
        return service.set_presence(
            params["key"], presence_from_spec(params["presence"])
        )
    if op == "stats":
        return service.stats()
    if op == "ping":
        return "pong"
    raise ServiceError(f"unknown operation {op!r}")


def handle_request(service: TVGService, request: dict) -> dict:
    """One request dict in, one response dict out; never raises.

    Library errors (unknown node/edge, bad window, bad spec) come back
    as ``ok: false`` with the message, so one bad request cannot take
    down the connection — or the replay — that carries it.
    """
    response: dict[str, Any] = {}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    try:
        if not isinstance(request, dict) or "op" not in request:
            raise ServiceError("request must be an object with an 'op' field")
        result = dispatch(service, request["op"], request)
        response.update(ok=True, result=result)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        detail = repr(exc.args[0]) if isinstance(exc, KeyError) and exc.args else str(exc)
        response.update(ok=False, error=f"{type(exc).__name__}: {detail}")
    return response


async def _handle_connection(
    service: TVGService, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response = {"ok": False, "error": f"bad JSON: {exc}"}
            else:
                response = handle_request(service, request)
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # Server shutdown cancels in-flight handlers mid-teardown;
            # the transport is already closing, so exit quietly instead
            # of surfacing the cancellation through asyncio's callback.
            pass


async def serve_service(
    service: TVGService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start serving; ``port=0`` picks a free port (see the socket name).

    Returns the asyncio server; callers own its lifecycle
    (``async with server: await server.serve_forever()``).
    """

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(handler, host, port)


async def run_service(
    service: TVGService, host: str = "127.0.0.1", port: int = 7712
) -> None:
    """Serve forever (the CLI entry point's coroutine)."""
    server = await serve_service(service, host, port)
    sockets = server.sockets or ()
    for sock in sockets:
        print(f"serving {service.graph.name or 'TVG'} on {sock.getsockname()}")
    async with server:
        await server.serve_forever()
