"""Asyncio JSON-lines front end for :class:`TVGService`.

Protocol: one JSON object per line in each direction.  Requests carry
an ``op`` plus its parameters (and an optional ``id`` echoed back);
responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "..."}``.  The dispatcher :func:`handle_request` is a plain
synchronous function over a service — the event loop serializes
handlers, which is exactly the consistency model the versioned cache
needs (no query ever observes a half-applied mutation) — so it is also
what the workload driver replays traces through and what the unit tests
exercise without opening sockets.

Operations
----------

======  =====================================================
op      parameters
======  =====================================================
reach         source, target, start, horizon, semantics?
arrival       source, target, start, horizon, semantics?
growth        start, end, semantics?
classify      start, end
add_edge      source, target, key?, label?, presence?, latency?
remove_edge   key
set_presence  key, presence
set_workers   workers (list of "host:port" strings)
stats         —
ping          —
======  =====================================================

``semantics`` is a wire string (default ``"wait"``); ``presence`` and
``latency`` are the specs of :mod:`repro.service.wire`.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from typing import Any

from repro.errors import ReproError, ServiceError
from repro.service.service import TVGService
from repro.service.wire import latency_from_spec, parse_semantics, presence_from_spec


def _query_args(params: dict) -> dict:
    semantics = parse_semantics(params.get("semantics", "wait"))
    return {
        "start": params["start"],
        "horizon": params["horizon"],
        "semantics": semantics,
    }


def dispatch(service: TVGService, op: str, params: dict) -> Any:
    """Apply one operation to the service; returns the raw result."""
    if op == "reach":
        return service.reach(params["source"], params["target"], **_query_args(params))
    if op == "arrival":
        return service.arrival(
            params["source"], params["target"], **_query_args(params)
        )
    if op == "growth":
        semantics = parse_semantics(params.get("semantics", "wait"))
        curve = service.growth(params["start"], params["end"], semantics)
        return [[t, r] for t, r in curve]
    if op == "classify":
        return service.classify(params["start"], params["end"])
    if op == "add_edge":
        return service.add_edge(
            params["source"],
            params["target"],
            label=params.get("label"),
            presence=presence_from_spec(params.get("presence")),
            latency=latency_from_spec(params.get("latency")),
            key=params.get("key"),
        )
    if op == "remove_edge":
        return service.remove_edge(params["key"])
    if op == "set_presence":
        return service.set_presence(
            params["key"], presence_from_spec(params["presence"])
        )
    if op == "set_workers":
        workers = params["workers"]
        if not isinstance(workers, list) or not all(
            isinstance(w, str) for w in workers
        ):
            raise ServiceError(
                "set_workers takes a list of 'host:port' strings"
            )
        return service.set_workers(workers)
    if op == "stats":
        return service.stats()
    if op == "ping":
        return "pong"
    raise ServiceError(f"unknown operation {op!r}")


def guarded_response(request: Any, dispatcher) -> dict:
    """One request dict in, one response dict out; never raises.

    ``dispatcher(op, params)`` produces the result.  Library errors
    (unknown node/edge, bad window, bad spec) come back as ``ok: false``
    with the message, so one bad request cannot take down the connection
    — or the replay — that carries it.  Shared by the query service and
    the cluster's sweep workers (:mod:`repro.service.cluster`), so both
    produce identical structured error frames.
    """
    response: dict[str, Any] = {}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    try:
        if not isinstance(request, dict) or "op" not in request:
            raise ServiceError("request must be an object with an 'op' field")
        result = dispatcher(request["op"], request)
        response.update(ok=True, result=result)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        detail = repr(exc.args[0]) if isinstance(exc, KeyError) and exc.args else str(exc)
        response.update(ok=False, error=f"{type(exc).__name__}: {detail}")
    return response


def handle_request(service: TVGService, request: dict) -> dict:
    """The query service's dispatcher under the shared error guard."""
    return guarded_response(request, lambda op, params: dispatch(service, op, params))


async def _discard_frame(reader: asyncio.StreamReader) -> bool:
    """Consume the rest of an over-long frame, up to and including its
    newline.  Returns False if the peer hung up before finishing it."""
    while True:
        try:
            await reader.readuntil(b"\n")
            return True
        except asyncio.LimitOverrunError as exc:
            # Buffer full with no newline yet: drop what arrived and
            # keep scanning (readuntil leaves the data in the buffer).
            await reader.readexactly(exc.consumed)
        except asyncio.IncompleteReadError:
            return False


async def _read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """One newline-terminated frame.

    Returns ``b""`` at EOF and ``None`` for a frame that overran the
    stream's limit — the oversized frame is consumed in full either
    way, so the connection stays aligned and usable afterwards.
    """
    try:
        return await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        return exc.partial  # trailing unterminated frame, or b"" at EOF
    except asyncio.LimitOverrunError as exc:
        await reader.readexactly(exc.consumed)
        if not await _discard_frame(reader):
            return b""
        return None


async def handle_json_lines(
    respond, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """The shared JSON-lines connection loop.

    ``respond(request) -> response`` is a dict-to-dict function —
    :func:`handle_request` bound to a service, or the cluster worker's
    :func:`~repro.service.cluster.handle_worker_request` — and may
    return an awaitable (the worker uses that to push CPU-bound sweeps
    off the event loop so one slow job cannot freeze the whole
    process).  Transport-level failures — bad JSON, frames longer than
    the stream limit — become structured ``ServiceError`` frames and
    the connection stays usable, exactly like dispatcher-level errors;
    that is the behaviour the cluster's fault handling (local re-run on
    malformed frames) relies on.
    """
    try:
        while True:
            line = await _read_frame(reader)
            if line is None:
                response: dict[str, Any] = {
                    "ok": False,
                    "error": "ServiceError: frame exceeds the line limit",
                }
            elif not line:
                break
            else:
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"ServiceError: bad JSON: {exc}"}
                else:
                    response = respond(request)
                    if inspect.isawaitable(response):
                        response = await response
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # Server shutdown cancels in-flight handlers mid-teardown;
            # the transport is already closing, so exit quietly instead
            # of surfacing the cancellation through asyncio's callback.
            pass


async def serve_service(
    service: TVGService, host: str = "127.0.0.1", port: int = 0, limit: int | None = None
) -> asyncio.AbstractServer:
    """Start serving; ``port=0`` picks a free port (see the socket name).

    ``limit`` caps the per-frame byte budget (asyncio's default 64 KiB
    when None); longer frames get a structured error, not a dead
    connection.  Returns the asyncio server; callers own its lifecycle
    (``async with server: await server.serve_forever()``).
    """

    async def handler(reader, writer):
        await handle_json_lines(lambda request: handle_request(service, request),
                                reader, writer)

    kwargs = {} if limit is None else {"limit": limit}
    return await asyncio.start_server(handler, host, port, **kwargs)


async def run_service(
    service: TVGService, host: str = "127.0.0.1", port: int = 7712
) -> None:
    """Serve forever (the CLI entry point's coroutine)."""
    server = await serve_service(service, host, port)
    sockets = server.sockets or ()
    for sock in sockets:
        print(f"serving {service.graph.name or 'TVG'} on {sock.getsockname()}")
    async with server:
        await server.serve_forever()
