"""Asyncio JSON-lines front end for :class:`TVGService`.

Protocol: one JSON object per line in each direction.  Requests carry
an ``op`` plus its parameters (and an optional ``id`` echoed back);
responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "..."}``.  The dispatcher :func:`handle_request` is a plain
synchronous function over a service — the event loop serializes
handlers, which is exactly the consistency model the versioned cache
needs (no query ever observes a half-applied mutation) — so it is also
what the workload driver replays traces through and what the unit tests
exercise without opening sockets.

Operations
----------

======  =====================================================
op      parameters
======  =====================================================
reach         source, target, start, horizon, semantics?
arrival       source, target, start, horizon, semantics?
growth        start, end, semantics?
classify      start, end
add_edge      source, target, key?, label?, presence?, latency?
remove_edge   key
set_presence  key, presence
set_workers   workers (list of "host:port" strings)
submit        request (a query-op object: reach/arrival/growth/classify)
status        task
result        task
cancel        task
stats         —
ping          —
======  =====================================================

``semantics`` is a wire string (default ``"wait"``); ``presence`` and
``latency`` are the specs of :mod:`repro.service.wire`.  Every op's
required fields are validated up front (:data:`REQUIRED_PARAMS`): a
missing field is a structured ``ServiceError`` naming it, never a raw
``KeyError``.

Admission control (:mod:`repro.service.limits`) wraps the dispatcher
when :func:`serve_service` is given a rate limiter or in-flight gate:
over-limit requests get an ``ok: false`` frame carrying a
``retry_after`` back-off hint (the request ``id`` echoed like any other
response) and the connection stays open.  Per-op latency is recorded
into a bounded histogram the ``stats`` op reports alongside the
service's own counters.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import re
import time
from typing import Any

from repro.errors import ReproError, ServiceError
from repro.service.limits import (
    GATE_RETRY_AFTER,
    AdmissionGate,
    LatencyRecorder,
    RateLimiter,
)
from repro.service.service import BACKGROUND_OPS, TVGService
from repro.service.wire import latency_from_spec, parse_semantics, presence_from_spec

#: Required request fields per operation — the complete op table.  An
#: op absent here is unknown; a field absent from a request is a
#: structured error naming it (never a bare ``KeyError``).
REQUIRED_PARAMS: dict[str, tuple[str, ...]] = {
    "reach": ("source", "target", "start", "horizon"),
    "arrival": ("source", "target", "start", "horizon"),
    "growth": ("start", "end"),
    "classify": ("start", "end"),
    "add_edge": ("source", "target"),
    "remove_edge": ("key",),
    "set_presence": ("key", "presence"),
    "set_workers": ("workers",),
    "submit": ("request",),
    "status": ("task",),
    "result": ("task",),
    "cancel": ("task",),
    "stats": (),
    "ping": (),
}


def require_params(op: str, params: dict) -> None:
    """Reject an op whose request is missing required fields, naming
    every missing field in one structured error."""
    required = REQUIRED_PARAMS.get(op)
    if required is None:
        raise ServiceError(f"unknown operation {op!r}")
    missing = [field for field in required if field not in params]
    if missing:
        raise ServiceError(
            f"op {op!r} missing required field(s): {', '.join(missing)}"
        )


def _query_args(params: dict) -> dict:
    semantics = parse_semantics(params.get("semantics", "wait"))
    return {
        "start": params["start"],
        "horizon": params["horizon"],
        "semantics": semantics,
    }


def _submit(service: TVGService, params: dict) -> dict:
    """The ``submit`` op: validate the nested query request, then hand
    it to the service's task table."""
    inner = params["request"]
    if not isinstance(inner, dict) or "op" not in inner:
        raise ServiceError(
            "submit takes a 'request' object with its own 'op' field"
        )
    inner_op = inner["op"]
    if inner_op not in BACKGROUND_OPS:
        raise ServiceError(
            f"op {inner_op!r} cannot run in the background; submit takes "
            f"one of: {', '.join(sorted(BACKGROUND_OPS))}"
        )
    require_params(inner_op, inner)
    kwargs: dict[str, Any]
    if inner_op in ("reach", "arrival"):
        kwargs = {
            "source": inner["source"],
            "target": inner["target"],
            **_query_args(inner),
        }
    elif inner_op == "growth":
        kwargs = {
            "start": inner["start"],
            "end": inner["end"],
            "semantics": parse_semantics(inner.get("semantics", "wait")),
        }
    else:  # classify
        kwargs = {"start": inner["start"], "end": inner["end"]}
    return service.submit(inner_op, **kwargs)


def dispatch(service: TVGService, op: str, params: dict) -> Any:
    """Apply one operation to the service; returns the raw result."""
    require_params(op, params)
    if op == "reach":
        return service.reach(params["source"], params["target"], **_query_args(params))
    if op == "arrival":
        return service.arrival(
            params["source"], params["target"], **_query_args(params)
        )
    if op == "growth":
        semantics = parse_semantics(params.get("semantics", "wait"))
        curve = service.growth(params["start"], params["end"], semantics)
        return [[t, r] for t, r in curve]
    if op == "classify":
        return service.classify(params["start"], params["end"])
    if op == "add_edge":
        return service.add_edge(
            params["source"],
            params["target"],
            label=params.get("label"),
            presence=presence_from_spec(params.get("presence")),
            latency=latency_from_spec(params.get("latency")),
            key=params.get("key"),
        )
    if op == "remove_edge":
        return service.remove_edge(params["key"])
    if op == "set_presence":
        return service.set_presence(
            params["key"], presence_from_spec(params["presence"])
        )
    if op == "set_workers":
        workers = params["workers"]
        if not isinstance(workers, list) or not all(
            isinstance(w, str) for w in workers
        ):
            raise ServiceError(
                "set_workers takes a list of 'host:port' strings"
            )
        return service.set_workers(workers)
    if op == "submit":
        return _submit(service, params)
    if op == "status":
        return service.task_status(params["task"])
    if op == "result":
        return service.task_result(params["task"])
    if op == "cancel":
        return service.task_cancel(params["task"])
    if op == "stats":
        return service.stats()
    if op == "ping":
        return "pong"
    raise ServiceError(f"unknown operation {op!r}")


def guarded_response(request: Any, dispatcher) -> dict:
    """One request dict in, one response dict out; never raises.

    ``dispatcher(op, params)`` produces the result.  Library errors
    (unknown node/edge, bad window, bad spec) come back as ``ok: false``
    with the message, so one bad request cannot take down the connection
    — or the replay — that carries it.  Shared by the query service and
    the cluster's sweep workers (:mod:`repro.service.cluster`), so both
    produce identical structured error frames.
    """
    response: dict[str, Any] = {}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    try:
        if not isinstance(request, dict) or "op" not in request:
            raise ServiceError("request must be an object with an 'op' field")
        result = dispatcher(request["op"], request)
        response.update(ok=True, result=result)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        detail = repr(exc.args[0]) if isinstance(exc, KeyError) and exc.args else str(exc)
        response.update(ok=False, error=f"{type(exc).__name__}: {detail}")
    return response


def handle_request(service: TVGService, request: dict) -> dict:
    """The query service's dispatcher under the shared error guard."""
    return guarded_response(request, lambda op, params: dispatch(service, op, params))


class OversizedFrame:
    """Marker for a frame that overran the stream limit; carries the
    drained prefix so the error frame can best-effort echo its ``id``."""

    __slots__ = ("prefix",)

    def __init__(self, prefix: bytes) -> None:
        self.prefix = prefix


#: Best-effort ``"id": <number-or-string>`` scan over an oversized
#: frame's drained prefix.  Requests put the id first (the client
#: writes it right after ``op``), so the prefix almost always carries
#: it; a miss just means the error frame goes out id-less, exactly the
#: pre-recovery behaviour.
_ID_PATTERN = re.compile(rb'"id"\s*:\s*(-?\d+|"(?:[^"\\]|\\.)*")')


def recover_request_id(prefix: bytes) -> Any | None:
    """The request ``id`` recovered from an oversized frame's prefix,
    or None when the prefix doesn't (yet) contain one."""
    match = _ID_PATTERN.search(prefix)
    if match is None:
        return None
    try:
        return json.loads(match.group(1))
    except json.JSONDecodeError:  # pragma: no cover — regex guarantees JSON
        return None


async def _discard_frame(reader: asyncio.StreamReader) -> bool:
    """Consume the rest of an over-long frame, up to and including its
    newline.  Returns False if the peer hung up before finishing it."""
    while True:
        try:
            await reader.readuntil(b"\n")
            return True
        except asyncio.LimitOverrunError as exc:
            # Buffer full with no newline yet: drop what arrived and
            # keep scanning (readuntil leaves the data in the buffer).
            await reader.readexactly(exc.consumed)
        except asyncio.IncompleteReadError:
            return False


async def _read_frame(reader: asyncio.StreamReader) -> bytes | OversizedFrame:
    """One newline-terminated frame.

    Returns ``b""`` at EOF and an :class:`OversizedFrame` for a frame
    that overran the stream's limit — the oversized frame is consumed
    in full either way, so the connection stays aligned and usable
    afterwards.
    """
    try:
        return await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        return exc.partial  # trailing unterminated frame, or b"" at EOF
    except asyncio.LimitOverrunError as exc:
        prefix = await reader.readexactly(exc.consumed)
        if not await _discard_frame(reader):
            return b""
        return OversizedFrame(prefix)


async def handle_json_lines(
    respond, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """The shared JSON-lines connection loop.

    ``respond(request) -> response`` is a dict-to-dict function —
    :func:`handle_request` bound to a service, or the cluster worker's
    :func:`~repro.service.cluster.handle_worker_request` — and may
    return an awaitable (the worker uses that to push CPU-bound sweeps
    off the event loop so one slow job cannot freeze the whole
    process).  Transport-level failures — bad JSON, frames longer than
    the stream limit — become structured ``ServiceError`` frames and
    the connection stays usable, exactly like dispatcher-level errors;
    that is the behaviour the cluster's fault handling (local re-run on
    malformed frames) relies on.
    """
    try:
        while True:
            line = await _read_frame(reader)
            if isinstance(line, OversizedFrame):
                response: dict[str, Any] = {
                    "ok": False,
                    "error": "ServiceError: frame exceeds the line limit",
                }
                recovered = recover_request_id(line.prefix)
                if recovered is not None:
                    # Echo the id like any other error frame, so a
                    # pipelined client can still correlate the drop.
                    response["id"] = recovered
            elif not line:
                break
            else:
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {"ok": False, "error": f"ServiceError: bad JSON: {exc}"}
                else:
                    response = respond(request)
                    if inspect.isawaitable(response):
                        response = await response
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # Server shutdown cancels in-flight handlers mid-teardown;
            # the transport is already closing, so exit quietly instead
            # of surfacing the cancellation through asyncio's callback.
            pass


def _rejection(request: Any, error: str, retry_after: float) -> dict:
    """A structured admission-control rejection frame: the request
    ``id`` echoed exactly like a success frame, plus the back-off
    hint.  The connection stays open — rejection is an answer."""
    response: dict[str, Any] = {}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    response.update(
        ok=False,
        error=f"RateLimitError: {error}",
        retry_after=round(retry_after, 4),
    )
    return response


class ServiceFrontend:
    """The traffic-hardened dispatcher one server wraps around its
    :class:`TVGService`: per-client rate limiting, a server-wide
    in-flight gate, and per-op latency telemetry.

    ``respond_for(client)`` builds the per-connection respond callable
    :func:`handle_json_lines` drives; the ``stats`` op's result gains a
    ``"frontend"`` section aggregating the limiter/gate/latency state
    into the one JSON document the load harness reads.
    """

    def __init__(
        self,
        service: TVGService,
        limiter: RateLimiter | None = None,
        gate: AdmissionGate | None = None,
        latency: LatencyRecorder | None = None,
    ) -> None:
        self.service = service
        self.limiter = limiter
        self.gate = gate
        self.latency = LatencyRecorder() if latency is None else latency

    def stats(self) -> dict:
        """The frontend's own JSON-able stats block."""
        report: dict[str, Any] = {"latency": self.latency.stats()}
        report["rate_limit"] = (
            None if self.limiter is None else self.limiter.stats()
        )
        report["admission"] = None if self.gate is None else self.gate.stats()
        return report

    def respond_for(self, client: Any):
        """The respond callable for one connection, keyed by ``client``
        (its peer name) for the rate limiter's sliding windows."""

        async def respond(request: Any) -> dict:
            if self.limiter is not None:
                retry_after = self.limiter.admit(client)
                if retry_after is not None:
                    return _rejection(
                        request,
                        "rate limit exceeded for this client; "
                        f"retry after {retry_after:.3f}s",
                        retry_after,
                    )
            if self.gate is not None and not self.gate.try_acquire():
                return _rejection(
                    request,
                    "server at its in-flight request cap; back off briefly",
                    GATE_RETRY_AFTER,
                )
            try:
                began = time.perf_counter()
                response = handle_request(self.service, request)
                if isinstance(request, dict):
                    op = request.get("op")
                    if isinstance(op, str):
                        self.latency.record(
                            op, time.perf_counter() - began
                        )
                        if op == "stats" and response.get("ok"):
                            response["result"]["frontend"] = self.stats()
                return response
            finally:
                if self.gate is not None:
                    self.gate.release()

        return respond

    def forget(self, client: Any) -> None:
        """Drop the client's limiter window (its connection closed)."""
        if self.limiter is not None:
            self.limiter.forget(client)


async def serve_service(
    service: TVGService,
    host: str = "127.0.0.1",
    port: int = 0,
    limit: int | None = None,
    limiter: RateLimiter | None = None,
    gate: AdmissionGate | None = None,
) -> asyncio.AbstractServer:
    """Start serving; ``port=0`` picks a free port (see the socket name).

    ``limit`` caps the per-frame byte budget (asyncio's default 64 KiB
    when None); longer frames get a structured error, not a dead
    connection.  ``limiter`` / ``gate`` opt the server into per-client
    rate limiting and an in-flight cap (:mod:`repro.service.limits`) —
    over-limit requests get structured ``retry_after`` frames, never a
    drop.  Returns the asyncio server; callers own its lifecycle
    (``async with server: await server.serve_forever()``).
    """
    frontend = ServiceFrontend(service, limiter=limiter, gate=gate)

    async def handler(reader, writer):
        client = writer.get_extra_info("peername")
        try:
            await handle_json_lines(frontend.respond_for(client), reader, writer)
        finally:
            frontend.forget(client)

    kwargs = {} if limit is None else {"limit": limit}
    return await asyncio.start_server(handler, host, port, **kwargs)


async def run_service(
    service: TVGService,
    host: str = "127.0.0.1",
    port: int = 7712,
    limiter: RateLimiter | None = None,
    gate: AdmissionGate | None = None,
) -> None:
    """Serve forever (the CLI entry point's coroutine)."""
    server = await serve_service(service, host, port, limiter=limiter, gate=gate)
    sockets = server.sockets or ()
    for sock in sockets:
        print(f"serving {service.graph.name or 'TVG'} on {sock.getsockname()}")
    async with server:
        await server.serve_forever()
