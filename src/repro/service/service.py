"""The long-lived query service over one mutating time-varying graph.

:class:`TVGService` is the in-process core the asyncio server wraps: it
owns the graph, one :class:`~repro.core.engine.TemporalEngine` (whose
compiled index and :class:`~repro.core.index.LazyContactCache` survive
across queries), and one :class:`~repro.service.cache.QueryCache` of
finished results keyed by ``(graph.version, window, semantics, query)``.

Reads and writes interleave freely:

* a *query* first consults the cache at the graph's current version; on
  a miss it computes through the engine and stores the result.
  ``reach``, ``arrival``, and ``growth`` all derive from the batched
  arrival sweep, whose matrix is cached once per ``(version, window,
  semantics)`` — point queries are array lookups and the growth curve
  one sort on top; ``classify`` runs its checkers through the engine
  and is cached at the result level;
* a *mutation* (``add_edge``, ``remove_edge``, ``set_presence``) bumps
  :attr:`TimeVaryingGraph.version` through the graph's own mutators and
  then purges exactly the stale cache entries.  The engine notices the
  version bump on its next query and recompiles lazily — the service
  never recomputes eagerly on write.

Answers are always equal to a fresh interpretive computation on the
current graph; the stateful differential harness in
``tests/properties/test_property_service.py`` drives adversarial
mutation/query schedules against a shadow copy to prove it.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.analysis.classes import classify as classify_graph
from repro.analysis.evolution import growth_curve_from_arrivals
from repro.core.engine import UNREACHED, TemporalEngine
from repro.core.intervals import Interval
from repro.core.latency import LatencyFunction
from repro.core.presence import PresenceFunction
from repro.core.semantics import WAIT, WaitingSemantics
from repro.core.time_domain import require_window
from repro.core.tvg import TimeVaryingGraph
from repro.errors import ServiceError
from repro.service.cache import MISS, QueryCache
from repro.service.tasks import DEFAULT_MAX_TASKS, TaskTable

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.service.cluster import ClusterExecutor

#: The incremental-maintenance policies a service can run under.
INCREMENTAL_MODES: tuple[str, ...] = ("off", "on", "force")

#: Environment override for the incremental mode — the test suites
#: force the incremental path suite-wide via ``pytest --incremental``.
INCREMENTAL_ENV: str = "REPRO_INCREMENTAL"


def resolve_incremental(mode: str | None = None) -> str:
    """The incremental mode a service runs under: explicit argument
    first, then :envvar:`REPRO_INCREMENTAL`, then ``"on"``.

    ``"off"`` never patches (every cache miss is a full sweep), ``"on"``
    patches when the cone is small enough to beat a full sweep, and
    ``"force"`` patches whenever the delta chain allows it at all —
    the mode the differential suites pin the path down with.
    """
    if mode is None:
        mode = os.environ.get(INCREMENTAL_ENV) or "on"
    if mode not in INCREMENTAL_MODES:
        raise ValueError(
            f"unknown incremental mode {mode!r}; "
            f"choose from {', '.join(INCREMENTAL_MODES)}"
        )
    return mode


#: Required keyword arguments per background-runnable query op — the
#: only ops ``submit`` accepts, validated eagerly so a malformed submit
#: fails at the boundary, not minutes later on the worker thread.
BACKGROUND_OPS: dict[str, tuple[str, ...]] = {
    "reach": ("source", "target", "start", "horizon"),
    "arrival": ("source", "target", "start", "horizon"),
    "growth": ("start", "end"),
    "classify": ("start", "end"),
}


def _snapshot_query(
    graph: TimeVaryingGraph, op: str, params: dict
) -> bool | int | None | list | dict:
    """Answer one query op over a *private* graph snapshot.

    Runs on the task table's worker thread: everything it touches — the
    snapshot graph, a throwaway service with its own engine and cache —
    is built here and dies here, so a background sweep shares no
    mutable state with the live service.  Results come back wire-shaped
    (the growth curve as ``[[t, r], ...]``), matching what the socket
    protocol returns for the synchronous op.
    """
    service = TVGService(graph, cache_size=4, incremental="off")
    semantics = params.get("semantics", WAIT)
    if op == "reach":
        return service.reach(
            params["source"], params["target"], params["start"],
            params["horizon"], semantics,
        )
    if op == "arrival":
        return service.arrival(
            params["source"], params["target"], params["start"],
            params["horizon"], semantics,
        )
    if op == "growth":
        curve = service.growth(params["start"], params["end"], semantics)
        return [[t, r] for t, r in curve]
    if op == "classify":
        return service.classify(params["start"], params["end"])
    raise ServiceError(f"unknown background op {op!r}")


def _is_matrix_query(query: Hashable) -> bool:
    """Whether a cache query names a retainable arrival matrix."""
    return (
        isinstance(query, tuple) and bool(query) and query[0] == "arrival_matrix"
    )


class TVGService:
    """Answer reachability queries over a graph that mutates under you.

    ``cache_size`` bounds the number of memoized results; ``window``
    optionally pre-declares the engine's compiled window.  ``shards``
    opts cache-miss arrival sweeps into the process-sharded sweep
    (:mod:`repro.core.parallel`); ``workers`` — a list of
    ``"host:port"`` sweep-worker addresses (or a ready
    :class:`~repro.service.cluster.ClusterExecutor`) — ships them to
    remote workers instead, with any failed block re-swept locally,
    each job bounded by ``worker_timeout`` seconds (ignored when a
    ready executor is passed — it carries its own).  ``kernel`` picks
    the sweep kernel (``"bitset"``/``"bignum"``,
    :mod:`repro.core.sweep_kernel`) every cache-miss sweep runs on,
    local, sharded, or clustered.  Answers are identical on every
    route and kernel, so cache keys and hit behaviour don't change.
    ``incremental`` picks the maintenance mode
    (:func:`resolve_incremental`): with it on, mutations *retain* old
    arrival matrices instead of purging them, and a later miss patches
    the nearest ancestor through the graph's recorded delta chain —
    re-sweeping only the source rows whose answers can have changed —
    rather than re-sweeping everything; answers stay entry-for-entry
    identical to a from-scratch sweep.
    """

    def __init__(
        self,
        graph: TimeVaryingGraph,
        window: Interval | tuple[int, int] | None = None,
        cache_size: int = 256,
        shards: int | None = None,
        workers: "Sequence[str] | ClusterExecutor | None" = None,
        worker_timeout: float | None = None,
        kernel: str | None = None,
        incremental: str | None = None,
        oversplit: int | None = None,
        max_tasks: int = DEFAULT_MAX_TASKS,
    ) -> None:
        from repro.core.sweep_kernel import resolve_kernel
        from repro.service.cluster import (
            DEFAULT_OVERSPLIT,
            DEFAULT_TIMEOUT,
            ClusterExecutor,
        )

        self.graph = graph
        self.engine = TemporalEngine(graph, window)
        self.cache = QueryCache(max_entries=cache_size)
        self.shards = shards
        self.kernel = None if kernel is None else resolve_kernel(kernel)
        self._worker_timeout = (
            DEFAULT_TIMEOUT if worker_timeout is None else worker_timeout
        )
        self._oversplit = DEFAULT_OVERSPLIT if oversplit is None else oversplit
        if workers is None or isinstance(workers, ClusterExecutor):
            self.cluster = workers
        else:
            self.cluster = ClusterExecutor(
                workers, timeout=self._worker_timeout, kernel=self.kernel,
                oversplit=self._oversplit,
            )
        self.incremental = resolve_incremental(incremental)
        self.tasks = TaskTable(max_tasks=max_tasks)
        self.queries_served = 0
        self.mutations_applied = 0
        self.full_sweeps = 0
        self.incremental_sweeps = 0
        self.rows_reswept = 0
        self.rows_reused = 0

    # -- the cached sweep ------------------------------------------------------

    def _cached(self, query: tuple, compute):
        version = self.graph.version
        value = self.cache.get(version, query)
        if value is MISS:
            value = compute()
            self.cache.put(version, query, value)
        return value

    def _arrival_matrix(
        self, start: int, horizon: int, semantics: WaitingSemantics
    ) -> tuple[dict[Hashable, int], np.ndarray]:
        """The sweep's matrix plus a node->row index, cached per window.

        Every point query at the same ``(version, window, semantics)``
        shares this one entry, so a burst of ``reach``/``arrival``
        calls between mutations costs a single sweep.  On a miss, an
        *ancestor* matrix for the same query (retained across
        mutations when incremental maintenance is on) is patched
        through the graph's delta chain instead of re-swept from
        scratch, whenever the dirty cone allows it.
        """
        query = ("arrival_matrix", start, horizon, str(semantics))
        return self._cached(
            query, lambda: self._compute_matrix(query, start, horizon, semantics)
        )

    def _compute_matrix(
        self, query: tuple, start: int, horizon: int, semantics: WaitingSemantics
    ) -> tuple[dict[Hashable, int], np.ndarray]:
        """One cache-miss matrix: incremental patch if possible, else a
        full sweep on the configured route (shards/cluster/kernel)."""
        if self.incremental != "off":
            found = self.cache.ancestor(query, self.graph.version)
            if found is not None:
                ancestor_version, (index, matrix) = found
                result = self.engine.arrival_matrix_incremental(
                    start,
                    (list(index), matrix),
                    self.graph.deltas_since(ancestor_version),
                    semantics,
                    horizon,
                    kernel=self.kernel,
                    # "on" keeps full (sharded/clustered) sweeps for
                    # cones covering most rows; "force" never does.
                    max_rows=(
                        None
                        if self.incremental == "force"
                        else max(1, self.graph.node_count // 2)
                    ),
                )
                if result is not None:
                    nodes, merged, reswept = result
                    self.incremental_sweeps += 1
                    self.rows_reswept += reswept
                    self.rows_reused += len(nodes) - reswept
                    return {node: i for i, node in enumerate(nodes)}, merged
        self.full_sweeps += 1
        nodes, full = self.engine.arrival_matrix(
            start, semantics, horizon=horizon, shards=self.shards,
            cluster=self.cluster, kernel=self.kernel,
        )
        return {node: i for i, node in enumerate(nodes)}, full

    # -- queries ---------------------------------------------------------------

    def arrival(
        self,
        source: Hashable,
        target: Hashable,
        start: int,
        horizon: int,
        semantics: WaitingSemantics = WAIT,
    ) -> int | None:
        """Earliest date a journey from ``source`` (ready at ``start``)
        arrives at ``target``, or None if no journey joins them.

        Departures are bounded by ``horizon``; the trivial journey puts
        ``start`` on the diagonal.
        """
        self.queries_served += 1
        index, matrix = self._arrival_matrix(start, horizon, semantics)
        try:
            value = int(matrix[index[source], index[target]])
        except KeyError as exc:
            raise ServiceError(f"unknown node {exc.args[0]!r}") from None
        return None if value == UNREACHED else value

    def reach(
        self,
        source: Hashable,
        target: Hashable,
        start: int,
        horizon: int,
        semantics: WaitingSemantics = WAIT,
    ) -> bool:
        """Whether a journey joins the pair within the window."""
        return self.arrival(source, target, start, horizon, semantics) is not None

    def growth(
        self,
        start: int,
        end: int,
        semantics: WaitingSemantics = WAIT,
    ) -> list[tuple[int, float]]:
        """The reachability growth curve ``r(t)`` on ``[start, end)``.

        Derived from the same cached arrival matrix the point queries
        use, so a growth query never re-runs a sweep that ``reach``/
        ``arrival`` already paid for on the window (or vice versa).
        """
        self.queries_served += 1
        require_window(start, end)

        def compute():
            _index, arrival = self._arrival_matrix(start, end, semantics)
            return growth_curve_from_arrivals(arrival, start, end)

        return self._cached(("growth", start, end, str(semantics)), compute)

    def classify(self, start: int, end: int) -> dict:
        """Class membership on the window, as a JSON-able report."""
        self.queries_served += 1

        def compute():
            report = classify_graph(
                self.graph, start, end, engine=self.engine, shards=self.shards,
                cluster=self.cluster, kernel=self.kernel,
            )
            return {
                "classes": sorted(report.classes),
                "interval_connectivity": report.interval_connectivity,
            }

        return self._cached(("classify", start, end), compute)

    # -- mutations -------------------------------------------------------------

    def _mutated(self) -> None:
        self.mutations_applied += 1
        retain = _is_matrix_query if self.incremental != "off" else None
        self.cache.purge_stale(self.graph.version, retain=retain)

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        label: str | None = None,
        presence: PresenceFunction | None = None,
        latency: LatencyFunction | None = None,
        key: str | None = None,
    ) -> str:
        """Add a directed edge; returns the (possibly generated) key."""
        edge = self.graph.add_edge(
            source, target, label=label, presence=presence, latency=latency, key=key
        )
        self._mutated()
        return edge.key

    def remove_edge(self, key: str) -> str:
        """Remove the edge with the given key; returns the key."""
        self.graph.remove_edge(key)
        self._mutated()
        return key

    def set_presence(self, key: str, presence: PresenceFunction) -> str:
        """Swap the schedule of an existing edge in place."""
        self.graph.set_presence(key, presence)
        self._mutated()
        return key

    # -- background tasks ------------------------------------------------------

    def submit(self, op: str, **params) -> dict:
        """Run a query op in the background; returns ``{"task", "version"}``
        immediately.

        Only the query family (:data:`BACKGROUND_OPS`) may run in the
        background, and required fields are validated *now* — a
        malformed submit is a structured error at the boundary, never a
        failure discovered on a later poll.  The computation runs over
        a snapshot of the graph taken at this instant: later mutations
        neither corrupt nor change the answer, which is exactly the
        answer the synchronous op would have given at submit time (the
        returned ``version`` stamps which graph the answer is about).
        """
        required = BACKGROUND_OPS.get(op)
        if required is None:
            raise ServiceError(
                f"op {op!r} cannot run in the background; submit takes "
                f"one of: {', '.join(sorted(BACKGROUND_OPS))}"
            )
        missing = [field for field in required if field not in params]
        if missing:
            raise ServiceError(
                f"op {op!r} missing required field(s): {', '.join(missing)}"
            )
        snapshot = self.graph.copy()
        version = self.graph.version
        task = self.tasks.submit(
            op, version, lambda: _snapshot_query(snapshot, op, params)
        )
        return {"task": task.task_id, "version": version}

    def task_status(self, task_id: str) -> dict:
        """One task's status, plus whether its snapshot is now stale
        (the graph mutated since submit — the answer is still exact for
        the stamped version)."""
        report = self.tasks.status(task_id)
        report["stale"] = report["version"] != self.graph.version
        return report

    def task_result(self, task_id: str):
        """The finished task's value (wire-shaped); structured errors
        for pending, failed, cancelled, or unknown tasks."""
        return self.tasks.result(task_id)

    def task_cancel(self, task_id: str) -> dict:
        """Cancel a task; returns its status after the attempt."""
        report = self.tasks.cancel(task_id)
        report["stale"] = report["version"] != self.graph.version
        return report

    def task_wait(self, task_id: str, timeout: float | None = None) -> bool:
        """Blocking join for in-process callers and tests — never call
        this from an async handler (RL005 flags it); poll
        :meth:`task_status` there instead."""
        return self.tasks.wait(task_id, timeout)

    def close(self) -> None:
        """Tear down the background worker pool (idempotent)."""
        self.tasks.shutdown(wait=True)

    # -- fleet membership ------------------------------------------------------

    def set_workers(self, workers: Sequence[str]) -> list[str]:
        """Re-resolve the sweep-worker fleet; returns the resolved list.

        Elastic membership: safe at any time, including while a
        clustered sweep is in flight (departed workers stop pulling
        blocks, joined workers start stealing from the live queue).  An
        empty list detaches the cluster — later sweeps run locally (or
        process-sharded); a non-empty list on a service built without
        workers attaches a fresh executor with the service's configured
        timeout, kernel, and oversplit.  Answers never change, only
        where the blocks run.
        """
        from repro.service.cluster import ClusterExecutor

        if not workers:
            if self.cluster is not None:
                self.cluster.set_workers([])
            return []
        if self.cluster is None:
            self.cluster = ClusterExecutor(
                workers, timeout=self._worker_timeout, kernel=self.kernel,
                oversplit=self._oversplit,
            )
        else:
            self.cluster.set_workers(workers)
        return [f"{host}:{port}" for host, port in self.cluster.workers]

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-able snapshot of service and cache state."""
        from repro.core.sweep_kernel import resolve_kernel

        report = {
            "graph": {
                "name": self.graph.name,
                "nodes": self.graph.node_count,
                "edges": self.graph.edge_count,
                "version": self.graph.version,
            },
            "kernel": resolve_kernel(self.kernel),
            "incremental": self.incremental,
            "queries_served": self.queries_served,
            "mutations_applied": self.mutations_applied,
            "sweeps": {
                "full": self.full_sweeps,
                "incremental": self.incremental_sweeps,
                "rows_reswept": self.rows_reswept,
                "rows_reused": self.rows_reused,
            },
            "cache": self.cache.stats(),
            "tasks": self.tasks.stats(),
        }
        if self.cluster is not None:
            report["cluster"] = self.cluster.stats()
        return report

    def __repr__(self) -> str:
        return (
            f"TVGService({self.graph!r}, {self.queries_served} queries, "
            f"{self.mutations_applied} mutations, cache={self.cache!r})"
        )
