"""Long-lived query service over a mutating time-varying graph.

The :class:`TVGService` owns one :class:`~repro.core.tvg.TimeVaryingGraph`
plus one :class:`~repro.core.engine.TemporalEngine` and answers the
paper's query hierarchy — reachability, earliest arrivals, growth
curves, class membership — while accepting structural mutations between
queries.  A :class:`QueryCache` keyed by ``(graph.version, window,
semantics, query)`` makes repeated queries between mutations free;
every mutation bumps the version and invalidates exactly the stale
entries.

``server``/``client`` wrap the service in an asyncio JSON-lines
protocol (``python -m repro serve``), and ``wire`` defines the
JSON-serializable specs for presences, latencies, semantics, sweep
plans, and sub-matrices that cross the socket.  ``cluster`` distributes
the arrival sweep itself: ``python -m repro worker`` runs a long-lived
sweep executor and :class:`ClusterExecutor` ships ``(plan, block)``
jobs to a fleet of them, re-sweeping any failed block locally so
answers are always element-for-element equal to the serial sweep.

``limits`` and ``tasks`` harden the front end for real traffic:
per-client sliding-window rate limiting with an admission gate on
in-flight requests, latency reservoirs behind the ``stats`` op, and a
bounded background-task table (``submit``/``status``/``result``/
``cancel``) that runs expensive cold queries over graph snapshots on a
worker thread instead of stalling the event loop.
"""

from repro.service.cache import MISS, QueryCache
from repro.service.client import ServiceClient
from repro.service.cluster import (
    ClusterExecutor,
    LoopbackWorkerPool,
    handle_worker_request,
    serve_worker,
)
from repro.service.limits import (
    AdmissionGate,
    LatencyRecorder,
    RateLimiter,
    percentile,
)
from repro.service.replay import replay_service_trace
from repro.service.server import ServiceFrontend, handle_request, serve_service
from repro.service.service import TVGService
from repro.service.tasks import BackgroundTask, TaskTable
from repro.service.wire import (
    latency_from_spec,
    latency_to_spec,
    matrix_from_spec,
    matrix_to_spec,
    parse_semantics,
    plan_from_spec,
    plan_to_spec,
    presence_from_spec,
    presence_to_spec,
)

__all__ = [
    "MISS",
    "AdmissionGate",
    "BackgroundTask",
    "ClusterExecutor",
    "LatencyRecorder",
    "LoopbackWorkerPool",
    "QueryCache",
    "RateLimiter",
    "ServiceClient",
    "ServiceFrontend",
    "TVGService",
    "TaskTable",
    "handle_request",
    "handle_worker_request",
    "latency_from_spec",
    "latency_to_spec",
    "matrix_from_spec",
    "matrix_to_spec",
    "parse_semantics",
    "percentile",
    "plan_from_spec",
    "plan_to_spec",
    "presence_from_spec",
    "presence_to_spec",
    "replay_service_trace",
    "serve_service",
    "serve_worker",
]
