"""The project rule pack: six invariants the architecture lives by.

Each rule encodes something the test suite could only probe
dynamically — and therefore only on the paths the tests happen to
drive.  Statically they hold everywhere or the gate goes red:

* **RL001** layering — a ``repro.*`` module imports only its own layer
  or below (the ROADMAP's presence → index → engine → shards → service
  stack, with ``cli`` on top).
* **RL002** version-bump completeness — every public
  ``TimeVaryingGraph`` method that writes graph state also bumps the
  version counter *and* appends a :class:`MutationDelta`, directly or
  through a helper it calls.
* **RL003** plan purity — nothing but plain data flows into
  ``SweepPlan(...)`` outside ``core/parallel.py``'s sanctioned
  lowering, so plans stay picklable and cacheable by content.
* **RL004** boundary errors — no broad ``except`` in ``service/`` that
  swallows without re-raising (conversion to ``ServiceError`` counts:
  it is a re-raise).
* **RL005** async hygiene — no ``time.sleep``, blocking socket
  constructors, ``subprocess``, or direct ``sweep_block(...)`` calls
  lexically inside ``async def`` in the service front ends.
* **RL006** wire completeness — every ``*_to_spec`` in
  ``service/wire.py`` has a ``*_from_spec`` twin and both appear in
  the test tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.linter import (
    FileContext,
    Finding,
    ProjectContext,
    rule,
)

# -- RL001: layering -----------------------------------------------------------

#: Import-rank of each ``repro`` layer, derived from the ROADMAP
#: architecture: a module may import targets of rank <= its own.
#: Siblings of equal rank (``automata``/``dynamics``,
#: ``analysis``/``machines``) may see each other — nothing does today,
#: but the rule permits it because neither direction inverts the stack.
LAYER_RANKS: dict[str, int] = {
    "errors": 0,
    "core": 1,
    "automata": 2,
    "dynamics": 2,
    "analysis": 3,
    "machines": 3,
    "constructions": 4,
    "devtools": 4,
    "service": 5,
    "": 6,  # the ``repro`` facade re-exports everything below it
    "cli": 7,
    "__main__": 8,
}


def _layer_of(module: str) -> str | None:
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else ""


def _imported_repro_modules(
    tree: ast.AST, own_module: str
) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, module)`` for every runtime import of a
    ``repro.*`` module, resolving relative imports and skipping
    ``if TYPE_CHECKING:`` blocks (no runtime edge)."""

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.hits: list[tuple[int, str]] = []

        def visit_If(self, node: ast.If) -> None:
            if _is_type_checking(node.test):
                for child in node.orelse:
                    self.visit(child)
                return
            self.generic_visit(node)

        def visit_Import(self, node: ast.Import) -> None:
            for alias in node.names:
                self.hits.append((node.lineno, alias.name))

        def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
            if node.level == 0:
                self.hits.append((node.lineno, node.module or ""))
                return
            base = own_module.split(".")
            # level=1 from a module strips the module's own name.
            base = base[: len(base) - node.level]
            target = ".".join(base + ([node.module] if node.module else []))
            self.hits.append((node.lineno, target))

    visitor = Visitor()
    visitor.visit(tree)
    for lineno, module in visitor.hits:
        if module == "repro" or module.startswith("repro."):
            yield lineno, module


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


@rule("RL001", "modules import only their own layer or below")
def check_layering(ctx: FileContext) -> Iterator[Finding]:
    own_layer = _layer_of(ctx.module)
    if own_layer is None:
        return
    own_rank = LAYER_RANKS.get(own_layer)
    if own_rank is None:
        return
    for lineno, module in _imported_repro_modules(ctx.tree, ctx.module):
        target_layer = _layer_of(module)
        if target_layer is None:
            continue
        target_rank = LAYER_RANKS.get(target_layer)
        if target_rank is None or target_rank <= own_rank:
            continue
        yield Finding(
            path=ctx.rel_path,
            line=lineno,
            rule="RL001",
            message=(
                f"layer {own_layer or 'repro'!r} (rank {own_rank}) imports "
                f"{module} from higher layer {target_layer!r} "
                f"(rank {target_rank})"
            ),
        )


# -- RL002: version-bump completeness ------------------------------------------

#: Attributes of ``TimeVaryingGraph`` that *are* the graph state; any
#: public method that writes one must leave an audit trail.
STATE_ATTRS = frozenset({"_nodes", "_edges", "_out", "_in"})

#: Method names on containers that mutate in place.
_MUTATING_METHODS = frozenset(
    {"append", "add", "clear", "discard", "extend", "insert", "pop",
     "popitem", "remove", "setdefault", "update", "__setitem__"}
)


@dataclass
class _MethodFacts:
    writes: bool = False
    bumps: bool = False
    appends: bool = False
    write_line: int = 0
    calls: set[str] = field(default_factory=set)


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` → ``"X"``; also looks through subscripts, so
    ``self._out[u][key]`` resolves to ``"_out"``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _method_facts(method: ast.FunctionDef) -> _MethodFacts:
    facts = _MethodFacts()

    def note_write(attr: str | None, lineno: int) -> None:
        if attr in STATE_ATTRS:
            facts.writes = True
            if not facts.write_line:
                facts.write_line = lineno

    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                note_write(attr, node.lineno)
                if attr == "_version":
                    facts.bumps = True
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                note_write(_self_attr(target), node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            owner = _self_attr(node.func.value)
            if node.func.attr in _MUTATING_METHODS:
                note_write(owner, node.lineno)
                if owner == "_deltas" and node.func.attr == "append":
                    facts.appends = True
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                facts.calls.add(node.func.attr)
    return facts


def _transitive_facts(methods: dict[str, _MethodFacts]) -> dict[str, _MethodFacts]:
    """Fixpoint: a method inherits writes/bumps/appends from every
    ``self.helper()`` it reaches."""
    changed = True
    while changed:
        changed = False
        for facts in methods.values():
            for callee in list(facts.calls):
                sub = methods.get(callee)
                if sub is None:
                    continue
                for attr in ("writes", "bumps", "appends"):
                    if getattr(sub, attr) and not getattr(facts, attr):
                        setattr(facts, attr, True)
                        changed = True
                if facts.writes and not facts.write_line and sub.write_line:
                    facts.write_line = sub.write_line
                    changed = True
    return methods


def _graph_class(tree: ast.AST) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "TimeVaryingGraph":
            return node
    return None


def _classified_methods(tree: ast.AST) -> dict[str, _MethodFacts] | None:
    cls = _graph_class(tree)
    if cls is None:
        return None
    methods = {
        item.name: _method_facts(item)
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }
    return _transitive_facts(methods)


def discover_mutators(source: str) -> frozenset[str]:
    """Public ``TimeVaryingGraph`` methods that (transitively) write
    graph state — the static twin of the audit list in
    ``tests/core/test_versioning.py``."""
    methods = _classified_methods(ast.parse(source))
    if methods is None:
        return frozenset()
    return frozenset(
        name
        for name, facts in methods.items()
        if facts.writes and not name.startswith("_")
    )


@rule("RL002", "TimeVaryingGraph mutators bump version and log a delta")
def check_version_bumps(ctx: FileContext) -> Iterator[Finding]:
    methods = _classified_methods(ctx.tree)
    if methods is None:
        return
    cls = _graph_class(ctx.tree)
    lines = {
        item.name: item.lineno
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }
    for name in sorted(methods):
        facts = methods[name]
        if name.startswith("_") or not facts.writes:
            continue
        missing = []
        if not facts.bumps:
            missing.append("a version bump")
        if not facts.appends:
            missing.append("a MutationDelta append")
        if missing:
            yield Finding(
                path=ctx.rel_path,
                line=lines[name],
                rule="RL002",
                message=(
                    f"mutator {name}() writes graph state but never reaches "
                    + " or ".join(missing)
                ),
            )


# -- RL003: plan purity --------------------------------------------------------

#: The one module allowed to lower engine state into a SweepPlan.
PLAN_LOWERING_MODULE = "repro.core.parallel"


@rule("RL003", "SweepPlan sites outside core/parallel take plain data only")
def check_plan_purity(ctx: FileContext) -> Iterator[Finding]:
    if ctx.module == PLAN_LOWERING_MODULE:
        return
    local_callables = {
        node.name
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "SweepPlan":
            continue
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    yield Finding(
                        path=ctx.rel_path,
                        line=sub.lineno,
                        rule="RL003",
                        message="lambda passed into SweepPlan(...) — plans "
                        "must stay picklable plain data",
                    )
                elif isinstance(sub, ast.Name) and sub.id in local_callables:
                    yield Finding(
                        path=ctx.rel_path,
                        line=sub.lineno,
                        rule="RL003",
                        message=f"callable {sub.id!r} passed into "
                        "SweepPlan(...) — plans must stay picklable "
                        "plain data",
                    )


# -- RL004: boundary errors ----------------------------------------------------


@rule("RL004", "no broad except in service/ without re-raise or conversion")
def check_boundary_errors(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.module.startswith("repro.service"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node.type):
            continue
        if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
            continue
        caught = "bare except" if node.type is None else (
            f"except {ast.unparse(node.type)}"
        )
        yield Finding(
            path=ctx.rel_path,
            line=node.lineno,
            rule="RL004",
            message=f"{caught} swallows without re-raise or ServiceError "
            "conversion at the service boundary",
        )


def _is_broad(type_node: ast.expr | None) -> bool:
    if type_node is None:
        return True
    names = (
        [elt for elt in type_node.elts]
        if isinstance(type_node, ast.Tuple)
        else [type_node]
    )
    for name in names:
        ident = name.id if isinstance(name, ast.Name) else (
            name.attr if isinstance(name, ast.Attribute) else None
        )
        if ident in {"Exception", "BaseException"}:
            return True
    return False


# -- RL005: async hygiene ------------------------------------------------------

#: Calls that block the event loop.  ``(module, attr)`` pairs; a bare
#: name matches when the module half is "".
_BLOCKING_CALLS = {
    ("time", "sleep"),
    ("socket", "socket"),
    ("socket", "create_connection"),
    ("subprocess", "run"),
    ("subprocess", "Popen"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("", "sweep_block"),
    ("", "task_wait"),
}

#: Blocking method names flagged on *any* receiver (``service.task_wait``,
#: ``self.tasks.wait`` is fine — the table join is ``task_wait`` at the
#: service surface), because the receiver of a blocking join is rarely a
#: bare module name.
_BLOCKING_ANY_RECEIVER = {"sweep_block", "task_wait"}


@rule("RL005", "no blocking calls inside async def in service front ends")
def check_async_hygiene(ctx: FileContext) -> Iterator[Finding]:
    if not ctx.module.startswith("repro.service"):
        return

    def scan(body: list[ast.stmt], in_async: bool) -> Iterator[Finding]:
        for stmt in body:
            yield from scan_node(stmt, in_async)

    def scan_node(node: ast.AST, in_async: bool) -> Iterator[Finding]:
        if isinstance(node, ast.AsyncFunctionDef):
            yield from scan(node.body, True)
            return
        if isinstance(node, ast.FunctionDef):
            # A nested sync def runs wherever it is *called*; its body
            # is not necessarily on the event loop.
            yield from scan(node.body, False)
            return
        if in_async and isinstance(node, ast.Call):
            hit = _blocking_call_name(node.func)
            if hit is not None:
                yield Finding(
                    path=ctx.rel_path,
                    line=node.lineno,
                    rule="RL005",
                    message=f"blocking call {hit}(...) inside async def — "
                    "offload via asyncio.to_thread or an executor",
                )
        for child in ast.iter_child_nodes(node):
            yield from scan_node(child, in_async)

    yield from scan_node(ctx.tree, False)


def _blocking_call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        if ("", func.id) in _BLOCKING_CALLS:
            return func.id
        return None
    if isinstance(func, ast.Attribute):
        if func.attr in _BLOCKING_ANY_RECEIVER:
            if isinstance(func.value, ast.Name):
                return f"{func.value.id}.{func.attr}"
            return f"<expr>.{func.attr}"
        if isinstance(func.value, ast.Name):
            if (func.value.id, func.attr) in _BLOCKING_CALLS:
                return f"{func.value.id}.{func.attr}"
    return None


# -- RL006: wire completeness --------------------------------------------------


def check_wire_pairs(
    wire_source: str, test_sources: list[str], rel_path: str = "<fixture>"
) -> list[Finding]:
    """The testable core of RL006: every ``*_to_spec`` has a
    ``*_from_spec`` twin (and vice versa), and each appears somewhere
    in the test tree."""
    tree = ast.parse(wire_source)
    functions = {
        node.name: node.lineno
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    findings = []
    corpus = "\n".join(test_sources)
    for name, lineno in sorted(functions.items()):
        if name.endswith("_to_spec"):
            twin = name[: -len("_to_spec")] + "_from_spec"
        elif name.endswith("_from_spec"):
            twin = name[: -len("_from_spec")] + "_to_spec"
        else:
            continue
        if twin not in functions:
            findings.append(
                Finding(
                    path=rel_path,
                    line=lineno,
                    rule="RL006",
                    message=f"{name}() has no {twin}() twin — wire specs "
                    "must round-trip",
                )
            )
        if name not in corpus:
            findings.append(
                Finding(
                    path=rel_path,
                    line=lineno,
                    rule="RL006",
                    message=f"{name}() is never exercised by the test tree",
                )
            )
    return findings


@rule("RL006", "wire spec encoders round-trip and are tested", scope="project")
def check_wire_completeness(project: ProjectContext) -> Iterator[Finding]:
    ctx = project.file("repro.service.wire")
    if ctx is None:
        return
    yield from check_wire_pairs(
        ctx.source, list(project.test_sources()), rel_path=ctx.rel_path
    )
