"""Developer tooling: the project's own static-analysis pass.

``python -m repro lint`` runs :func:`run_lint` over ``src/repro`` and
reports violations of the six architecture invariants in
:mod:`repro.devtools.rules`.  The same pass runs unconditionally inside
the test suite (``tests/test_lint.py``), so the invariants hold on any
host — no external linter binary required.
"""

from repro.devtools.linter import (
    Finding,
    LintReport,
    Rule,
    all_rules,
    lint_source,
    run_lint,
)
from repro.devtools.rules import LAYER_RANKS, discover_mutators

__all__ = [
    "LAYER_RANKS",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "discover_mutators",
    "lint_source",
    "run_lint",
]
