"""AST-based invariant checker over this repository's own source.

The reproduction's correctness rests on cross-cutting invariants —
strict layering, mutators bump ``TimeVaryingGraph.version``,
``SweepPlan`` stays plain data, errors become :class:`ServiceError` at
the service boundary — that a general-purpose linter cannot know about.
This module is the *framework* half: a rule registry, per-file context
with resolved imports and suppression comments, and structured findings
with ``file:line``.  The project-specific rules live in
:mod:`repro.devtools.rules`.

Three front ends share this pass: ``python -m repro lint`` (humans and
CI), the unconditional pytest gate in ``tests/test_lint.py`` (which
also emits ``LINT_report.json``), and the fixture-driven unit tests
under ``tests/devtools/``.

Suppressions: a ``# repro-lint: disable=RL001`` comment silences the
named rule(s) on its own line, or — when the comment stands alone — on
the next line that holds code.  Several codes may be comma-separated.
Suppressions are deliberately per-line, never per-file: a file-wide
waiver would silently cover future regressions.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Directories :func:`iter_source_files` never descends into.  The
#: benchmark harnesses are measurement scripts, not architecture, and
#: tool caches hold generated python that is nobody's fault.
SKIP_DIRS = frozenset(
    {
        ".git",
        ".hypothesis",
        ".pytest_cache",
        ".ruff_cache",
        "__pycache__",
        "benchmarks",
        "build",
        "dist",
    }
)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9_,\s]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, ordered for stable reports."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """A registered check: ``file`` rules run once per source file,
    ``project`` rules run once per tree with the repo root in hand."""

    code: str
    summary: str
    scope: str
    check: Callable


_REGISTRY: dict[str, Rule] = {}


def rule(code: str, summary: str, scope: str = "file"):
    """Decorator registering a check under ``code``.

    File-scope checks receive a :class:`FileContext` and yield
    :class:`Finding`; project-scope checks receive a
    :class:`ProjectContext`.
    """
    if scope not in {"file", "project"}:
        raise ValueError(f"unknown rule scope {scope!r}")

    def register(check: Callable) -> Callable:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code, summary, scope, check)
        return check

    return register


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in code order (imports the rule pack)."""
    from repro.devtools import rules as _rules  # noqa: F401 — registration

    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number → rule codes suppressed there.

    Inline comments cover their own line; standalone comments cover the
    next line that carries code (so a suppression may sit above a long
    statement without riding on it).
    """
    suppressed: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    code_lines: set[int] = set()
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        for lineno in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(lineno)
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
        lineno = tok.start[0]
        if lineno in code_lines:
            suppressed.setdefault(lineno, set()).update(codes)
        else:
            target = min((ln for ln in code_lines if ln > lineno), default=None)
            if target is not None:
                suppressed.setdefault(target, set()).update(codes)
    return {line: frozenset(codes) for line, codes in suppressed.items()}


@dataclass
class FileContext:
    """Everything a file-scope rule needs about one source file."""

    path: Path
    rel_path: str
    module: str
    source: str
    tree: ast.AST
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def layer(self) -> str:
        """Second dotted component of the module ("core", "service",
        ...), or "" for the ``repro`` facade itself."""
        parts = self.module.split(".")
        if parts[0] != "repro" or len(parts) == 1:
            return ""
        return parts[1]

    def suppressed(self, line: int, code: str) -> bool:
        return code in self.suppressions.get(line, frozenset())


@dataclass
class ProjectContext:
    """Handed to project-scope rules: the tree, not one file."""

    root: Path
    src_root: Path
    tests_root: Path
    files: tuple[FileContext, ...]

    def file(self, module: str) -> FileContext | None:
        for ctx in self.files:
            if ctx.module == module:
                return ctx
        return None

    def test_sources(self) -> Iterator[str]:
        if not self.tests_root.is_dir():
            return
        for path in sorted(self.tests_root.rglob("*.py")):
            if set(path.parts) & SKIP_DIRS:
                continue
            yield path.read_text(encoding="utf-8")


def module_name(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` under ``src_root`` ("" outside)."""
    try:
        rel = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return ""
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def iter_source_files(root: Path) -> Iterator[Path]:
    """Yield ``*.py`` files under ``root``, skipping :data:`SKIP_DIRS`."""
    for path in sorted(root.rglob("*.py")):
        if set(path.parts[:-1]) & SKIP_DIRS:
            continue
        yield path


def load_context(path: Path, src_root: Path, repo_root: Path) -> FileContext:
    source = path.read_text(encoding="utf-8")
    return make_context(
        source,
        path=path,
        rel_path=path.resolve().relative_to(repo_root.resolve()).as_posix(),
        module=module_name(path, src_root),
    )


def make_context(
    source: str,
    *,
    path: Path | None = None,
    rel_path: str = "<fixture>",
    module: str = "",
) -> FileContext:
    """Build a :class:`FileContext` from source text (fixture-friendly)."""
    return FileContext(
        path=path if path is not None else Path(rel_path),
        rel_path=rel_path,
        module=module,
        source=source,
        tree=ast.parse(source),
        suppressions=parse_suppressions(source),
    )


def lint_source(
    source: str,
    *,
    module: str = "",
    rel_path: str = "<fixture>",
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Run the file-scope rules over one source string.

    The unit-test entry point: fixtures assert finding-for-finding
    without touching the filesystem.
    """
    ctx = make_context(source, rel_path=rel_path, module=module)
    selected = tuple(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rl in selected:
        if rl.scope != "file":
            continue
        for finding in rl.check(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


@dataclass
class LintReport:
    """The outcome of one full pass: findings plus per-rule counts."""

    findings: list[Finding]
    files_scanned: int

    @property
    def counts(self) -> dict[str, int]:
        counts = {rl.code: 0 for rl in all_rules()}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_scanned": self.files_scanned,
                "total": len(self.findings),
                "counts": self.counts,
                "findings": [f.to_json() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def render(self) -> str:
        if not self.findings:
            return f"clean: {self.files_scanned} files, 0 findings"
        lines = [finding.render() for finding in self.findings]
        lines.append(f"{len(self.findings)} finding(s) in {self.files_scanned} files")
        return "\n".join(lines)


def default_repo_root() -> Path:
    """The repo root inferred from this package's location on disk
    (``src/repro/devtools`` → three parents up)."""
    return Path(__file__).resolve().parent.parent.parent.parent


def run_lint(
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> LintReport:
    """Lint ``src/repro`` under ``root`` (default: this repo)."""
    repo_root = Path(root) if root is not None else default_repo_root()
    src_root = repo_root / "src"
    package_root = src_root / "repro"
    tests_root = repo_root / "tests"
    selected = tuple(rules) if rules is not None else all_rules()
    contexts = [
        load_context(path, src_root, repo_root)
        for path in iter_source_files(package_root)
    ]
    findings: list[Finding] = []
    for ctx in contexts:
        for rl in selected:
            if rl.scope != "file":
                continue
            for finding in rl.check(ctx):
                if not ctx.suppressed(finding.line, finding.rule):
                    findings.append(finding)
    project = ProjectContext(
        root=repo_root,
        src_root=src_root,
        tests_root=tests_root,
        files=tuple(contexts),
    )
    for rl in selected:
        if rl.scope != "project":
            continue
        for finding in rl.check(project):
            ctx = next((c for c in contexts if c.rel_path == finding.path), None)
            if ctx is not None and ctx.suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    return LintReport(findings=sorted(findings), files_scanned=len(contexts))
