"""Deciders: one interface for every decision procedure.

Theorem 2.1's construction consumes a *computable language*; concretely
it needs only a total decision procedure.  :class:`Decider` wraps a
Turing machine, counter machine, or plain predicate together with its
alphabet and a step budget, so the construction and the benchmarks treat
all of them uniformly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.automata.alphabet import Alphabet
from repro.errors import MachineError
from repro.machines.counter import CounterMachine
from repro.machines.turing import TuringMachine


class Decider:
    """A total decision procedure over a finite alphabet."""

    def __init__(
        self,
        predicate: Callable[[str], bool],
        alphabet: Alphabet | str,
        name: str = "",
        max_steps: int = 100_000,
    ) -> None:
        self._predicate = predicate
        self.alphabet = (
            alphabet if isinstance(alphabet, Alphabet) else Alphabet(alphabet)
        )
        self.name = name or getattr(predicate, "__name__", "decider")
        self.max_steps = max_steps

    def __call__(self, word: str) -> bool:
        """Decide membership.

        Raises :class:`~repro.errors.MachineTimeoutError` if the wrapped
        machine exceeds its budget — timeouts never masquerade as
        rejections.
        """
        self.alphabet.validate_word(word)
        return bool(self._predicate(word))

    def accepts(self, word: str) -> bool:
        return self(word)

    def language_upto(self, max_length: int) -> frozenset[str]:
        """The finite sample ``L ∩ Sigma^{<=max_length}``."""
        return frozenset(w for w in self.alphabet.words_upto(max_length) if self(w))

    def words(self, max_length: int) -> Iterator[str]:
        """Accepted words up to the length bound, shortest first."""
        for word in self.alphabet.words_upto(max_length):
            if self(word):
                yield word

    def restricted(self, minimum_length: int = 1) -> "Decider":
        """The same language minus words shorter than ``minimum_length``.

        Figure 1's language is ``a^n b^n`` for ``n >= 1``; this adapter
        turns the natural ``n >= 0`` decider into that variant.
        """
        base = self._predicate

        def clipped(word: str) -> bool:
            return len(word) >= minimum_length and base(word)

        return Decider(
            clipped,
            self.alphabet,
            name=f"{self.name}[len>={minimum_length}]",
            max_steps=self.max_steps,
        )

    def __repr__(self) -> str:
        return f"Decider({self.name!r}, Sigma={''.join(self.alphabet)!r})"


def tm_decider(
    machine: TuringMachine,
    alphabet: Alphabet | str,
    name: str = "",
    max_steps: int = 100_000,
) -> Decider:
    """Wrap a Turing machine as a decider (budget enforced per word)."""
    return Decider(
        lambda word: machine.accepts(word, max_steps),
        alphabet,
        name=name or machine.name or "tm",
        max_steps=max_steps,
    )


def cm_decider(
    machine: CounterMachine,
    alphabet: Alphabet | str,
    name: str = "",
    max_steps: int = 100_000,
) -> Decider:
    """Wrap a counter machine as a decider."""
    return Decider(
        lambda word: machine.accepts(word, max_steps),
        alphabet,
        name=name or machine.name or "counter",
        max_steps=max_steps,
    )


def predicate_decider(
    predicate: Callable[[str], bool],
    alphabet: Alphabet | str,
    name: str = "",
) -> Decider:
    """Wrap a plain Python predicate as a decider."""
    return Decider(predicate, alphabet, name=name)


def cross_check(
    deciders: Iterable[Decider], max_length: int
) -> None:
    """Assert that several deciders agree on all words up to a bound.

    Used by tests to confirm that the TM, counter-machine, and predicate
    versions of the same language truly coincide.
    """
    deciders = list(deciders)
    if len(deciders) < 2:
        raise MachineError("cross_check needs at least two deciders")
    reference = deciders[0]
    sample = reference.language_upto(max_length)
    for other in deciders[1:]:
        if other.alphabet != reference.alphabet:
            raise MachineError(
                f"alphabet mismatch between {reference.name} and {other.name}"
            )
        theirs = other.language_upto(max_length)
        if theirs != sample:
            difference = sorted(sample ^ theirs, key=lambda w: (len(w), w))
            raise MachineError(
                f"deciders {reference.name} and {other.name} disagree on "
                f"{difference[:5]!r}"
            )
