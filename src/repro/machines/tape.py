"""An unbounded two-way Turing machine tape.

Sparse dict representation: only visited non-blank cells are stored, so
the tape is as unbounded as memory allows while staying cheap for the
short inputs language sampling uses.
"""

from __future__ import annotations

from typing import Iterator

#: The blank symbol. Machines may use it in transitions.
BLANK = "_"


class Tape:
    """A bi-infinite tape of single-character symbols."""

    __slots__ = ("_cells", "head")

    def __init__(self, content: str = "", head: int = 0) -> None:
        self._cells: dict[int, str] = {
            index: symbol for index, symbol in enumerate(content) if symbol != BLANK
        }
        self.head = head

    def read(self) -> str:
        """Symbol under the head (blank if never written)."""
        return self._cells.get(self.head, BLANK)

    def write(self, symbol: str) -> None:
        """Write under the head; writing blank erases the cell."""
        if symbol == BLANK:
            self._cells.pop(self.head, None)
        else:
            self._cells[self.head] = symbol

    def move(self, direction: str) -> None:
        """Move the head: 'L', 'R', or 'S' (stay)."""
        if direction == "L":
            self.head -= 1
        elif direction == "R":
            self.head += 1
        elif direction != "S":
            raise ValueError(f"unknown direction {direction!r}")

    @property
    def extent(self) -> tuple[int, int]:
        """Closed range [lo, hi] of non-blank cells (head included)."""
        positions = set(self._cells) | {self.head}
        return min(positions), max(positions)

    def content(self) -> str:
        """Non-blank content between the extremes, blanks inside kept."""
        lo, hi = self.extent
        return "".join(self._cells.get(i, BLANK) for i in range(lo, hi + 1)).strip(BLANK)

    def cells(self) -> Iterator[tuple[int, str]]:
        """All written cells as (position, symbol), sorted by position."""
        for position in sorted(self._cells):
            yield position, self._cells[position]

    def copy(self) -> "Tape":
        clone = Tape()
        clone._cells = dict(self._cells)
        clone.head = self.head
        return clone

    def __repr__(self) -> str:
        lo, hi = self.extent
        window = "".join(self._cells.get(i, BLANK) for i in range(lo, hi + 1))
        marker = self.head - lo
        return f"Tape({window!r}, head at {marker})"
