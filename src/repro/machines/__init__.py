"""Computability substrate: Turing machines, counter machines, deciders.

Theorem 2.1 quantifies over *computable languages*, so the reproduction
needs a stock of decision procedures that are visibly Turing-complete
computations rather than automata in disguise.  This package provides a
deterministic Turing machine simulator, a library of machines for the
classic non-regular and non-context-free languages, Minsky counter
machines, and the :class:`Decider` wrapper that gives all of them (and
plain Python predicates) one interface with an explicit step budget.
"""

from repro.machines import programs
from repro.machines.counter import CounterMachine
from repro.machines.decider import Decider, predicate_decider, tm_decider
from repro.machines.tape import Tape
from repro.machines.turing import ACCEPT, REJECT, HaltReason, TMResult, TuringMachine

__all__ = [
    "ACCEPT",
    "CounterMachine",
    "Decider",
    "HaltReason",
    "REJECT",
    "TMResult",
    "Tape",
    "TuringMachine",
    "predicate_decider",
    "programs",
    "tm_decider",
]
