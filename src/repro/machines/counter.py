"""Minsky counter machines with one-way input.

A second, visibly different model of computation for Theorem 2.1 inputs:
finitely many non-negative counters, increment / test-and-decrement, and
a one-way read head.  Two counters already give Turing power, so a
counter-machine decider exercises the "any computable language"
quantifier from another angle than the TM simulator.

Programs are label -> instruction maps.  Instructions:

* ``("inc", register, goto)``
* ``("jzdec", register, goto_if_zero, goto_after_decrement)``
* ``("read", {symbol: goto, ..., None: goto_at_end_of_input})``
* ``("accept",)`` / ``("reject",)``
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import MachineError, MachineTimeoutError


class CounterMachine:
    """A deterministic counter machine over a finite instruction set."""

    def __init__(
        self,
        program: Mapping[str, tuple],
        start: str,
        registers: int = 2,
        name: str = "",
    ) -> None:
        self.program = dict(program)
        self.start = start
        self.registers = registers
        self.name = name
        self._validate()

    def _validate(self) -> None:
        if self.start not in self.program:
            raise MachineError(f"start label {self.start!r} not in program")
        for label, instruction in self.program.items():
            kind = instruction[0]
            if kind == "inc":
                _, register, goto = instruction
                self._check_register(label, register)
                self._check_label(label, goto)
            elif kind == "jzdec":
                _, register, if_zero, after_dec = instruction
                self._check_register(label, register)
                self._check_label(label, if_zero)
                self._check_label(label, after_dec)
            elif kind == "read":
                _, branches = instruction
                for goto in branches.values():
                    self._check_label(label, goto)
            elif kind in ("accept", "reject"):
                pass
            else:
                raise MachineError(f"unknown instruction {kind!r} at {label!r}")

    def _check_register(self, label: str, register: int) -> None:
        if not 0 <= register < self.registers:
            raise MachineError(
                f"instruction at {label!r} uses register {register}, "
                f"machine has {self.registers}"
            )

    def _check_label(self, label: str, goto: str) -> None:
        if goto not in self.program:
            raise MachineError(f"instruction at {label!r} jumps to unknown {goto!r}")

    def accepts(self, word: str, max_steps: int = 100_000) -> bool:
        """Run on ``word``; True iff the run reaches ``accept``.

        Falling off the input (a ``read`` with no branch for the current
        symbol) rejects.  Budget overruns raise
        :class:`~repro.errors.MachineTimeoutError`.
        """
        counters = [0] * self.registers
        position = 0
        label = self.start
        for _step in range(max_steps):
            instruction = self.program[label]
            kind = instruction[0]
            if kind == "accept":
                return True
            if kind == "reject":
                return False
            if kind == "inc":
                _, register, label = instruction
                counters[register] += 1
            elif kind == "jzdec":
                _, register, if_zero, after_dec = instruction
                if counters[register] == 0:
                    label = if_zero
                else:
                    counters[register] -= 1
                    label = after_dec
            else:  # read
                _, branches = instruction
                symbol = word[position] if position < len(word) else None
                if symbol is not None:
                    position += 1
                if symbol not in branches:
                    return False
                label = branches[symbol]
        raise MachineTimeoutError(max_steps)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CounterMachine({label.strip()} |program|={len(self.program)}, "
            f"registers={self.registers})"
        )


def anbn_counter_machine() -> CounterMachine:
    """A two-state-of-mind counter machine for ``{a^n b^n : n >= 0}``.

    Counts the ``a`` block into register 0, then cancels against the
    ``b`` block — the textbook one-counter recognizer.
    """
    program = {
        "A": ("read", {"a": "A+", "b": "B?", None: "ok0"}),
        "A+": ("inc", 0, "A"),
        "B?": ("jzdec", 0, "no", "B"),
        "B": ("read", {"b": "B?", None: "end"}),
        "end": ("jzdec", 0, "yes", "no"),
        "ok0": ("jzdec", 0, "yes", "no"),
        "yes": ("accept",),
        "no": ("reject",),
    }
    return CounterMachine(program, start="A", registers=1, name="anbn-counter")
