"""A macro assembler for Turing machines.

Hand-writing transition tables gets error-prone past a dozen states;
the assembler provides the classic building blocks — scan until a
symbol, write-and-move, branch on the scanned symbol, chain fragments —
and compiles them into a flat :class:`TuringMachine`.  The stock
machines in :mod:`repro.machines.programs` stay hand-written (they are
documentation), while tests use the assembler to build larger deciders
and cross-check them.
"""

from __future__ import annotations

from itertools import count
from typing import Iterable, Mapping

from repro.errors import MachineError
from repro.machines.tape import BLANK
from repro.machines.turing import ACCEPT, REJECT, TuringMachine


class TMAssembler:
    """Accumulates transitions; fragment methods return entry labels."""

    def __init__(self, symbols: Iterable[str]) -> None:
        self.symbols = list(symbols)
        if BLANK not in self.symbols:
            self.symbols.append(BLANK)
        self.transitions: dict[tuple[str, str], tuple[str, str, str]] = {}
        self._ids = count()

    def fresh(self, hint: str = "s") -> str:
        """A fresh state label."""
        return f"{hint}{next(self._ids)}"

    def on(self, state: str, symbol: str, target: str, write: str | None = None,
           move: str = "S") -> None:
        """One explicit transition (write defaults to re-writing symbol)."""
        key = (state, symbol)
        if key in self.transitions:
            raise MachineError(f"duplicate transition for {key}")
        self.transitions[key] = (target, write if write is not None else symbol, move)

    # -- fragments --------------------------------------------------------------------

    def scan(self, direction: str, until: Iterable[str], then: str,
             hint: str = "scan") -> str:
        """Move in ``direction`` until one of ``until`` is under the head,
        then continue at ``then`` (head on the found symbol)."""
        state = self.fresh(hint)
        stops = set(until)
        for symbol in self.symbols:
            if symbol in stops:
                self.on(state, symbol, then)
            else:
                self.on(state, symbol, state, move=direction)
        return state

    def step(self, direction: str, then: str, hint: str = "step") -> str:
        """Move one cell in ``direction`` regardless of the symbol."""
        state = self.fresh(hint)
        for symbol in self.symbols:
            self.on(state, symbol, then, move=direction)
        return state

    def write_here(self, symbol: str, then: str, hint: str = "write") -> str:
        """Overwrite the current cell with ``symbol``."""
        state = self.fresh(hint)
        for scanned in self.symbols:
            self.on(state, scanned, then, write=symbol)
        return state

    def branch(self, cases: Mapping[str, str], otherwise: str = REJECT,
               hint: str = "branch") -> str:
        """Dispatch on the scanned symbol: ``cases[symbol] -> label``."""
        state = self.fresh(hint)
        for symbol in self.symbols:
            self.on(state, symbol, cases.get(symbol, otherwise))
        return state

    def build(self, start: str, name: str = "") -> TuringMachine:
        """Compile to a machine (halting states are ACCEPT/REJECT)."""
        return TuringMachine(
            self.transitions, initial=start,
            accept_states={ACCEPT}, reject_states={REJECT}, name=name,
        )


def assemble_marker_matcher(left: str, right: str, alphabet: str) -> TuringMachine:
    """``{ left^n right^n : n >= 0 }`` over two designated symbols.

    The classic cancel-ends machine, expressed through the assembler —
    the generalization of :func:`repro.machines.programs.tm_anbn` to any
    two symbols of any alphabet.  Words containing other symbols reject.
    """
    if left == right:
        raise MachineError("left and right markers must differ")
    if left not in alphabet or right not in alphabet:
        raise MachineError("markers must be in the alphabet")
    asm = TMAssembler(list(alphabet) + ["X", "Y"])

    # Plan (standard marking sweep):
    #   start: on left -> mark X, find the leftmost unmarked right, mark Y,
    #          rewind to the marker X, advance; on Y -> verify tail; on
    #          blank -> accept.
    verify_tail = asm.fresh("verify")
    back = asm.scan("L", ["X"], then="PLACEHOLDER_BACK")  # patched below
    mark_right = asm.write_here("Y", then=back)
    find_right = asm.scan("R", [right, BLANK], then="PLACEHOLDER_FIND")
    start = asm.fresh("start")

    # start dispatch
    for symbol in asm.symbols:
        if symbol == left:
            asm.on(start, symbol, find_right, write="X", move="R")
        elif symbol == "Y":
            asm.on(start, symbol, verify_tail, move="R")
        elif symbol == BLANK:
            asm.on(start, symbol, ACCEPT)
        else:
            asm.on(start, symbol, REJECT)

    # find_right lands on `right` or blank: only `right` is acceptable.
    for symbol in [right, BLANK]:
        target, write, move = asm.transitions[(find_right, symbol)]
        if symbol == right:
            asm.transitions[(find_right, symbol)] = (mark_right, write, move)
        else:
            asm.transitions[(find_right, symbol)] = (REJECT, write, move)

    # back lands on X: step right back to the dispatch state.
    advance = asm.step("R", then=start)
    target, write, move = asm.transitions[(back, "X")]
    asm.transitions[(back, "X")] = (advance, write, move)

    # verify_tail: only Y until blank.
    for symbol in asm.symbols:
        if symbol == "Y":
            asm.on(verify_tail, symbol, verify_tail, move="R")
        elif symbol == BLANK:
            asm.on(verify_tail, symbol, ACCEPT)
        else:
            asm.on(verify_tail, symbol, REJECT)

    return asm.build(start, name=f"{left}^n{right}^n")
